"""Hierarchical spans, monotonic counters, gauges, and structured events.

One :class:`Instrumentation` object holds everything a run records:

* **spans** — nested wall/CPU-timed intervals (``perf_counter`` /
  ``process_time``), each remembering its parent and depth, so a profile
  can be aggregated per stage afterwards;
* **counters** — monotonically non-decreasing integers (trial counts,
  retries, cache hits, ...); :meth:`Instrumentation.incr` rejects
  negative increments so the monotonicity invariant is structural;
* **gauges** — last-write-wins numeric observations (queue depth,
  hit rate, ...);
* **events** — structured records appended to an in-memory list and, when
  a sink is attached, streamed as JSONL lines the moment they happen
  (crash forensics must not depend on a clean shutdown).

The module also owns the *active* instrumentation: library code never
receives an instrumentation argument — it asks :func:`current` for the
process-wide instance, which defaults to the shared
:data:`NULL_INSTRUMENTATION`.  The null object's ``enabled`` is ``False``
and every method is a no-op returning shared singletons, so the
disabled path allocates nothing and the hot loops can keep a single
``if ob.enabled:`` guard around their bookkeeping — the zero-overhead
contract that keeps the disabled simulator fingerprint-identical to the
uninstrumented code (pinned by ``tests/unit/test_obs.py``).

Worker processes spawned (or forked) by :mod:`repro.parallel` never
inherit the parent's active instrumentation: an ``os.register_at_fork``
hook resets the child to the null object, so two processes can never
interleave writes into one trace file.  Parallel runs are therefore
accounted from the *parent* side (task lifecycle events), not per-batch
inside workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "OBS_SCHEMA_VERSION",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "Span",
    "activate",
    "current",
    "instrument",
    "scenario_fingerprint",
]

#: Version stamped into every manifest and trace line batch.
OBS_SCHEMA_VERSION = 1


def _cpu_count() -> int:
    """CPUs usable by this process (affinity-aware where supported).

    Duplicated from :func:`repro.parallel.available_workers` because the
    obs package must stay a leaf import (parallel imports obs, not the
    other way around).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def scenario_fingerprint(scenario) -> str:
    """Stable hex digest of a :class:`~repro.core.scenario.Scenario`.

    Keyed on the full ``to_dict()`` payload, so any modelling parameter
    change produces a different manifest fingerprint.
    """
    payload = json.dumps(scenario.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Span:
    """One timed interval; a context manager recording itself on exit."""

    __slots__ = ("name", "attrs", "depth", "parent", "start", "_cpu0", "_obs")

    def __init__(self, obs: "Instrumentation", name: str, attrs: Dict[str, Any]):
        self._obs = obs
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.parent: Optional[str] = None
        self.start = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "Span":
        self._obs._enter_span(self)
        self.start = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self.start
        cpu = time.process_time() - self._cpu0
        self._obs._exit_span(self, wall, cpu, ok=exc_type is None)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes to the span (merged into its record)."""
        self.attrs.update(attrs)


class _NullSpan:
    """Shared do-nothing span handed out by :class:`NullInstrumentation`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullInstrumentation:
    """Disabled instrumentation: every operation is a free no-op.

    ``enabled`` is ``False`` so hot paths can skip their bookkeeping
    entirely; calling the recording methods anyway is still safe (and
    allocation-free — :meth:`span` returns one shared null span).
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def incr(self, name: str, amount: int = 1) -> int:
        return 0

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def set_run_info(self, **fields: Any) -> None:
        pass

    def manifest(self) -> Dict[str, Any]:
        return {}


NULL_INSTRUMENTATION = NullInstrumentation()


class Instrumentation:
    """Live instrumentation: spans, counters, gauges, events, manifest.

    Args:
        sink: optional object with a ``write(record: dict)`` method (see
            :class:`repro.obs.sinks.JsonlSink`); span-end and event
            records stream into it as they happen.

    Thread safety: counters/gauges/events are lock-protected (the
    analysis cache increments from arbitrary threads); the span stack is
    intentionally per-instance and single-threaded — the parent process
    drives one run at a time, and worker processes are reset to the null
    instrumentation at fork.
    """

    enabled = True

    def __init__(self, sink=None):
        self._sink = sink
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []
        self.spans: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._run_info: Dict[str, Any] = {
            "pid": os.getpid(),
            "cpu_count": _cpu_count(),
        }

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one named stage.

        Nested ``with`` blocks produce child spans: each records its
        parent's name and its depth, and a child's interval always lies
        within its parent's (property-tested in
        ``tests/property/test_prop_obs.py``).
        """
        return Span(self, name, attrs)

    def _enter_span(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.parent = self._stack[-1].name if self._stack else None
        self._stack.append(span)

    def _exit_span(self, span: Span, wall: float, cpu: float, ok: bool) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        record = {
            "type": "span",
            "name": span.name,
            "depth": span.depth,
            "parent": span.parent,
            "start": span.start - self._t0,
            "wall": wall,
            "cpu": cpu,
            "ok": ok,
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        with self._lock:
            self.spans.append(record)
        self._emit(record)

    # -- counters / gauges / events ------------------------------------

    def incr(self, name: str, amount: int = 1) -> int:
        """Increase counter ``name`` by ``amount`` (>= 0); returns the new value.

        Counters are monotone by construction — a negative increment
        raises ``ValueError`` instead of silently breaking the invariant.
        """
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            value = self.counters.get(name, 0) + int(amount)
            self.counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest observation of ``name`` (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def event(self, name: str, **fields: Any) -> None:
        """Append a structured event (and stream it to the sink, if any)."""
        record = {
            "type": "event",
            "name": name,
            "t": time.perf_counter() - self._t0,
        }
        record.update(fields)
        with self._lock:
            self.events.append(record)
        self._emit(record)

    def set_run_info(self, **fields: Any) -> None:
        """Merge identification fields into the manifest's ``run`` block."""
        with self._lock:
            self._run_info.update(fields)

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._sink is not None:
            self._sink.write(record)

    # -- manifest ------------------------------------------------------

    def stage_totals(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate *top-level* (depth 0) spans by name.

        Depth-0 spans partition the run's instrumented wall time, so
        their totals are the manifest's per-stage breakdown; deeper spans
        stay available in the trace for fine-grained analysis.
        """
        stages: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            if span["depth"] != 0:
                continue
            stage = stages.setdefault(
                span["name"], {"count": 0, "wall": 0.0, "cpu": 0.0}
            )
            stage["count"] += 1
            stage["wall"] += span["wall"]
            stage["cpu"] += span["cpu"]
        return stages

    def manifest(self) -> Dict[str, Any]:
        """The end-of-run summary: one JSON-serialisable dict.

        Fields: schema version, the ``run`` identification block
        (pid, cpu_count, plus whatever :meth:`set_run_info` merged —
        scenario fingerprint, seed, workers, ...), total wall/CPU time
        since construction, per-stage totals (:meth:`stage_totals`),
        every counter and gauge, span/event volumes, and a snapshot of
        the process-wide analysis cache's hit/miss statistics.
        """
        from repro.cache import analysis_cache  # leaf-ward import: no cycle

        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._cpu0
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            run_info = dict(self._run_info)
            span_count = len(self.spans)
            event_count = len(self.events)
        return {
            "schema": OBS_SCHEMA_VERSION,
            "run": run_info,
            "wall_time": wall,
            "cpu_time": cpu,
            "stages": self.stage_totals(),
            "counters": counters,
            "gauges": gauges,
            "cache": analysis_cache().stats(),
            "span_count": span_count,
            "event_count": event_count,
        }


_ACTIVE: Union[Instrumentation, NullInstrumentation] = NULL_INSTRUMENTATION


def current() -> Union[Instrumentation, NullInstrumentation]:
    """The process's active instrumentation (the null object by default)."""
    return _ACTIVE


@contextmanager
def activate(instrumentation: Instrumentation) -> Iterator[Instrumentation]:
    """Install ``instrumentation`` as the active instance for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = instrumentation
    try:
        yield instrumentation
    finally:
        _ACTIVE = previous


@contextmanager
def instrument(trace: Optional[str] = None) -> Iterator[Instrumentation]:
    """Convenience: build, activate, and (for traces) flush instrumentation.

    Args:
        trace: optional path; events and spans stream there as JSONL and
            the manifest is appended as the final line on exit.
    """
    from repro.obs.sinks import JsonlSink

    sink = JsonlSink(trace) if trace is not None else None
    instrumentation = Instrumentation(sink=sink)
    try:
        with activate(instrumentation):
            yield instrumentation
    finally:
        if sink is not None:
            sink.write(
                {"type": "manifest", "manifest": instrumentation.manifest()}
            )
            sink.close()


def _reset_after_fork() -> None:  # pragma: no cover - exercised via workers
    """Forked children must not inherit the parent's live instrumentation."""
    global _ACTIVE
    _ACTIVE = NULL_INSTRUMENTATION


if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on Linux
    os.register_at_fork(after_in_child=_reset_after_fork)
