"""Track-quality metrics: estimated vs. true trajectory.

The true trajectory is the waypoint array the simulator used
(``(M + 1, 2)``, positions at period boundaries); the reference position
for period ``p`` is the midpoint of its segment, matching the estimator's
convention.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import AnalysisError
from repro.tracking.estimate import TrackEstimate

__all__ = ["position_rmse", "cross_track_rmse", "heading_error", "speed_error"]


def _true_midpoints(waypoints: np.ndarray) -> np.ndarray:
    waypoints = np.asarray(waypoints, dtype=float)
    if waypoints.ndim != 2 or waypoints.shape[1] != 2 or waypoints.shape[0] < 2:
        raise AnalysisError(
            f"waypoints must have shape (M + 1, 2), got {waypoints.shape}"
        )
    return 0.5 * (waypoints[:-1] + waypoints[1:])


def position_rmse(estimate: TrackEstimate, waypoints: np.ndarray) -> float:
    """RMS distance between estimated and true positions at observed periods."""
    midpoints = _true_midpoints(waypoints)
    errors = []
    for period, predicted in zip(estimate.periods, estimate.predicted_positions()):
        index = int(period) - 1
        if not 0 <= index < midpoints.shape[0]:
            raise AnalysisError(
                f"period {int(period)} outside the truth's {midpoints.shape[0]} periods"
            )
        errors.append(np.sum((predicted - midpoints[index]) ** 2))
    return math.sqrt(float(np.mean(errors)))


def _point_to_polyline_distance(points: np.ndarray, polyline: np.ndarray) -> np.ndarray:
    """Distance from each point to the nearest point of the polyline."""
    best = np.full(points.shape[0], np.inf)
    for start, end in zip(polyline[:-1], polyline[1:]):
        seg = end - start
        seg_len_sq = float(seg @ seg)
        rel = points - start
        if seg_len_sq == 0.0:
            distances = np.linalg.norm(rel, axis=1)
        else:
            t = np.clip(rel @ seg / seg_len_sq, 0.0, 1.0)
            distances = np.linalg.norm(rel - t[:, None] * seg[None, :], axis=1)
        best = np.minimum(best, distances)
    return best


def cross_track_rmse(estimate: TrackEstimate, waypoints: np.ndarray) -> float:
    """RMS distance from estimated positions to the true track polyline.

    Unlike :func:`position_rmse` this ignores along-track (timing) error:
    it measures only how far the estimated path strays from the true path.
    """
    waypoints = np.asarray(waypoints, dtype=float)
    if waypoints.ndim != 2 or waypoints.shape[1] != 2 or waypoints.shape[0] < 2:
        raise AnalysisError(
            f"waypoints must have shape (M + 1, 2), got {waypoints.shape}"
        )
    predicted = estimate.predicted_positions()
    distances = _point_to_polyline_distance(predicted, waypoints)
    return math.sqrt(float(np.mean(distances**2)))


def heading_error(estimate: TrackEstimate, waypoints: np.ndarray) -> float:
    """Absolute angle (radians, in ``[0, pi]``) between estimated and true motion.

    The true heading is taken from the overall displacement (last waypoint
    minus first) — exact for straight tracks, the model's assumption.
    """
    waypoints = np.asarray(waypoints, dtype=float)
    displacement = waypoints[-1] - waypoints[0]
    norm = np.linalg.norm(displacement)
    if norm == 0.0:
        raise AnalysisError("true track has zero displacement")
    cosine = float(np.clip(estimate.direction @ (displacement / norm), -1.0, 1.0))
    return math.acos(cosine)


def speed_error(estimate: TrackEstimate, waypoints: np.ndarray) -> float:
    """``estimated speed - true mean speed`` in m/s (signed)."""
    waypoints = np.asarray(waypoints, dtype=float)
    num_periods = waypoints.shape[0] - 1
    if num_periods < 1:
        raise AnalysisError("waypoints must span at least one period")
    path_length = float(
        np.linalg.norm(np.diff(waypoints, axis=0), axis=1).sum()
    )
    true_speed = path_length / (num_periods * estimate.period_length)
    return estimate.speed - true_speed
