"""Least-squares track estimation from detection reports.

Each detection report places the target within ``Rs`` of a known sensor at
a known period, so the centroid of period-``p`` reporters estimates the
target's period-``p`` position (error ~ ``Rs / sqrt(reporters)``).  A
weighted total-least-squares line through the centroids, plus a regression
of the along-track coordinate on the period index, recovers the straight
constant-speed track of the paper's model: heading, speed, and position
per period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.detection.reports import DetectionReport
from repro.errors import AnalysisError

__all__ = ["TrackEstimate", "estimate_track"]


@dataclass(frozen=True)
class TrackEstimate:
    """A fitted straight constant-speed track.

    The track's position at period ``p`` (midpoint-of-segment convention)
    is ``centroid + direction * (offset + rate * p)``.

    Attributes:
        centroid: weighted mean of the per-period report centroids.
        direction: unit vector along the estimated motion.
        offset: along-track intercept of the period regression (meters).
        rate: along-track distance per period (meters/period, signed
            non-negative by the direction convention).
        period_length: seconds per period (carried for speed conversion).
        periods: sorted array of periods that contributed reports.
        period_centroids: ``(len(periods), 2)`` reporter centroids.
        report_counts: reports behind each centroid (regression weights).
    """

    centroid: np.ndarray
    direction: np.ndarray
    offset: float
    rate: float
    period_length: float
    periods: np.ndarray
    period_centroids: np.ndarray
    report_counts: np.ndarray

    @property
    def speed(self) -> float:
        """Estimated target speed in m/s."""
        return self.rate / self.period_length

    @property
    def heading(self) -> float:
        """Estimated heading in radians."""
        return float(np.arctan2(self.direction[1], self.direction[0]))

    def position_at(self, period: float) -> np.ndarray:
        """Estimated target position at (fractional) period ``period``."""
        return self.centroid + self.direction * (self.offset + self.rate * period)

    def predicted_positions(self) -> np.ndarray:
        """Positions at every observed period, ``(len(periods), 2)``."""
        along = self.offset + self.rate * self.periods
        return self.centroid[None, :] + along[:, None] * self.direction[None, :]


def _period_centroids(
    reports: Iterable[DetectionReport],
) -> Dict[int, List[np.ndarray]]:
    by_period: Dict[int, List[np.ndarray]] = {}
    for report in reports:
        by_period.setdefault(report.period, []).append(
            np.array([report.position.x, report.position.y])
        )
    return by_period


def estimate_track(
    reports: Iterable[DetectionReport], period_length: float
) -> TrackEstimate:
    """Fit a straight constant-speed track to a set of reports.

    Args:
        reports: detection reports (any order); at least two distinct
            periods must be represented.
        period_length: sensing period ``t`` in seconds.

    Returns:
        The fitted :class:`TrackEstimate`.

    Raises:
        AnalysisError: with fewer than two distinct report periods, or
            when the reporter geometry is degenerate (all centroids
            coincide, leaving the direction unidentifiable).
    """
    if period_length <= 0:
        raise AnalysisError(f"period_length must be positive, got {period_length}")
    by_period = _period_centroids(reports)
    if len(by_period) < 2:
        raise AnalysisError(
            f"track estimation needs reports from >= 2 distinct periods, "
            f"got {len(by_period)}"
        )

    periods = np.array(sorted(by_period), dtype=float)
    centroids = np.array(
        [np.mean(by_period[int(p)], axis=0) for p in periods]
    )
    weights = np.array([len(by_period[int(p)]) for p in periods], dtype=float)

    total_weight = weights.sum()
    mean = (weights[:, None] * centroids).sum(axis=0) / total_weight
    deltas = centroids - mean
    covariance = (weights[:, None, None] * (
        deltas[:, :, None] * deltas[:, None, :]
    )).sum(axis=0) / total_weight
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    if eigenvalues[-1] <= 1e-12:
        raise AnalysisError(
            "all report centroids coincide; track direction unidentifiable"
        )
    direction = eigenvectors[:, -1]

    # Regress the along-track coordinate on the period index.
    along = deltas @ direction
    period_mean = (weights * periods).sum() / total_weight
    period_var = (weights * (periods - period_mean) ** 2).sum() / total_weight
    if period_var <= 1e-12:
        raise AnalysisError("reports span a single period; speed unidentifiable")
    covariance_sp = (
        weights * (periods - period_mean) * along
    ).sum() / total_weight
    rate = covariance_sp / period_var
    if rate < 0:  # orient the line along the direction of motion
        direction = -direction
        along = -along
        rate = -rate
    offset = (weights * along).sum() / total_weight - rate * period_mean

    return TrackEstimate(
        centroid=mean,
        direction=direction,
        offset=float(offset),
        rate=float(rate),
        period_length=period_length,
        periods=periods,
        period_centroids=centroids,
        report_counts=weights,
    )
