"""Track estimation from detection reports.

Group based detection asks whether reports "can be mapped to a possible
target track" (paper Section 1); once the system-level decision fires, the
base station usually also wants that track.  This package estimates it:
each report localises the target to within ``Rs`` of the reporting sensor
at a known period, so per-period sensor centroids fitted with a total
least squares line recover the straight, constant-speed tracks the model
assumes.
"""

from repro.tracking.cluster import cluster_reports
from repro.tracking.estimate import TrackEstimate, estimate_track
from repro.tracking.metrics import (
    cross_track_rmse,
    heading_error,
    position_rmse,
    speed_error,
)

__all__ = [
    "TrackEstimate",
    "cluster_reports",
    "cross_track_rmse",
    "estimate_track",
    "heading_error",
    "position_rmse",
    "speed_error",
]
