"""Separating multiple targets: greedy track clustering.

The paper defers "multiple targets that might be near each other and/or
crossing" to future work, noting its analysis "still holds per target"
when targets are far apart.  Operationally, the base station must first
*split* the merged report stream into per-target groups before applying
the k-of-M rule per group.  This module implements the natural greedy
splitter: repeatedly extract the largest speed-consistent subset
(:meth:`~repro.detection.track_filter.SpeedGateTrackFilter.largest_feasible_subset`)
from the remaining reports.

Greedy extraction is exact when targets are far apart relative to the
speed gate's reach (each target's reports are mutually consistent and
inconsistent with the other's) and degrades gracefully as targets
approach — precisely the regime boundary the paper describes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.detection.reports import DetectionReport
from repro.detection.track_filter import SpeedGateTrackFilter
from repro.errors import AnalysisError

__all__ = ["cluster_reports"]


def cluster_reports(
    reports: Sequence[DetectionReport],
    gate: SpeedGateTrackFilter,
    min_cluster_size: int = 2,
    max_clusters: int = 16,
) -> List[List[DetectionReport]]:
    """Split reports into speed-consistent track candidates.

    Args:
        reports: the merged report set (any order).
        gate: the speed-gate feasibility filter defining consistency.
        min_cluster_size: clusters smaller than this are treated as noise
            and not emitted.
        max_clusters: safety bound on the number of extracted clusters.

    Returns:
        Clusters in extraction order (largest-consistent-first); reports
        not assigned to any emitted cluster are dropped as noise.

    Raises:
        AnalysisError: on invalid bounds.
    """
    if min_cluster_size < 1:
        raise AnalysisError(
            f"min_cluster_size must be >= 1, got {min_cluster_size}"
        )
    if max_clusters < 1:
        raise AnalysisError(f"max_clusters must be >= 1, got {max_clusters}")

    remaining = list(reports)
    clusters: List[List[DetectionReport]] = []
    while remaining and len(clusters) < max_clusters:
        subset = gate.largest_feasible_subset(remaining)
        if len(subset) < min_cluster_size:
            break
        clusters.append(subset)
        chosen = set(id(r) for r in subset)
        remaining = [r for r in remaining if id(r) not in chosen]
    return clusters
