"""The stadium shape: detectable region of a target moving in a straight line.

During one sensing period a target moves distance ``V * t`` along a straight
line.  Every sensor within sensing range ``Rs`` of any point of that path can
detect it, so the *detectable region* (DR, Fig. 1 of the paper) is the set of
points within distance ``Rs`` of the travelled segment — a rectangle of size
``(V*t) x (2*Rs)`` capped by two half-discs.  Its area is
``2 * Rs * V * t + pi * Rs**2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.shapes import Point, Segment

__all__ = ["Stadium"]


@dataclass(frozen=True)
class Stadium:
    """Set of points within ``radius`` of ``segment`` (a "capsule").

    Attributes:
        segment: the core segment (the target's path in one period).
        radius: the sensing range padding the segment.
    """

    segment: Segment
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"radius must be non-negative, got {self.radius}")

    @property
    def area(self) -> float:
        """``2 * radius * length + pi * radius**2``."""
        return 2.0 * self.radius * self.segment.length + math.pi * self.radius**2

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the boundary of the stadium."""
        return self.segment.distance_to_point(point) <= self.radius

    def distance_to(self, point: Point) -> float:
        """Distance from ``point`` to the stadium (0 if inside)."""
        return max(0.0, self.segment.distance_to_point(point) - self.radius)

    def bounding_box(self) -> tuple:
        """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""
        xmin = min(self.segment.start.x, self.segment.end.x) - self.radius
        xmax = max(self.segment.start.x, self.segment.end.x) + self.radius
        ymin = min(self.segment.start.y, self.segment.end.y) - self.radius
        ymax = max(self.segment.start.y, self.segment.end.y) + self.radius
        return (xmin, ymin, xmax, ymax)

    @staticmethod
    def aggregate_area(radius: float, step_length: float, periods: int) -> float:
        """Area of the ARegion: union of ``periods`` collinear stadiums.

        For a target travelling ``step_length`` per period for ``periods``
        periods in a straight line, the union of the per-period DRs is one
        long stadium of core length ``periods * step_length``:
        ``2 * radius * periods * step_length + pi * radius**2``
        (the paper's ``2*M*Rs*V*t + pi*Rs^2``).

        Raises:
            GeometryError: if any argument is negative or ``periods < 1``.
        """
        if radius < 0 or step_length < 0:
            raise GeometryError("radius and step_length must be non-negative")
        if periods < 1:
            raise GeometryError(f"periods must be >= 1, got {periods}")
        return 2.0 * radius * step_length * periods + math.pi * radius * radius
