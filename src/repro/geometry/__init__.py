"""Planar geometry substrate.

Everything the analytical model and the simulator need to reason about
circles, segments, and the stadium-shaped detectable region of a moving
target lives here.
"""

from repro.geometry.circle_math import (
    circle_area,
    circle_lens_area,
    circular_segment_area,
    chord_half_length,
)
from repro.geometry.shapes import Circle, Point, Segment
from repro.geometry.stadium import Stadium
from repro.geometry.coverage import (
    covered_fraction,
    estimate_area_monte_carlo,
    estimate_coverage_count_areas,
    expected_covered_fraction,
    void_probability,
)

__all__ = [
    "Circle",
    "Point",
    "Segment",
    "Stadium",
    "chord_half_length",
    "circle_area",
    "circle_lens_area",
    "circular_segment_area",
    "covered_fraction",
    "estimate_area_monte_carlo",
    "estimate_coverage_count_areas",
    "expected_covered_fraction",
    "void_probability",
]
