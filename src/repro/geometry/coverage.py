"""Coverage statistics and Monte Carlo area estimation.

Two roles:

* Deployment-level coverage statistics for sparse networks (what fraction of
  the field is inside some sensor's sensing range, how likely a point is in
  a sensing void) — the quantities that make a deployment "sparse".
* Monte Carlo estimation of the coverage-count region areas
  (``Region(i)`` / ``AreaH(i)`` of the paper).  Used as an independent
  cross-check of the closed forms in :mod:`repro.core.regions`, and as a
  fallback when the closed forms do not apply (``M <= ms``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.errors import GeometryError

__all__ = [
    "expected_covered_fraction",
    "void_probability",
    "covered_fraction",
    "estimate_area_monte_carlo",
    "estimate_coverage_count_areas",
]


def expected_covered_fraction(
    num_sensors: int, sensing_range: float, field_area: float
) -> float:
    """Expected fraction of the field covered by at least one sensor.

    For ``N`` sensors placed uniformly at random in a field of area ``S``
    (ignoring boundary effects), a fixed point is missed by one sensor with
    probability ``1 - pi*Rs^2/S``, so the covered fraction is
    ``1 - (1 - pi*Rs^2/S)**N``.

    Raises:
        GeometryError: on non-positive field area, negative range, or
            negative sensor count.
    """
    if field_area <= 0:
        raise GeometryError(f"field_area must be positive, got {field_area}")
    if sensing_range < 0:
        raise GeometryError(f"sensing_range must be non-negative, got {sensing_range}")
    if num_sensors < 0:
        raise GeometryError(f"num_sensors must be non-negative, got {num_sensors}")
    per_sensor = min(1.0, math.pi * sensing_range**2 / field_area)
    return 1.0 - (1.0 - per_sensor) ** num_sensors


def void_probability(num_sensors: int, sensing_range: float, field_area: float) -> float:
    """Probability a uniformly random point lies in a sensing void."""
    return 1.0 - expected_covered_fraction(num_sensors, sensing_range, field_area)


def covered_fraction(
    sensor_xy: np.ndarray,
    sensing_range: float,
    width: float,
    height: float,
    samples: int = 20_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte Carlo estimate of the covered fraction of a concrete deployment.

    Args:
        sensor_xy: ``(N, 2)`` array of sensor positions.
        sensing_range: sensing radius of every sensor.
        width: field width.
        height: field height.
        samples: number of uniform test points.
        rng: optional numpy generator (fresh default generator otherwise).

    Returns:
        Fraction of test points within ``sensing_range`` of some sensor.
    """
    if width <= 0 or height <= 0:
        raise GeometryError("field dimensions must be positive")
    if samples <= 0:
        raise GeometryError(f"samples must be positive, got {samples}")
    sensor_xy = np.asarray(sensor_xy, dtype=float)
    if sensor_xy.ndim != 2 or sensor_xy.shape[1] != 2:
        raise GeometryError(f"sensor_xy must have shape (N, 2), got {sensor_xy.shape}")
    if rng is None:
        rng = np.random.default_rng()
    points = rng.uniform((0.0, 0.0), (width, height), size=(samples, 2))
    if sensor_xy.shape[0] == 0:
        return 0.0
    # (samples, N) pairwise squared distances, chunked to bound memory.
    covered = np.zeros(samples, dtype=bool)
    range_sq = sensing_range * sensing_range
    chunk = max(1, 10_000_000 // max(1, sensor_xy.shape[0]))
    for start in range(0, samples, chunk):
        block = points[start : start + chunk]
        d2 = (
            (block[:, None, 0] - sensor_xy[None, :, 0]) ** 2
            + (block[:, None, 1] - sensor_xy[None, :, 1]) ** 2
        )
        covered[start : start + chunk] = (d2 <= range_sq).any(axis=1)
    return float(covered.mean())


def estimate_area_monte_carlo(
    contains: Callable[[np.ndarray, np.ndarray], np.ndarray],
    bounding_box: tuple,
    samples: int = 100_000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Estimate the area of an arbitrary region by rejection sampling.

    Args:
        contains: vectorised predicate mapping arrays ``(xs, ys)`` to a
            boolean array of membership.
        bounding_box: ``(xmin, ymin, xmax, ymax)`` enclosing the region.
        samples: number of uniform samples in the box.
        rng: optional numpy generator.

    Returns:
        ``box_area * hit_fraction``.
    """
    xmin, ymin, xmax, ymax = bounding_box
    if xmax <= xmin or ymax <= ymin:
        raise GeometryError(f"degenerate bounding box {bounding_box}")
    if samples <= 0:
        raise GeometryError(f"samples must be positive, got {samples}")
    if rng is None:
        rng = np.random.default_rng()
    xs = rng.uniform(xmin, xmax, size=samples)
    ys = rng.uniform(ymin, ymax, size=samples)
    inside = np.asarray(contains(xs, ys), dtype=bool)
    box_area = (xmax - xmin) * (ymax - ymin)
    return box_area * float(inside.mean())


def estimate_coverage_count_areas(
    sensing_range: float,
    step_length: float,
    periods: int,
    samples: int = 200_000,
    rng: Union[None, int, np.random.Generator] = None,
) -> Dict[int, float]:
    """Monte Carlo estimate of the ``Region(i)`` areas of the S-approach.

    The target moves along the x-axis: in period ``j`` (1-based) it covers
    the segment ``[(j-1)*L, j*L] x {0}`` with ``L = step_length``.  A point
    covers the target in period ``j`` when its distance to that segment is
    at most ``sensing_range``.  ``Region(i)`` is the set of points covering
    the target in exactly ``i`` of the ``periods`` periods.

    Args:
        sensing_range: sensor sensing radius ``Rs``.
        step_length: per-period travel distance ``V * t``.
        periods: number of sensing periods ``M``.
        samples: Monte Carlo sample count.
        rng: optional numpy generator or integer seed.  Integer-seed calls
            are deterministic and therefore memoized in the shared
            :func:`repro.cache.analysis_cache` (keyed on every argument),
            so repeated cross-checks in a sweep cost one estimate.

    Returns:
        Mapping ``i -> estimated area of Region(i)`` for ``i >= 1``.  Keys
        with zero estimated area are included up to the maximum observed
        coverage count.
    """
    if sensing_range <= 0:
        raise GeometryError(f"sensing_range must be positive, got {sensing_range}")
    if step_length < 0:
        raise GeometryError(f"step_length must be non-negative, got {step_length}")
    if periods < 1:
        raise GeometryError(f"periods must be >= 1, got {periods}")
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        from repro.cache import analysis_cache

        key = (
            "mc_areas",
            float(sensing_range),
            float(step_length),
            int(periods),
            int(samples),
            int(rng),
        )
        seed = int(rng)
        return dict(
            analysis_cache().get_or_compute(
                key,
                lambda: _estimate_coverage_count_areas(
                    sensing_range,
                    step_length,
                    periods,
                    samples,
                    np.random.default_rng(seed),
                ),
            )
        )
    if rng is None:
        rng = np.random.default_rng()
    return _estimate_coverage_count_areas(
        sensing_range, step_length, periods, samples, rng
    )


def _estimate_coverage_count_areas(
    sensing_range: float,
    step_length: float,
    periods: int,
    samples: int,
    rng: np.random.Generator,
) -> Dict[int, float]:

    xmin = -sensing_range
    xmax = periods * step_length + sensing_range
    ymin, ymax = -sensing_range, sensing_range
    xs = rng.uniform(xmin, xmax, size=samples)
    ys = rng.uniform(ymin, ymax, size=samples)

    counts = np.zeros(samples, dtype=np.int64)
    for j in range(periods):
        seg_lo = j * step_length
        seg_hi = seg_lo + step_length
        # Distance from (x, y) to the horizontal segment [seg_lo, seg_hi] x {0}.
        dx = np.clip(xs, seg_lo, seg_hi) - xs
        dist_sq = dx * dx + ys * ys
        counts += dist_sq <= sensing_range * sensing_range

    box_area = (xmax - xmin) * (ymax - ymin)
    max_count = int(counts.max()) if samples else 0
    areas: Dict[int, float] = {}
    for i in range(1, max_count + 1):
        areas[i] = box_area * float(np.mean(counts == i))
    return areas
