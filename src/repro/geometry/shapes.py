"""Primitive planar shapes: points, segments, circles.

These are small immutable value types.  The hot paths of the simulator use
raw numpy arrays instead (see :mod:`repro.simulation.sensing`); the shape
classes exist for the scalar, readable API used by examples, the network
substrate, and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import GeometryError

__all__ = ["Point", "Segment", "Circle"]


@dataclass(frozen=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """The segment's midpoint."""
        return Point((self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0)

    def point_at(self, fraction: float) -> Point:
        """Point at the given ``fraction`` along the segment.

        ``fraction=0`` is ``start``, ``fraction=1`` is ``end``.  Values
        outside ``[0, 1]`` extrapolate along the segment's line.
        """
        return Point(
            self.start.x + fraction * (self.end.x - self.start.x),
            self.start.y + fraction * (self.end.y - self.start.y),
        )

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from ``point`` to any point on the segment."""
        vx = self.end.x - self.start.x
        vy = self.end.y - self.start.y
        wx = point.x - self.start.x
        wy = point.y - self.start.y
        seg_len_sq = vx * vx + vy * vy
        if seg_len_sq == 0.0:
            return self.start.distance_to(point)
        t = (wx * vx + wy * vy) / seg_len_sq
        t = min(1.0, max(0.0, t))
        closest = Point(self.start.x + t * vx, self.start.y + t * vy)
        return closest.distance_to(point)


@dataclass(frozen=True)
class Circle:
    """A circle with a ``center`` and ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"radius must be non-negative, got {self.radius}")

    @property
    def area(self) -> float:
        """Area of the disc."""
        return math.pi * self.radius * self.radius

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the circle."""
        return self.center.distance_to(point) <= self.radius

    def intersects(self, other: "Circle") -> bool:
        """Whether this circle's disc intersects ``other``'s disc."""
        return self.center.distance_to(other.center) <= self.radius + other.radius

    def intersection_area(self, other: "Circle") -> float:
        """Area of the intersection of the two discs (general radii)."""
        d = self.center.distance_to(other.center)
        r1, r2 = self.radius, other.radius
        if d >= r1 + r2:
            return 0.0
        # The near-concentric guard includes distances so small that the
        # general formula's d-divisions would underflow.
        if d <= abs(r1 - r2) or d < 1e-12 * min(r1, r2):
            smaller = min(r1, r2)
            return math.pi * smaller * smaller
        # Standard two-circle lens formula for distinct radii.
        term1 = r1 * r1 * math.acos((d * d + r1 * r1 - r2 * r2) / (2 * d * r1))
        term2 = r2 * r2 * math.acos((d * d + r2 * r2 - r1 * r1) / (2 * d * r2))
        term3 = 0.5 * math.sqrt(
            (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
        )
        return term1 + term2 - term3
