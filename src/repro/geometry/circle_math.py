"""Closed-form circle geometry used by the region decomposition.

The paper's Eq. (6) is built from the intersection area of two equal-radius
circles (a *lens*).  For two circles of radius ``r`` whose centers are ``d``
apart the lens area is::

    A(d) = 2 r^2 acos(d / 2r) - (d / 2) sqrt(4 r^2 - d^2)      0 <= d <= 2r

which the paper writes as ``2 r^2 acos(d/2r) - d sqrt(r^2 - (d/2)^2)`` —
the two forms are identical.  Beyond ``d = 2r`` the circles are disjoint and
the area is zero.
"""

from __future__ import annotations

import math

from repro.errors import GeometryError

__all__ = [
    "circle_area",
    "circle_lens_area",
    "circular_segment_area",
    "chord_half_length",
]


def circle_area(radius: float) -> float:
    """Area of a circle of the given ``radius``.

    Raises:
        GeometryError: if ``radius`` is negative.
    """
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    return math.pi * radius * radius


def circle_lens_area(distance: float, radius: float) -> float:
    """Intersection area of two circles of equal ``radius``.

    Args:
        distance: distance between the two circle centers (non-negative).
        radius: common radius of both circles (non-negative).

    Returns:
        The lens area.  ``pi * radius**2`` when ``distance == 0`` (the
        circles coincide) and ``0.0`` once ``distance >= 2 * radius``.

    Raises:
        GeometryError: if either argument is negative.
    """
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    if distance < 0:
        raise GeometryError(f"distance must be non-negative, got {distance}")
    if radius == 0 or distance >= 2 * radius:
        return 0.0
    half = distance / 2.0
    area = 2.0 * radius * radius * math.acos(half / radius) - distance * math.sqrt(
        radius * radius - half * half
    )
    # Near d = 2r the two terms cancel catastrophically and can leave a
    # tiny negative residue; the true area is non-negative by definition.
    return max(0.0, area)


def circular_segment_area(radius: float, chord_distance: float) -> float:
    """Area of the circular segment cut off by a chord.

    The chord lies at perpendicular distance ``chord_distance`` from the
    circle center; the segment is the smaller piece (the one not containing
    the center) when ``chord_distance > 0``.

    Raises:
        GeometryError: if ``radius`` is negative, ``chord_distance`` is
            negative, or the chord lies outside the circle.
    """
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    if chord_distance < 0:
        raise GeometryError(
            f"chord_distance must be non-negative, got {chord_distance}"
        )
    if chord_distance > radius:
        raise GeometryError(
            f"chord at distance {chord_distance} lies outside circle of radius {radius}"
        )
    if radius == 0:
        return 0.0
    return radius * radius * math.acos(
        chord_distance / radius
    ) - chord_distance * math.sqrt(radius * radius - chord_distance * chord_distance)


def chord_half_length(radius: float, chord_distance: float) -> float:
    """Half-length of the chord at perpendicular distance ``chord_distance``.

    A sensor at perpendicular distance ``y`` from a target's straight track
    covers the track for a chord of length ``2 * chord_half_length(Rs, y)``;
    this is what makes target coverage contiguous in time.

    Raises:
        GeometryError: if arguments are negative or the chord lies outside
            the circle.
    """
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    if chord_distance < 0:
        raise GeometryError(
            f"chord_distance must be non-negative, got {chord_distance}"
        )
    if chord_distance > radius:
        raise GeometryError(
            f"chord at distance {chord_distance} lies outside circle of radius {radius}"
        )
    return math.sqrt(radius * radius - chord_distance * chord_distance)
