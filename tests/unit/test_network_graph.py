"""Unit tests for repro.network.graph."""

import numpy as np
import pytest

from repro.errors import DeploymentError
from repro.network.graph import BASE_STATION, build_connectivity_graph


class TestBuildConnectivityGraph:
    def test_nodes_and_positions(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [20.0, 0.0]])
        graph = build_connectivity_graph(positions, 6.0)
        assert set(graph.nodes) == {0, 1, 2}
        assert graph.nodes[1]["pos"] == (5.0, 0.0)

    def test_edges_respect_range(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [20.0, 0.0]])
        graph = build_connectivity_graph(positions, 6.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)

    def test_range_boundary_inclusive(self):
        positions = np.array([[0.0, 0.0], [6.0, 0.0]])
        graph = build_connectivity_graph(positions, 6.0)
        assert graph.has_edge(0, 1)

    def test_no_self_loops(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        graph = build_connectivity_graph(positions, 10.0)
        assert all(not graph.has_edge(n, n) for n in graph.nodes)

    def test_base_station_added_and_linked(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0]])
        graph = build_connectivity_graph(positions, 10.0, base_station=(2.0, 0.0))
        assert BASE_STATION in graph
        assert graph.has_edge(0, BASE_STATION)
        assert not graph.has_edge(1, BASE_STATION)

    def test_single_node_graph(self):
        graph = build_connectivity_graph(np.array([[1.0, 1.0]]), 5.0)
        assert graph.number_of_nodes() == 1
        assert graph.number_of_edges() == 0

    def test_empty_deployment_with_base(self):
        graph = build_connectivity_graph(np.empty((0, 2)), 5.0, base_station=(0, 0))
        assert set(graph.nodes) == {BASE_STATION}

    def test_edge_count_matches_bruteforce(self, rng):
        positions = rng.uniform(0, 100, size=(40, 2))
        graph = build_connectivity_graph(positions, 25.0)
        expected = sum(
            1
            for i in range(40)
            for j in range(i + 1, 40)
            if np.hypot(*(positions[i] - positions[j])) <= 25.0
        )
        assert graph.number_of_edges() == expected

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DeploymentError):
            build_connectivity_graph(np.zeros((2, 3)), 5.0)
        with pytest.raises(DeploymentError):
            build_connectivity_graph(np.zeros((2, 2)), 0.0)
