"""Unit tests for repro.detection.group."""

import pytest

from repro.detection.group import GroupDetector
from repro.detection.reports import DetectionReport
from repro.detection.track_filter import SpeedGateTrackFilter
from repro.errors import SimulationError
from repro.geometry.shapes import Point


def report(node_id, period, x=0.0, y=0.0) -> DetectionReport:
    return DetectionReport(node_id, period, Point(x, y))


class TestBasicRule:
    def test_fires_at_threshold(self):
        detector = GroupDetector(window=5, threshold=3)
        assert not detector.observe(1, [report(0, 1)])
        assert not detector.observe(2, [report(1, 2)])
        assert detector.observe(3, [report(2, 3)])
        assert detector.detection_periods == [3]

    def test_window_expires_old_reports(self):
        detector = GroupDetector(window=3, threshold=2)
        detector.observe(1, [report(0, 1)])
        detector.observe(2, [])
        detector.observe(3, [])
        # Period 1's report has now left the window [2, 4].
        assert not detector.observe(4, [report(1, 4)])

    def test_report_at_window_edge_still_counts(self):
        detector = GroupDetector(window=3, threshold=2)
        detector.observe(1, [report(0, 1)])
        detector.observe(2, [])
        assert detector.observe(3, [report(1, 3)])

    def test_multiple_reports_single_period(self):
        detector = GroupDetector(window=5, threshold=3)
        assert detector.observe(1, [report(0, 1), report(1, 1), report(2, 1)])

    def test_min_nodes_requirement(self):
        detector = GroupDetector(window=5, threshold=3, min_nodes=2)
        # Three reports, all from node 0: count passes, node rule fails.
        assert not detector.observe(
            1, [report(0, 1), report(0, 1), report(0, 1)]
        )
        assert detector.observe(2, [report(1, 2)])

    def test_process_stream(self):
        detector = GroupDetector(window=4, threshold=2)
        stream = [
            (1, [report(0, 1)]),
            (2, []),
            (3, [report(1, 3)]),
        ]
        assert detector.process_stream(stream)

    def test_reset(self):
        detector = GroupDetector(window=5, threshold=1)
        detector.observe(1, [report(0, 1)])
        detector.reset()
        assert detector.detection_periods == []
        assert not detector.observe(1, [])


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            GroupDetector(window=0, threshold=1)
        with pytest.raises(SimulationError):
            GroupDetector(window=1, threshold=0)
        with pytest.raises(SimulationError):
            GroupDetector(window=1, threshold=1, min_nodes=0)

    def test_out_of_order_periods_rejected(self):
        detector = GroupDetector(window=5, threshold=1)
        detector.observe(3, [])
        with pytest.raises(SimulationError):
            detector.observe(3, [])
        with pytest.raises(SimulationError):
            detector.observe(2, [])

    def test_mismatched_report_period_rejected(self):
        detector = GroupDetector(window=5, threshold=1)
        with pytest.raises(SimulationError):
            detector.observe(2, [report(0, 1)])


class TestWithTrackFilter:
    @pytest.fixture
    def filtered_detector(self) -> GroupDetector:
        gate = SpeedGateTrackFilter(
            max_speed=10.0, sensing_range=100.0, period_length=60.0
        )
        return GroupDetector(window=10, threshold=3, track_filter=gate)

    def test_consistent_track_detected(self, filtered_detector):
        # Reports along a plausible 10 m/s track.
        filtered_detector.observe(1, [report(0, 1, 0.0)])
        filtered_detector.observe(2, [report(1, 2, 600.0)])
        assert filtered_detector.observe(3, [report(2, 3, 1200.0)])

    def test_scattered_false_alarms_filtered(self, filtered_detector):
        # Three reports scattered tens of kilometers apart cannot be one
        # target; the filter keeps only a subset below the threshold.
        filtered_detector.observe(1, [report(0, 1, 0.0)])
        filtered_detector.observe(2, [report(1, 2, 40_000.0)])
        assert not filtered_detector.observe(3, [report(2, 3, 80_000.0)])

    def test_false_alarm_plus_track_still_detected(self, filtered_detector):
        # A far-away false alarm must not mask a genuine track.
        filtered_detector.observe(1, [report(0, 1, 0.0), report(9, 1, 50_000.0)])
        filtered_detector.observe(2, [report(1, 2, 600.0)])
        assert filtered_detector.observe(3, [report(2, 3, 1200.0)])
