"""Unit tests for the batched M-S-approach kernel."""

import numpy as np
import pytest

from repro import obs
from repro.cache import clear_analysis_cache, grid_key
from repro.core.batched import (
    BatchedMarkovSpatialAnalysis,
    batch_convolve,
    batch_convolve_power,
    batched_binomial_pmf,
    detection_probability_grid,
)
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.core.report_dist import binomial_pmf, convolution_power
from repro.errors import AnalysisError


class TestHelpers:
    def test_batch_convolve_matches_numpy_rowwise(self, rng):
        a = rng.random((4, 7))
        b = rng.random((4, 3))
        out = batch_convolve(a, b)
        assert out.shape == (4, 9)
        for row in range(4):
            np.testing.assert_allclose(
                out[row], np.convolve(a[row], b[row]), atol=1e-15
            )

    def test_batch_convolve_shape_mismatch(self):
        with pytest.raises(AnalysisError, match="stacks"):
            batch_convolve(np.ones((2, 3)), np.ones((3, 3)))
        with pytest.raises(AnalysisError, match="stacks"):
            batch_convolve(np.ones(3), np.ones((1, 3)))

    def test_batch_convolve_power_matches_scalar(self, rng):
        base = rng.random((3, 4))
        for power in (0, 1, 2, 3, 7):
            out = batch_convolve_power(base, power)
            for row in range(3):
                np.testing.assert_allclose(
                    out[row], convolution_power(base[row], power), atol=1e-12
                )

    def test_batch_convolve_power_zero_is_unit(self):
        out = batch_convolve_power(np.ones((5, 3)), 0)
        np.testing.assert_array_equal(out, np.ones((5, 1)))

    def test_batch_convolve_power_validation(self):
        with pytest.raises(AnalysisError, match="non-negative"):
            batch_convolve_power(np.ones((1, 2)), -1)
        with pytest.raises(AnalysisError, match="non-empty"):
            batch_convolve_power(np.ones((1, 0)), 2)

    @pytest.mark.parametrize("p", [0.0, 0.3, 0.9, 1.0])
    def test_batched_binomial_rows_match_scalar(self, p):
        trials = [0, 1, 3, 10, 200]
        max_count = 4
        stack = batched_binomial_pmf(trials, p, max_count)
        assert stack.shape == (len(trials), max_count + 1)
        for row, n in enumerate(trials):
            full = binomial_pmf(n, p)
            limit = min(max_count, n)
            expected = np.zeros(max_count + 1)
            expected[: limit + 1] = full[: limit + 1]
            np.testing.assert_allclose(stack[row], expected, atol=1e-14)

    def test_batched_binomial_counts_beyond_trials_are_zero(self):
        stack = batched_binomial_pmf([2], 0.5, 6)
        assert (stack[0, 3:] == 0.0).all()
        assert stack[0, :3].sum() == pytest.approx(1.0)

    def test_batched_binomial_validation(self):
        with pytest.raises(AnalysisError, match="1-D"):
            batched_binomial_pmf(np.ones((2, 2), dtype=int), 0.5, 3)
        with pytest.raises(AnalysisError, match="max_count"):
            batched_binomial_pmf([3], 0.5, -1)
        with pytest.raises(AnalysisError, match="success_prob"):
            batched_binomial_pmf([3], 1.5, 3)


class TestConstruction:
    def test_invalid_truncations_and_substeps(self, small):
        with pytest.raises(AnalysisError, match="body_truncation"):
            BatchedMarkovSpatialAnalysis(small, body_truncation=0)
        with pytest.raises(AnalysisError, match="head_truncation"):
            BatchedMarkovSpatialAnalysis(small, head_truncation=0)
        with pytest.raises(AnalysisError, match="substeps"):
            BatchedMarkovSpatialAnalysis(small, substeps=0)

    def test_requires_body_stage(self, small):
        short = small.replace(window=small.ms)
        with pytest.raises(AnalysisError, match="M > ms"):
            BatchedMarkovSpatialAnalysis(short)

    def test_properties_mirror_scalar(self, small):
        engine = BatchedMarkovSpatialAnalysis(
            small, body_truncation=2, head_truncation=4, substeps=2
        )
        assert engine.scenario is small
        assert engine.body_truncation == 2
        assert engine.head_truncation == 4
        assert engine.substeps == 2


class TestGridEvaluation:
    def test_defaults_come_from_the_template_scenario(self, small):
        engine = BatchedMarkovSpatialAnalysis(small)
        grid = engine.detection_probability_grid()
        assert grid.shape == (1, 1)
        scalar = MarkovSpatialAnalysis(small).detection_probability()
        assert grid[0, 0] == pytest.approx(scalar, abs=1e-12)
        assert engine.detection_probability() == grid[0, 0]

    def test_axis_validation(self, small):
        engine = BatchedMarkovSpatialAnalysis(small)
        with pytest.raises(AnalysisError, match="num_sensors values"):
            engine.detection_probability_grid(num_sensors=[0])
        with pytest.raises(AnalysisError, match="num_sensors values"):
            engine.detection_probability_grid(num_sensors=[2.5])
        with pytest.raises(AnalysisError, match="num_sensors values"):
            engine.detection_probability_grid(num_sensors=[True])
        with pytest.raises(AnalysisError, match="thresholds values"):
            engine.detection_probability_grid(thresholds=[-1])
        with pytest.raises(AnalysisError, match="threshold"):
            engine.detection_probability(threshold=-1)

    def test_empty_axis_yields_empty_grid(self, small):
        engine = BatchedMarkovSpatialAnalysis(small)
        assert engine.detection_probability_grid(thresholds=[]).shape == (1, 0)
        assert engine.detection_probability_grid(num_sensors=[]).shape == (0, 1)

    def test_threshold_beyond_support_is_zero(self, small):
        engine = BatchedMarkovSpatialAnalysis(small)
        support = engine.report_count_distributions().shape[1]
        grid = engine.detection_probability_grid(
            thresholds=[0, support, support + 100]
        )
        assert grid[0, 0] == pytest.approx(1.0)
        assert grid[0, 1] == 0.0
        assert grid[0, 2] == 0.0
        assert engine.detection_probability(threshold=support + 100) == 0.0

    def test_zero_mass_error_names_truncations_and_counts(self, tiny):
        engine = BatchedMarkovSpatialAnalysis(
            tiny, body_truncation=1, head_truncation=1
        )
        with pytest.raises(AnalysisError) as excinfo:
            engine.detection_probability_grid(num_sensors=[12, 500_000])
        message = str(excinfo.value)
        assert "num_sensors=[500000]" in message
        assert "g=1" in message and "gh=1" in message
        assert "increase the truncations" in message
        # The unnormalised grid is still defined (it is just zero).
        raw = engine.detection_probability_grid(
            num_sensors=[500_000], normalize=False
        )
        assert raw[0, 0] == 0.0

    def test_duplicate_axis_values_give_identical_rows(self, small):
        grid = BatchedMarkovSpatialAnalysis(small).detection_probability_grid(
            num_sensors=[30, 30], thresholds=[2, 2]
        )
        assert (grid[0] == grid[1]).all()
        assert (grid[:, 0] == grid[:, 1]).all()

    def test_functional_form_matches_class(self, small):
        grid = detection_probability_grid(
            small, num_sensors=[20, 40], thresholds=[1, 3]
        )
        reference = BatchedMarkovSpatialAnalysis(
            small
        ).detection_probability_grid(num_sensors=[20, 40], thresholds=[1, 3])
        assert (grid == reference).all()


class TestCacheAndObs:
    def test_distributions_are_cached_and_frozen(self, small):
        clear_analysis_cache()
        engine = BatchedMarkovSpatialAnalysis(small)
        first = engine.report_count_distributions(num_sensors=[10, 20])
        second = engine.report_count_distributions(num_sensors=[10, 20])
        assert first is second
        assert not first.flags.writeable

    def test_grid_key_excludes_threshold(self, small):
        key_a = grid_key(small, 3, 3, 1, [10, 20])
        key_b = grid_key(small.replace(threshold=7), 3, 3, 1, [10, 20])
        assert key_a == key_b
        assert key_a != grid_key(small, 3, 3, 1, [10, 21])
        assert key_a != grid_key(small, 4, 3, 1, [10, 20])

    def test_batch_points_counter(self, small):
        instrumentation = obs.Instrumentation()
        with obs.activate(instrumentation):
            BatchedMarkovSpatialAnalysis(small).detection_probability_grid(
                num_sensors=[10, 20, 30], thresholds=[1, 2]
            )
        assert instrumentation.counters["batch.points"] == 6
