"""Unit tests for the replica fleet: router, resilience, replica, supervisor."""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import (
    CircuitBreaker,
    ConsistentHashRouter,
    DeadlineBudget,
    FleetConfig,
    FleetExhausted,
    FleetTimeout,
    NoHealthyReplica,
    ReplicaSupervisor,
    RetryBackoff,
)
from repro.service.replica import (
    Replica,
    ReplicaCrashed,
    ReplicaEvicted,
    ReplicaOverrun,
    STATE_HEALTHY,
)
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)


def run(coro):
    return asyncio.run(coro)


class _FakeClock:
    """Manually-advanced monotonic clock for deterministic timing tests."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _echo(value):
    return value


def _boom():
    raise ValueError("deterministic model error")


class _Gate:
    """A callable whose completion the test controls."""

    def __init__(self):
        self.calls = 0
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
            call = self.calls
        if call == 1 and not self.release.wait(timeout=10):
            raise RuntimeError("gate never released")
        return f"call-{call}"


# -- router ------------------------------------------------------------


class TestConsistentHashRouter:
    def test_empty_ring_raises(self):
        router = ConsistentHashRouter()
        with pytest.raises(LookupError):
            router.route("k")

    def test_add_duplicate_raises(self):
        router = ConsistentHashRouter()
        router.add("r0")
        with pytest.raises(ValueError):
            router.add("r0")

    def test_remove_missing_raises(self):
        router = ConsistentHashRouter()
        with pytest.raises(ValueError):
            router.remove("r0")

    def test_membership_protocol(self):
        router = ConsistentHashRouter()
        router.add("r0")
        router.add("r1")
        assert len(router) == 2
        assert "r0" in router
        assert "r2" not in router
        assert sorted(router.members) == ["r0", "r1"]

    def test_routing_is_deterministic(self):
        a = ConsistentHashRouter()
        b = ConsistentHashRouter()
        for member in ("r0", "r1", "r2"):
            a.add(member)
            b.add(member)
        keys = [f"k{i}" for i in range(100)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_shares_census_counts_every_key(self):
        router = ConsistentHashRouter()
        for member in ("r0", "r1", "r2"):
            router.add(member)
        keys = [f"k{i}" for i in range(300)]
        counts, total = router.shares(keys)
        assert total == len(keys)
        assert sum(counts.values()) == len(keys)


# -- resilience --------------------------------------------------------


class TestDeadlineBudget:
    def test_counts_down_against_the_clock(self):
        clock = _FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        assert budget.total == 10.0
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.expired()
        clock.advance(7.0)
        assert budget.remaining() == 0.0
        assert budget.expired()


class TestRetryBackoff:
    def test_seeded_sequence_is_reproducible(self):
        a = RetryBackoff(base=0.1, cap=5.0, seed=7)
        b = RetryBackoff(base=0.1, cap=5.0, seed=7)
        assert [a.delay(i) for i in range(6)] == [b.delay(i) for i in range(6)]

    def test_delays_stay_inside_the_jitter_envelope(self):
        backoff = RetryBackoff(base=0.1, cap=5.0, seed=42)
        for attempt in range(8):
            ceiling = min(5.0, 0.1 * (2**attempt))
            delay = backoff.delay(attempt)
            assert 0.5 * ceiling <= delay <= ceiling


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens_after_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0, clock=clock)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.state == BREAKER_HALF_OPEN
        # The single half-open probe slot is consumed by allow().
        assert breaker.allow()
        assert not breaker.allow()

    def test_half_open_probe_outcome_settles_the_state(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_reset_closes_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        breaker.reset()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()


# -- replica -----------------------------------------------------------


def _thread_pool():
    return ThreadPoolExecutor(max_workers=1)


class TestReplica:
    def test_run_returns_result_and_refreshes_heartbeat(self):
        async def main():
            replica = Replica("r0", _thread_pool)
            replica.consecutive_failures = 2
            result = await replica.run(_echo, "hi", timeout=5.0)
            assert result == "hi"
            assert replica.consecutive_failures == 0
            assert replica.heartbeat_age() < 5.0
            replica.evict()

        run(main())

    def test_overrun_raises_and_counts(self):
        async def main():
            replica = Replica("r0", _thread_pool)
            with pytest.raises(ReplicaOverrun):
                await replica.run(time.sleep, 5.0, timeout=0.05)
            assert replica.overruns == 1
            replica.evict()

        run(main())

    def test_eviction_mid_flight_fails_fast(self):
        async def main():
            replica = Replica("r0", _thread_pool)
            gate = _Gate()
            task = asyncio.ensure_future(replica.run(gate, timeout=10.0))
            while replica.inflight == 0:
                await asyncio.sleep(0.001)
            replica.evict()
            with pytest.raises(ReplicaEvicted):
                await task
            assert replica.inflight == 0, "in-flight accounting must not leak"
            gate.release.set()

        run(main())

    def test_eviction_of_queued_task_is_eviction_not_cancellation(self):
        # Eviction abandons the pool with cancel_futures=True, so a task
        # still *queued* behind a busy worker gets its future cancelled —
        # and that cancellation can reach asyncio.wait() in the same tick
        # as the eviction event.  It must surface as ReplicaEvicted (a
        # reroutable fleet fault), never a raw CancelledError.
        async def main():
            replica = Replica("r0", _thread_pool)
            gate = _Gate()
            running = asyncio.ensure_future(replica.run(gate, timeout=10.0))
            while gate.calls == 0:
                await asyncio.sleep(0.001)
            queued = asyncio.ensure_future(replica.run(_echo, 1, timeout=10.0))
            while replica.inflight < 2:
                await asyncio.sleep(0.001)
            replica.evict()
            with pytest.raises(ReplicaEvicted):
                await queued
            with pytest.raises(ReplicaEvicted):
                await running
            assert replica.inflight == 0
            gate.release.set()

        run(main())

    def test_killed_pool_surfaces_as_crash(self):
        async def main():
            replica = Replica("r0", _thread_pool)
            replica.kill()
            with pytest.raises(ReplicaCrashed):
                await replica.run(_echo, 1, timeout=5.0)
            replica.evict()

        run(main())

    def test_probe_reports_health(self):
        async def main():
            replica = Replica("r0", _thread_pool)
            assert await replica.probe(timeout=5.0)
            replica.kill()
            assert not await replica.probe(timeout=5.0)
            replica.evict()

        run(main())

    def test_deterministic_exceptions_propagate_untouched(self):
        async def main():
            replica = Replica("r0", _thread_pool)
            with pytest.raises(ValueError, match="deterministic model error"):
                await replica.run(_boom, timeout=5.0)
            replica.evict()

        run(main())


# -- supervisor --------------------------------------------------------


def _fast_config(**overrides) -> FleetConfig:
    defaults = dict(
        replicas=2,
        heartbeat_interval=0.05,
        probe_timeout=1.0,
        warmup_timeout=5.0,
        route_wait=0.5,
        restart_backoff_base=0.01,
        restart_backoff_cap=0.05,
        retry_backoff_base=0.005,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestReplicaSupervisor:
    def test_start_warms_every_replica(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            try:
                assert supervisor.replica_ids() == ("r0", "r1")
                assert supervisor.healthy_count() == 2
                for replica_id in supervisor.replica_ids():
                    assert supervisor.replica(replica_id).state == STATE_HEALTHY
            finally:
                await supervisor.stop()

        run(main())

    def test_submit_runs_on_the_fleet(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            try:
                budget = DeadlineBudget(5.0)
                result = await supervisor.submit(
                    "scenario-a", _echo, 42, budget=budget
                )
                assert result == 42
            finally:
                await supervisor.stop()

        run(main())

    def test_kill_is_detected_evicted_and_restarted(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            try:
                supervisor.replica("r0").kill()
                deadline = time.monotonic() + 5.0
                while (
                    supervisor.metrics.counter("restarts") < 1
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert supervisor.metrics.counter("evictions") == 1
                assert supervisor.metrics.counter("restarts") == 1
                assert supervisor.replica("r0").generation == 1
                assert supervisor.healthy_count() == 2
            finally:
                await supervisor.stop()

        run(main())

    def test_mid_flight_eviction_reroutes_without_charging_retries(self):
        """The leak fix: requests on an evicted replica re-route and finish."""

        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            gate = _Gate()
            try:
                # Find the key's owner, park a request on it, evict it.
                key = "scenario-leak"
                owner = supervisor._router.route(key)
                task = asyncio.ensure_future(
                    supervisor.submit(
                        key, gate, budget=DeadlineBudget(10.0)
                    )
                )
                victim = supervisor.replica(owner)
                while victim.inflight == 0:
                    await asyncio.sleep(0.001)
                supervisor._evict(victim, reason="test")
                result = await task
                # The re-routed attempt is the gate's second call.
                assert result == "call-2"
                assert supervisor.metrics.counter("reroutes") == 1
                assert supervisor.metrics.counter("crashes") == 0
            finally:
                gate.release.set()
                await supervisor.stop()

        run(main())

    def test_crash_retries_are_bounded(self):
        async def main():
            config = _fast_config(replicas=1, max_retries=0, route_wait=0.05)
            supervisor = ReplicaSupervisor(_thread_pool, config)
            await supervisor.start()
            try:
                supervisor.replica("r0").kill()
                with pytest.raises(FleetExhausted) as excinfo:
                    await supervisor.submit(
                        "k", _echo, 1, budget=DeadlineBudget(5.0)
                    )
                assert excinfo.value.crashes == 1
                assert "crashed 1 times" in str(excinfo.value)
            finally:
                await supervisor.stop()

        run(main())

    def test_budget_expiry_raises_fleet_timeout(self):
        async def main():
            config = _fast_config(replicas=1)
            supervisor = ReplicaSupervisor(_thread_pool, config)
            await supervisor.start()
            try:
                with pytest.raises(FleetTimeout):
                    await supervisor.submit(
                        "k", time.sleep, 5.0, budget=DeadlineBudget(0.2)
                    )
            finally:
                await supervisor.stop()

        run(main())

    def test_no_routable_replica_raises_after_patience(self):
        async def main():
            config = _fast_config(replicas=1, route_wait=0.1)
            supervisor = ReplicaSupervisor(_thread_pool, config)
            await supervisor.start()
            try:
                # Direct Replica.evict bypasses the supervisor, so no
                # restart is scheduled and nothing becomes routable.
                supervisor.replica("r0").evict()
                with pytest.raises(NoHealthyReplica):
                    await supervisor.submit(
                        "k", _echo, 1, budget=DeadlineBudget(5.0)
                    )
            finally:
                await supervisor.stop()

        run(main())

    def test_snapshot_reports_fleet_state(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            try:
                snapshot = supervisor.snapshot()
                assert set(snapshot["replicas"]) == {"r0", "r1"}
                assert snapshot["healthy_replicas"] == 2
                assert snapshot["recent_crashes"] == 0
                entry = snapshot["replicas"]["r0"]
                assert entry["state"] == STATE_HEALTHY
                assert entry["breaker"] == BREAKER_CLOSED
            finally:
                await supervisor.stop()

        run(main())

    def test_stop_does_not_count_teardown_as_eviction(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            await supervisor.stop()
            assert supervisor.metrics.counter("evictions") == 0

        run(main())

    def test_stop_then_start_again_in_a_new_loop(self):
        supervisor = ReplicaSupervisor(_thread_pool, _fast_config())

        async def one_cycle():
            await supervisor.start()
            result = await supervisor.submit(
                "k", _echo, "v", budget=DeadlineBudget(5.0)
            )
            await supervisor.stop()
            return result

        assert run(one_cycle()) == "v"
        assert run(one_cycle()) == "v"
