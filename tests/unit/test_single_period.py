"""Unit tests for repro.core.single_period (Section 3.1)."""

import math

import numpy as np
import pytest

from repro.core.single_period import (
    detection_probability_single_period,
    report_count_pmf_single_period,
)
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


@pytest.fixture
def single_period():
    return onr_scenario(window=1, threshold=1)


class TestReportCountPmf:
    def test_is_binomial(self, single_period):
        pmf = report_count_pmf_single_period(single_period)
        assert pmf.size == single_period.num_sensors + 1
        assert pmf.sum() == pytest.approx(1.0)
        # Eq. 1 at k=0: (1 - p_indi)^N.
        expected0 = (1.0 - single_period.p_indi) ** single_period.num_sensors
        assert pmf[0] == pytest.approx(expected0)

    def test_mean_matches_n_p(self, single_period):
        pmf = report_count_pmf_single_period(single_period)
        mean = float(np.arange(pmf.size) @ pmf)
        assert mean == pytest.approx(
            single_period.num_sensors * single_period.p_indi
        )

    def test_eq1_explicit_k(self, single_period):
        pmf = report_count_pmf_single_period(single_period)
        n, p = single_period.num_sensors, single_period.p_indi
        expected2 = math.comb(n, 2) * p**2 * (1 - p) ** (n - 2)
        assert pmf[2] == pytest.approx(expected2)


class TestDetectionProbability:
    def test_complements_pmf_head(self, single_period):
        pmf = report_count_pmf_single_period(single_period)
        p_detect = detection_probability_single_period(single_period)
        assert p_detect == pytest.approx(1.0 - pmf[0])

    def test_threshold_two(self):
        scenario = onr_scenario(window=1, threshold=2)
        pmf = report_count_pmf_single_period(scenario)
        p_detect = detection_probability_single_period(scenario)
        assert p_detect == pytest.approx(1.0 - pmf[0] - pmf[1])

    def test_sparse_single_period_detection_is_weak(self, single_period):
        # The motivation of Section 3.1's discussion: with k=1, M=1 in a
        # sparse network, even the best case detects with low probability.
        assert detection_probability_single_period(single_period) < 0.65

    def test_higher_threshold_means_lower_probability(self):
        values = [
            detection_probability_single_period(onr_scenario(window=1, threshold=k))
            for k in (1, 2, 3, 5)
        ]
        assert values == sorted(values, reverse=True)

    def test_multi_period_scenario_rejected(self, onr):
        with pytest.raises(AnalysisError):
            detection_probability_single_period(onr)
