"""Unit tests for repro.core.exact_spatial."""

import numpy as np
import pytest

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario, small_scenario


class TestConstruction:
    def test_closed_form_default(self, onr):
        exact = ExactSpatialAnalysis(onr)
        assert exact.region_areas.sum() == pytest.approx(onr.aregion_area)

    def test_unknown_method_rejected(self, onr):
        with pytest.raises(AnalysisError):
            ExactSpatialAnalysis(onr, region_method="quadrature")

    def test_closed_form_handles_small_window(self):
        # M <= ms: the window_regions generalisation covers what the
        # paper's decomposition excludes.
        scenario = onr_scenario(window=3, threshold=1)
        exact = ExactSpatialAnalysis(scenario)
        assert 0.0 < exact.detection_probability() < 1.0

    def test_monte_carlo_matches_closed_form_small_window(self):
        scenario = onr_scenario(window=3, threshold=1)
        closed = ExactSpatialAnalysis(scenario).detection_probability()
        sampled = ExactSpatialAnalysis(
            scenario, region_method="monte_carlo", monte_carlo_samples=300_000, rng=1
        ).detection_probability()
        assert sampled == pytest.approx(closed, abs=0.01)


class TestPmf:
    def test_sums_to_one(self, small):
        pmf = ExactSpatialAnalysis(small).report_count_pmf()
        assert pmf.sum() == pytest.approx(1.0)

    def test_pmf_cached_and_copied(self, small):
        exact = ExactSpatialAnalysis(small)
        first = exact.report_count_pmf()
        first[:] = 0.0
        assert exact.report_count_pmf().sum() == pytest.approx(1.0)

    def test_support_bounded(self, small):
        # At most N * (ms + 1) reports are possible.
        pmf = ExactSpatialAnalysis(small).report_count_pmf()
        assert pmf.size <= small.num_sensors * (small.ms + 1) + 1

    def test_expected_report_count(self, small):
        exact = ExactSpatialAnalysis(small)
        pmf = exact.report_count_pmf()
        assert exact.expected_report_count() == pytest.approx(
            float(np.arange(pmf.size) @ pmf)
        )

    def test_expected_reports_closed_form(self, small):
        # E[reports] = N * Pd * sum_i i * Region(i) / S, and
        # sum_i i * Region(i) = M * dr_area (each period's DR counted once).
        exact = ExactSpatialAnalysis(small)
        expected = (
            small.num_sensors
            * small.detect_prob
            * small.window
            * small.dr_area
            / small.field_area
        )
        assert exact.expected_report_count() == pytest.approx(expected)


class TestDetectionProbability:
    def test_monotone_in_threshold(self, small):
        exact = ExactSpatialAnalysis(small)
        values = [exact.detection_probability(threshold=k) for k in (0, 1, 3, 6)]
        assert values == sorted(values, reverse=True)

    def test_threshold_zero_is_one(self, small):
        assert ExactSpatialAnalysis(small).detection_probability(0) == pytest.approx(
            1.0
        )

    def test_threshold_beyond_support_is_zero(self, small):
        assert ExactSpatialAnalysis(small).detection_probability(10_000) == 0.0

    def test_negative_threshold_rejected(self, small):
        with pytest.raises(AnalysisError):
            ExactSpatialAnalysis(small).detection_probability(-2)

    def test_monte_carlo_close_to_closed_form(self):
        scenario = small_scenario()
        closed = ExactSpatialAnalysis(scenario).detection_probability()
        sampled = ExactSpatialAnalysis(
            scenario, region_method="monte_carlo", monte_carlo_samples=400_000, rng=3
        ).detection_probability()
        assert sampled == pytest.approx(closed, abs=0.01)
