"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "ScenarioError",
            "GeometryError",
            "DistributionError",
            "MarkovChainError",
            "DeploymentError",
            "SimulationError",
            "AnalysisError",
            "RoutingError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        assert issubclass(getattr(errors, name), errors.ReproError)

    def test_value_errors_are_value_errors(self):
        # Input-validation errors double as ValueError so generic callers
        # can catch them idiomatically.
        for name in (
            "ScenarioError",
            "GeometryError",
            "DistributionError",
            "MarkovChainError",
            "DeploymentError",
        ):
            assert issubclass(getattr(errors, name), ValueError), name

    def test_runtime_errors_are_runtime_errors(self):
        for name in ("SimulationError", "AnalysisError", "RoutingError"):
            assert issubclass(getattr(errors, name), RuntimeError), name

    def test_catching_base_class_catches_library_errors(self):
        from repro.experiments.presets import onr_scenario

        with pytest.raises(errors.ReproError):
            onr_scenario(num_sensors=0)

    def test_messages_are_informative(self):
        from repro.experiments.presets import onr_scenario

        with pytest.raises(errors.ScenarioError, match="num_sensors"):
            onr_scenario(num_sensors=0)
        with pytest.raises(errors.ScenarioError, match="detect_prob"):
            onr_scenario(detect_prob=7.0)
