"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "ScenarioError",
            "GeometryError",
            "DistributionError",
            "MarkovChainError",
            "DeploymentError",
            "SimulationError",
            "AnalysisError",
            "RoutingError",
            "StreamError",
            "ProtocolError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        assert issubclass(getattr(errors, name), errors.ReproError)

    def test_value_errors_are_value_errors(self):
        # Input-validation errors double as ValueError so generic callers
        # can catch them idiomatically.
        for name in (
            "ScenarioError",
            "GeometryError",
            "DistributionError",
            "MarkovChainError",
            "DeploymentError",
        ):
            assert issubclass(getattr(errors, name), ValueError), name

    def test_runtime_errors_are_runtime_errors(self):
        for name in (
            "SimulationError",
            "AnalysisError",
            "RoutingError",
            "StreamError",
        ):
            assert issubclass(getattr(errors, name), RuntimeError), name

    def test_protocol_error_is_stream_error_with_code(self):
        exc = errors.ProtocolError("bad frame", code="framing")
        assert isinstance(exc, errors.StreamError)
        assert exc.code == "framing"
        assert errors.ProtocolError("default").code == "protocol"

    def test_catching_base_class_catches_library_errors(self):
        from repro.experiments.presets import onr_scenario

        with pytest.raises(errors.ReproError):
            onr_scenario(num_sensors=0)

    def test_messages_are_informative(self):
        from repro.experiments.presets import onr_scenario

        with pytest.raises(errors.ScenarioError, match="num_sensors"):
            onr_scenario(num_sensors=0)
        with pytest.raises(errors.ScenarioError, match="detect_prob"):
            onr_scenario(detect_prob=7.0)
