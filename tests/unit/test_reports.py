"""Unit tests for repro.detection.reports."""

import pytest

from repro.detection.reports import DetectionReport
from repro.errors import SimulationError
from repro.geometry.shapes import Point


class TestDetectionReport:
    def test_fields(self):
        report = DetectionReport(node_id=3, period=7, position=Point(1.0, 2.0))
        assert report.node_id == 3
        assert report.period == 7
        assert report.position == Point(1.0, 2.0)

    def test_immutable(self):
        report = DetectionReport(0, 1, Point(0, 0))
        with pytest.raises(AttributeError):
            report.period = 2

    def test_hashable_and_comparable(self):
        a = DetectionReport(0, 1, Point(0, 0))
        b = DetectionReport(0, 1, Point(0, 0))
        assert a == b
        assert hash(a) == hash(b)

    def test_invalid_node_rejected(self):
        with pytest.raises(SimulationError):
            DetectionReport(-1, 1, Point(0, 0))

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            DetectionReport(0, 0, Point(0, 0))
