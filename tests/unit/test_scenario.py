"""Unit tests for repro.core.scenario."""

import math

import pytest

from repro.core.scenario import Scenario
from repro.deployment.field import SensorField
from repro.errors import ScenarioError
from repro.experiments.presets import onr_scenario


class TestDerivedQuantities:
    def test_step_length(self, onr):
        assert onr.step_length == pytest.approx(600.0)

    def test_ms_fast_target(self, onr):
        # 2*1000 / 600 = 3.33 -> ceil = 4 (the paper's Fig. 3/4 example).
        assert onr.ms == 4

    def test_ms_slow_target(self, onr_slow):
        # 2*1000 / 240 = 8.33 -> ceil = 9.
        assert onr_slow.ms == 9

    def test_ms_exact_division(self):
        scenario = onr_scenario(speed=10.0, sensing_period=100.0)
        # 2*1000 / 1000 = 2 exactly.
        assert scenario.ms == 2

    def test_max_coverage_periods(self, onr):
        assert onr.max_coverage_periods == onr.ms + 1

    def test_dr_area(self, onr):
        assert onr.dr_area == pytest.approx(2 * 1000 * 600 + math.pi * 1000**2)

    def test_nedr_body_area(self, onr):
        assert onr.nedr_body_area == pytest.approx(2 * 1000 * 600)

    def test_aregion_area(self, onr):
        assert onr.aregion_area == pytest.approx(
            2 * 20 * 1000 * 600 + math.pi * 1000**2
        )

    def test_p_indi(self, onr):
        expected = 0.9 * onr.dr_area / (32000.0**2)
        assert onr.p_indi == pytest.approx(expected)

    def test_body_stage_flags(self, onr):
        assert onr.has_body_stage
        assert onr.body_steps == 20 - 4 - 1

    def test_no_body_stage_when_window_small(self):
        scenario = onr_scenario(window=3, threshold=1)
        assert scenario.ms == 4
        assert not scenario.has_body_stage
        assert scenario.body_steps == 0


class TestValidation:
    def test_rejects_bad_sensor_count(self):
        with pytest.raises(ScenarioError):
            onr_scenario(num_sensors=0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ScenarioError):
            onr_scenario(sensing_range=0.0)
        with pytest.raises(ScenarioError):
            onr_scenario(sensing_range=-10.0)

    def test_rejects_static_target(self):
        with pytest.raises(ScenarioError):
            onr_scenario(speed=0.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ScenarioError):
            onr_scenario(sensing_period=0.0)

    def test_rejects_bad_detect_prob(self):
        with pytest.raises(ScenarioError):
            onr_scenario(detect_prob=0.0)
        with pytest.raises(ScenarioError):
            onr_scenario(detect_prob=1.1)

    def test_detect_prob_one_allowed(self):
        assert onr_scenario(detect_prob=1.0).detect_prob == 1.0

    def test_rejects_bad_window_and_threshold(self):
        with pytest.raises(ScenarioError):
            onr_scenario(window=0)
        with pytest.raises(ScenarioError):
            onr_scenario(threshold=0)

    def test_rejects_aregion_larger_than_field(self):
        with pytest.raises(ScenarioError):
            Scenario(
                field=SensorField.square(100.0),
                num_sensors=10,
                sensing_range=50.0,
                target_speed=10.0,
                sensing_period=10.0,
                detect_prob=0.9,
                window=20,
                threshold=5,
            )


class TestConvenience:
    def test_replace(self, onr):
        changed = onr.replace(num_sensors=60)
        assert changed.num_sensors == 60
        assert changed.sensing_range == onr.sensing_range
        assert onr.num_sensors == 240  # original untouched

    def test_replace_validates(self, onr):
        with pytest.raises(ScenarioError):
            onr.replace(detect_prob=2.0)

    def test_describe_mentions_key_parameters(self, onr):
        text = onr.describe()
        assert "240 sensors" in text
        assert "ms=4" in text

    def test_frozen(self, onr):
        with pytest.raises(AttributeError):
            onr.num_sensors = 10


class TestSerialization:
    def test_round_trip(self, onr):
        restored = type(onr).from_dict(onr.to_dict())
        assert restored == onr

    def test_dict_is_json_serialisable(self, onr):
        import json

        payload = json.dumps(onr.to_dict())
        restored = type(onr).from_dict(json.loads(payload))
        assert restored == onr

    def test_missing_key_rejected(self, onr):
        data = onr.to_dict()
        del data["sensing_range"]
        with pytest.raises(ScenarioError):
            type(onr).from_dict(data)

    def test_invalid_value_rejected(self, onr):
        data = onr.to_dict()
        data["detect_prob"] = 2.0
        with pytest.raises(ScenarioError):
            type(onr).from_dict(data)
