"""Unit tests for the observability subsystem (repro.obs)."""

import hashlib
import json

import numpy as np
import pytest

from repro import obs
from repro.cache import analysis_cache, clear_analysis_cache
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.experiments.presets import small_scenario
from repro.obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    JsonlSink,
    read_jsonl,
    render_profile,
    scenario_fingerprint,
    write_manifest,
)
from repro.simulation.runner import MonteCarloSimulator, SimulationResult

#: The seed repo's golden fingerprint for small_scenario(), trials=500,
#: seed=123 — first pinned in PR 1 and re-pinned here: enabling or
#: disabling instrumentation must never move it.
GOLDEN_FINGERPRINT = (
    "8556e11ded8b057a444091c8e3f719a09474659083c4fb32dd8a92f5e4bf6678"
)


def fingerprint(result: SimulationResult) -> str:
    digest = hashlib.sha256()
    for array in (
        result.report_counts,
        result.node_counts,
        result.false_report_counts,
        result.detection_periods,
    ):
        if array is not None:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class TestSpans:
    def test_nesting_depth_and_parent(self):
        ob = Instrumentation()
        with ob.span("outer"):
            with ob.span("inner"):
                pass
            with ob.span("inner"):
                pass
        by_name = {}
        for span in ob.spans:
            by_name.setdefault(span["name"], []).append(span)
        (outer,) = by_name["outer"]
        assert outer["depth"] == 0 and outer["parent"] is None
        for inner in by_name["inner"]:
            assert inner["depth"] == 1
            assert inner["parent"] == "outer"

    def test_child_interval_inside_parent(self):
        ob = Instrumentation()
        with ob.span("outer"):
            with ob.span("inner"):
                pass
        outer = next(s for s in ob.spans if s["name"] == "outer")
        inner = next(s for s in ob.spans if s["name"] == "inner")
        assert outer["start"] <= inner["start"]
        assert (
            inner["start"] + inner["wall"]
            <= outer["start"] + outer["wall"] + 1e-9
        )

    def test_span_records_failure(self):
        ob = Instrumentation()
        with pytest.raises(RuntimeError):
            with ob.span("doomed"):
                raise RuntimeError("boom")
        (span,) = ob.spans
        assert span["ok"] is False

    def test_annotate_merges_attrs(self):
        ob = Instrumentation()
        with ob.span("stage", phase=1) as span:
            span.annotate(extra="yes")
        (record,) = ob.spans
        assert record["attrs"] == {"phase": 1, "extra": "yes"}

    def test_stage_totals_aggregate_top_level_only(self):
        ob = Instrumentation()
        for _ in range(3):
            with ob.span("work"):
                with ob.span("sub"):
                    pass
        stages = ob.stage_totals()
        assert set(stages) == {"work"}
        assert stages["work"]["count"] == 3
        total_wall = sum(
            s["wall"] for s in ob.spans if s["name"] == "work"
        )
        assert stages["work"]["wall"] == pytest.approx(total_wall)


class TestCountersGaugesEvents:
    def test_incr_accumulates_and_returns(self):
        ob = Instrumentation()
        assert ob.incr("c") == 1
        assert ob.incr("c", 4) == 5
        assert ob.counters["c"] == 5

    def test_incr_rejects_negative(self):
        ob = Instrumentation()
        with pytest.raises(ValueError):
            ob.incr("c", -1)

    def test_gauge_last_write_wins(self):
        ob = Instrumentation()
        ob.gauge("g", 1.0)
        ob.gauge("g", 2.5)
        assert ob.gauges["g"] == 2.5

    def test_events_ordered_with_timestamps(self):
        ob = Instrumentation()
        ob.event("first", a=1)
        ob.event("second", b=2)
        names = [e["name"] for e in ob.events]
        assert names == ["first", "second"]
        assert ob.events[0]["t"] <= ob.events[1]["t"]
        assert ob.events[0]["a"] == 1


class TestManifest:
    def test_manifest_totals_match_span_sums(self):
        ob = Instrumentation()
        with ob.span("a"):
            pass
        with ob.span("b"):
            pass
        manifest = ob.manifest()
        stage_wall = sum(s["wall"] for s in manifest["stages"].values())
        span_wall = sum(s["wall"] for s in ob.spans)
        assert stage_wall == pytest.approx(span_wall)
        # Stages are a partition of the instrumented run, so their sum
        # can never exceed the total wall clock.
        assert stage_wall <= manifest["wall_time"]

    def test_manifest_carries_run_info_and_counters(self):
        ob = Instrumentation()
        ob.set_run_info(seed=7, workers=2)
        ob.incr("x", 3)
        ob.gauge("y", 0.5)
        manifest = ob.manifest()
        assert manifest["schema"] == obs.OBS_SCHEMA_VERSION
        assert manifest["run"]["seed"] == 7
        assert manifest["run"]["workers"] == 2
        assert manifest["run"]["cpu_count"] >= 1
        assert manifest["counters"] == {"x": 3}
        assert manifest["gauges"] == {"y": 0.5}

    def test_manifest_snapshots_cache_stats(self):
        clear_analysis_cache()
        scenario = small_scenario()
        with obs.instrument() as ob:
            MarkovSpatialAnalysis(scenario, 3).detection_probability()
            MarkovSpatialAnalysis(scenario, 3).detection_probability()
            manifest = ob.manifest()
        assert manifest["cache"] == analysis_cache().stats()
        assert manifest["cache"]["hits"] > 0
        # The wired counters agree with the cache's own accounting.
        assert manifest["counters"]["cache.hits"] == manifest["cache"]["hits"]
        assert (
            manifest["counters"]["cache.misses"]
            == manifest["cache"]["misses"]
        )

    def test_manifest_is_json_serialisable(self):
        ob = Instrumentation()
        with ob.span("s"):
            ob.event("e", value=np.float64(1.5))
        json.dumps(ob.manifest())

    def test_write_manifest_round_trips(self, tmp_path):
        ob = Instrumentation()
        ob.incr("n", 2)
        path = tmp_path / "manifest.json"
        write_manifest(ob.manifest(), path)
        loaded = json.loads(path.read_text())
        assert loaded["counters"] == {"n": 2}

    def test_render_profile_lists_stages_and_counters(self):
        ob = Instrumentation()
        ob.set_run_info(seed=1)
        with ob.span("stage:one"):
            pass
        ob.incr("things", 4)
        text = render_profile(ob.manifest())
        assert "stage:one" in text
        assert "things = 4" in text
        assert "seed=1" in text


class TestJsonlSink:
    def test_events_and_spans_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.instrument(trace=str(path)) as ob:
            with ob.span("outer"):
                ob.event("hello", answer=42)
        records = read_jsonl(path)
        kinds = [record["type"] for record in records]
        assert kinds == ["event", "span", "manifest"]
        assert records[0]["name"] == "hello" and records[0]["answer"] == 42
        assert records[1]["name"] == "outer"
        assert records[-1]["manifest"]["event_count"] == 1

    def test_sink_coerces_numpy_payloads(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"a": np.int64(3), "b": np.arange(2)})
        (record,) = read_jsonl(path)
        assert record == {"a": 3, "b": [0, 1]}

    def test_close_is_idempotent_and_write_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.write({"a": 1})
        sink.close()
        sink.close()
        sink.write({"a": 2})  # silently dropped, never raises
        assert len(read_jsonl(tmp_path / "trace.jsonl")) == 1


class TestActivation:
    def test_null_by_default(self):
        assert obs.current() is NULL_INSTRUMENTATION
        assert not obs.current().enabled

    def test_activate_restores_previous(self):
        ob = Instrumentation()
        with obs.activate(ob):
            assert obs.current() is ob
            inner = Instrumentation()
            with obs.activate(inner):
                assert obs.current() is inner
            assert obs.current() is ob
        assert obs.current() is NULL_INSTRUMENTATION

    def test_null_instrumentation_is_inert(self):
        null = NULL_INSTRUMENTATION
        with null.span("anything") as span:
            span.annotate(ignored=True)
        assert null.incr("c", 5) == 0
        null.gauge("g", 1.0)
        null.event("e")
        null.set_run_info(seed=1)
        assert null.manifest() == {}
        # span handles are shared — the whole disabled path allocates
        # nothing per call.
        assert null.span("a") is null.span("b")


class TestScenarioFingerprint:
    def test_stable_and_parameter_sensitive(self):
        a = scenario_fingerprint(small_scenario())
        b = scenario_fingerprint(small_scenario())
        c = scenario_fingerprint(small_scenario(num_sensors=99))
        assert a == b
        assert a != c


class TestFingerprintPinned:
    """Instrumentation must never perturb the simulation stream."""

    def test_disabled_run_matches_seed_golden(self):
        result = MonteCarloSimulator(
            small_scenario(), trials=500, seed=123
        ).run()
        assert fingerprint(result) == GOLDEN_FINGERPRINT

    def test_enabled_run_matches_seed_golden(self):
        with obs.instrument() as ob:
            result = MonteCarloSimulator(
                small_scenario(), trials=500, seed=123
            ).run()
        assert fingerprint(result) == GOLDEN_FINGERPRINT
        assert ob.counters["sim.trials"] == 500

    def test_enabled_parallel_run_matches_disabled(self, small):
        baseline = MonteCarloSimulator(small, trials=120, seed=9).run(
            workers=2
        )
        with obs.instrument() as ob:
            traced = MonteCarloSimulator(small, trials=120, seed=9).run(
                workers=2
            )
        assert fingerprint(traced) == fingerprint(baseline)
        assert ob.counters["parallel.tasks"] == 2
        assert ob.counters["parallel.tasks_completed"] == 2


class TestSimulatorAccounting:
    def test_batch_events_cover_all_trials(self, small):
        with obs.instrument() as ob:
            MonteCarloSimulator(
                small, trials=300, seed=5, batch_size=128
            ).run()
        batches = [e for e in ob.events if e["name"] == "sim.batch"]
        assert sum(e["trials"] for e in batches) == 300
        assert ob.counters["sim.batches"] == len(batches) == 3
        assert ob.manifest()["run"]["scenario_fingerprint"] == (
            scenario_fingerprint(small)
        )
