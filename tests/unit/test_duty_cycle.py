"""Unit tests for repro.core.duty_cycle."""

import pytest

from repro.core.duty_cycle import (
    apply_duty_cycle,
    effective_false_alarm_prob,
    lifetime_multiplier,
)
from repro.errors import AnalysisError


class TestApplyDutyCycle:
    def test_scales_detect_prob(self, onr):
        effective = apply_duty_cycle(onr, 0.5)
        assert effective.detect_prob == pytest.approx(0.45)

    def test_full_duty_is_identity(self, onr):
        assert apply_duty_cycle(onr, 1.0) == onr

    def test_other_fields_untouched(self, onr):
        effective = apply_duty_cycle(onr, 0.25)
        assert effective.num_sensors == onr.num_sensors
        assert effective.window == onr.window
        assert effective.ms == onr.ms

    def test_detection_probability_decreases(self, onr):
        from repro.core.markov_spatial import MarkovSpatialAnalysis

        values = [
            MarkovSpatialAnalysis(apply_duty_cycle(onr, d)).detection_probability()
            for d in (1.0, 0.5, 0.25)
        ]
        assert values == sorted(values, reverse=True)

    def test_invalid_duty_rejected(self, onr):
        with pytest.raises(AnalysisError):
            apply_duty_cycle(onr, 0.0)
        with pytest.raises(AnalysisError):
            apply_duty_cycle(onr, 1.5)


class TestEffectiveFalseAlarmProb:
    def test_scales_linearly(self):
        assert effective_false_alarm_prob(1e-3, 0.5) == pytest.approx(5e-4)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            effective_false_alarm_prob(1e-3, 0.0)
        with pytest.raises(AnalysisError):
            effective_false_alarm_prob(1.0, 0.5)


class TestLifetimeMultiplier:
    def test_reciprocal(self):
        assert lifetime_multiplier(0.25) == pytest.approx(4.0)
        assert lifetime_multiplier(1.0) == pytest.approx(1.0)

    def test_invalid_duty_rejected(self):
        with pytest.raises(AnalysisError):
            lifetime_multiplier(0.0)


class TestSimulatorFoldEquivalence:
    def test_explicit_sleep_matches_folded_analysis(self, small):
        """The core identity: random sleep masks == scaled Pd."""
        from repro.simulation.runner import MonteCarloSimulator

        duty = 0.6
        explicit = MonteCarloSimulator(
            small, trials=6000, seed=9, duty_cycle=duty
        ).run()
        folded = MonteCarloSimulator(
            apply_duty_cycle(small, duty), trials=6000, seed=9
        ).run()
        assert explicit.detection_probability == pytest.approx(
            folded.detection_probability, abs=0.025
        )

    def test_sleeping_sensors_do_not_false_alarm(self, small):
        from repro.simulation.runner import MonteCarloSimulator

        awake = MonteCarloSimulator(
            small, trials=2000, seed=10, false_alarm_prob=0.02
        ).run()
        sleepy = MonteCarloSimulator(
            small, trials=2000, seed=10, false_alarm_prob=0.02, duty_cycle=0.3
        ).run()
        assert sleepy.false_report_counts.sum() < 0.5 * awake.false_report_counts.sum()

    def test_invalid_duty_rejected(self, small):
        from repro.errors import SimulationError
        from repro.simulation.runner import MonteCarloSimulator

        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, duty_cycle=0.0)
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, duty_cycle=1.2)
