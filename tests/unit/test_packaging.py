"""Packaging guard: the ``repro`` package ships Python sources only.

PR 6 removed stray benchmark result JSONs from the package tree;
benchmark records belong in ``benchmarks/results/`` (committed next to
their manifests), never inside ``src/repro`` where they would ride into
every wheel.  This test fails the build if any non-Python data file
reappears anywhere under the package.
"""

import pathlib

import repro


def test_package_ships_only_python_sources():
    root = pathlib.Path(repro.__file__).resolve().parent
    offenders = sorted(
        str(path.relative_to(root))
        for path in root.rglob("*")
        if path.is_file()
        and "__pycache__" not in path.parts
        and path.suffix != ".py"
    )
    assert offenders == [], (
        "non-Python files inside the repro package (move benchmark "
        f"records to benchmarks/results/): {offenders}"
    )
