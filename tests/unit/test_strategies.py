"""Unit tests for repro.deployment.strategies."""

import numpy as np
import pytest

from repro.deployment.field import SensorField
from repro.deployment.strategies import deploy_grid, deploy_poisson, deploy_uniform
from repro.errors import DeploymentError


@pytest.fixture
def field() -> SensorField:
    return SensorField(100.0, 50.0)


class TestDeployUniform:
    def test_shape_and_bounds(self, field):
        points = deploy_uniform(field, 200, rng=1)
        assert points.shape == (200, 2)
        assert points[:, 0].min() >= 0.0 and points[:, 0].max() <= field.width
        assert points[:, 1].min() >= 0.0 and points[:, 1].max() <= field.height

    def test_seed_reproducibility(self, field):
        a = deploy_uniform(field, 50, rng=7)
        b = deploy_uniform(field, 50, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, field):
        a = deploy_uniform(field, 50, rng=1)
        b = deploy_uniform(field, 50, rng=2)
        assert not np.array_equal(a, b)

    def test_accepts_generator(self, field, rng):
        points = deploy_uniform(field, 10, rng=rng)
        assert points.shape == (10, 2)

    def test_zero_sensors(self, field):
        assert deploy_uniform(field, 0).shape == (0, 2)

    def test_negative_count_rejected(self, field):
        with pytest.raises(DeploymentError):
            deploy_uniform(field, -1)

    def test_roughly_uniform_marginals(self, field):
        points = deploy_uniform(field, 20_000, rng=3)
        # Mean of U(0, W) is W/2; allow 3 sigma.
        assert points[:, 0].mean() == pytest.approx(50.0, abs=1.5)
        assert points[:, 1].mean() == pytest.approx(25.0, abs=0.8)


class TestDeployPoisson:
    def test_count_close_to_expectation(self, field):
        density = 0.1  # expect 500 points
        points = deploy_poisson(field, density, rng=5)
        assert 350 < points.shape[0] < 650

    def test_zero_density(self, field):
        assert deploy_poisson(field, 0.0, rng=1).shape == (0, 2)

    def test_negative_density_rejected(self, field):
        with pytest.raises(DeploymentError):
            deploy_poisson(field, -0.1)

    def test_bounds(self, field):
        points = deploy_poisson(field, 0.05, rng=9)
        assert np.all(points[:, 0] <= field.width)
        assert np.all(points[:, 1] <= field.height)


class TestDeployGrid:
    def test_exact_count(self, field):
        assert deploy_grid(field, 37).shape == (37, 2)

    def test_zero_sensors(self, field):
        assert deploy_grid(field, 0).shape == (0, 2)

    def test_no_jitter_is_deterministic(self, field):
        np.testing.assert_array_equal(deploy_grid(field, 24), deploy_grid(field, 24))

    def test_points_inside_field(self, field):
        points = deploy_grid(field, 100, jitter=30.0, rng=2)
        assert np.all((points[:, 0] >= 0) & (points[:, 0] <= field.width))
        assert np.all((points[:, 1] >= 0) & (points[:, 1] <= field.height))

    def test_jitter_moves_points(self, field):
        plain = deploy_grid(field, 16)
        jittered = deploy_grid(field, 16, jitter=5.0, rng=3)
        assert not np.array_equal(plain, jittered)

    def test_grid_spreads_over_field(self, field):
        points = deploy_grid(field, 50)
        # Sanity: points span most of both axes.
        assert points[:, 0].max() - points[:, 0].min() > 0.7 * field.width
        assert points[:, 1].max() - points[:, 1].min() > 0.5 * field.height

    def test_invalid_inputs_rejected(self, field):
        with pytest.raises(DeploymentError):
            deploy_grid(field, -1)
        with pytest.raises(DeploymentError):
            deploy_grid(field, 10, jitter=-1.0)
