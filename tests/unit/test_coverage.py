"""Unit tests for repro.geometry.coverage."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.coverage import (
    covered_fraction,
    estimate_area_monte_carlo,
    estimate_coverage_count_areas,
    expected_covered_fraction,
    void_probability,
)


class TestExpectedCoveredFraction:
    def test_no_sensors_means_no_coverage(self):
        assert expected_covered_fraction(0, 100.0, 1e6) == 0.0

    def test_zero_range_means_no_coverage(self):
        assert expected_covered_fraction(50, 0.0, 1e6) == 0.0

    def test_monotone_in_sensor_count(self):
        values = [expected_covered_fraction(n, 100.0, 1e6) for n in (1, 5, 20, 100)]
        assert values == sorted(values)

    def test_onr_scenario_is_sparse(self):
        # 240 sensors with 1 km range in a 32x32 km field: well under full coverage.
        fraction = expected_covered_fraction(240, 1000.0, 32000.0**2)
        assert 0.3 < fraction < 0.7

    def test_complement_is_void_probability(self):
        covered = expected_covered_fraction(30, 50.0, 1e5)
        assert void_probability(30, 50.0, 1e5) == pytest.approx(1.0 - covered)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(GeometryError):
            expected_covered_fraction(10, 1.0, 0.0)
        with pytest.raises(GeometryError):
            expected_covered_fraction(10, -1.0, 1.0)
        with pytest.raises(GeometryError):
            expected_covered_fraction(-1, 1.0, 1.0)


class TestCoveredFraction:
    def test_single_central_sensor(self, rng):
        fraction = covered_fraction(
            np.array([[50.0, 50.0]]), 10.0, 100.0, 100.0, samples=40_000, rng=rng
        )
        assert fraction == pytest.approx(math.pi * 100.0 / 10_000.0, abs=0.01)

    def test_empty_deployment(self, rng):
        assert covered_fraction(np.empty((0, 2)), 10.0, 100.0, 100.0, rng=rng) == 0.0

    def test_full_coverage(self, rng):
        fraction = covered_fraction(
            np.array([[50.0, 50.0]]), 200.0, 100.0, 100.0, samples=1000, rng=rng
        )
        assert fraction == 1.0

    def test_bad_shape_rejected(self, rng):
        with pytest.raises(GeometryError):
            covered_fraction(np.zeros((3, 3)), 1.0, 10.0, 10.0, rng=rng)

    def test_bad_field_rejected(self, rng):
        with pytest.raises(GeometryError):
            covered_fraction(np.zeros((1, 2)), 1.0, -10.0, 10.0, rng=rng)


class TestEstimateAreaMonteCarlo:
    def test_unit_disc(self, rng):
        area = estimate_area_monte_carlo(
            lambda xs, ys: xs * xs + ys * ys <= 1.0,
            (-1.0, -1.0, 1.0, 1.0),
            samples=200_000,
            rng=rng,
        )
        assert area == pytest.approx(math.pi, rel=0.02)

    def test_degenerate_box_rejected(self, rng):
        with pytest.raises(GeometryError):
            estimate_area_monte_carlo(lambda xs, ys: xs > 0, (0, 0, 0, 1), rng=rng)

    def test_zero_samples_rejected(self, rng):
        with pytest.raises(GeometryError):
            estimate_area_monte_carlo(
                lambda xs, ys: xs > 0, (0, 0, 1, 1), samples=0, rng=rng
            )


class TestCoverageCountAreas:
    def test_single_period_recovers_stadium_area(self, rng):
        areas = estimate_coverage_count_areas(
            10.0, 30.0, periods=1, samples=300_000, rng=rng
        )
        expected = 2 * 10.0 * 30.0 + math.pi * 100.0
        assert areas[1] == pytest.approx(expected, rel=0.02)

    def test_total_matches_aregion(self, rng):
        rs, step, periods = 10.0, 6.0, 12
        areas = estimate_coverage_count_areas(
            rs, step, periods, samples=300_000, rng=rng
        )
        total = sum(areas.values())
        expected = 2 * periods * rs * step + math.pi * rs * rs
        assert total == pytest.approx(expected, rel=0.02)

    def test_max_coverage_bounded_by_ms_plus_one(self, rng):
        rs, step = 10.0, 6.0
        ms = math.ceil(2 * rs / step)
        areas = estimate_coverage_count_areas(rs, step, 12, samples=100_000, rng=rng)
        assert max(areas) <= ms + 1

    def test_invalid_inputs_rejected(self, rng):
        with pytest.raises(GeometryError):
            estimate_coverage_count_areas(0.0, 1.0, 5, rng=rng)
        with pytest.raises(GeometryError):
            estimate_coverage_count_areas(1.0, -1.0, 5, rng=rng)
        with pytest.raises(GeometryError):
            estimate_coverage_count_areas(1.0, 1.0, 0, rng=rng)
