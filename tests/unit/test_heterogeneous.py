"""Unit tests for repro.core.heterogeneous."""

import numpy as np
import pytest

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.heterogeneous import HeterogeneousExactAnalysis, SensorClass
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


class TestSensorClass:
    def test_valid(self):
        cls = SensorClass(10, 500.0)
        assert cls.count == 10

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            SensorClass(-1, 500.0)
        with pytest.raises(AnalysisError):
            SensorClass(5, 0.0)


class TestHeterogeneousExactAnalysis:
    def test_homogeneous_matches_exact_oracle(self, onr):
        mixture = HeterogeneousExactAnalysis(
            onr, [SensorClass(onr.num_sensors, onr.sensing_range)]
        )
        reference = ExactSpatialAnalysis(onr)
        np.testing.assert_allclose(
            mixture.report_count_pmf(),
            reference.report_count_pmf(),
            atol=1e-12,
        )

    def test_splitting_one_class_changes_nothing(self, onr):
        single = HeterogeneousExactAnalysis(
            onr, [SensorClass(240, 1000.0)]
        ).detection_probability()
        split = HeterogeneousExactAnalysis(
            onr, [SensorClass(100, 1000.0), SensorClass(140, 1000.0)]
        ).detection_probability()
        assert split == pytest.approx(single, abs=1e-12)

    def test_pmf_is_distribution(self, onr):
        mixture = HeterogeneousExactAnalysis(
            onr, [SensorClass(120, 1300.0), SensorClass(120, 700.0)]
        )
        pmf = mixture.report_count_pmf()
        assert (pmf >= -1e-12).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-8)

    def test_longer_ranges_detect_more(self, onr):
        short = HeterogeneousExactAnalysis(
            onr, [SensorClass(240, 800.0)]
        ).detection_probability()
        long = HeterogeneousExactAnalysis(
            onr, [SensorClass(240, 1200.0)]
        ).detection_probability()
        assert long > short

    def test_range_diversity_helps_at_fixed_mean(self, onr):
        uniform = HeterogeneousExactAnalysis(
            onr, [SensorClass(240, 1000.0)]
        ).detection_probability()
        diverse = HeterogeneousExactAnalysis(
            onr, [SensorClass(120, 1400.0), SensorClass(120, 600.0)]
        ).detection_probability()
        assert diverse > uniform

    def test_zero_count_class_ignored(self, onr):
        with_empty = HeterogeneousExactAnalysis(
            onr, [SensorClass(240, 1000.0), SensorClass(0, 200.0)]
        ).detection_probability()
        without = HeterogeneousExactAnalysis(
            onr, [SensorClass(240, 1000.0)]
        ).detection_probability()
        assert with_empty == pytest.approx(without, abs=1e-12)

    def test_sensing_ranges_array(self, onr):
        mixture = HeterogeneousExactAnalysis(
            onr, [SensorClass(100, 1300.0), SensorClass(140, 700.0)]
        )
        ranges = mixture.sensing_ranges()
        assert ranges.shape == (240,)
        assert (ranges[:100] == 1300.0).all()
        assert (ranges[100:] == 700.0).all()

    def test_expected_reports_additive(self, onr):
        mixture = HeterogeneousExactAnalysis(
            onr, [SensorClass(120, 1300.0), SensorClass(120, 700.0)]
        )
        separate = sum(
            ExactSpatialAnalysis(
                onr.replace(num_sensors=120, sensing_range=rs)
            ).expected_report_count()
            for rs in (1300.0, 700.0)
        )
        assert mixture.expected_report_count() == pytest.approx(separate, rel=1e-9)

    def test_count_mismatch_rejected(self, onr):
        with pytest.raises(AnalysisError):
            HeterogeneousExactAnalysis(onr, [SensorClass(100, 1000.0)])

    def test_empty_classes_rejected(self, onr):
        with pytest.raises(AnalysisError):
            HeterogeneousExactAnalysis(onr, [])

    def test_negative_threshold_rejected(self, onr):
        mixture = HeterogeneousExactAnalysis(onr, [SensorClass(240, 1000.0)])
        with pytest.raises(AnalysisError):
            mixture.detection_probability(threshold=-1)


class TestHeterogeneousSimulation:
    def test_mixed_fleet_analysis_matches_simulation(self, small):
        from repro.simulation.runner import MonteCarloSimulator

        classes = [
            SensorClass(small.num_sensors // 2, small.sensing_range * 1.4),
            SensorClass(
                small.num_sensors - small.num_sensors // 2,
                small.sensing_range * 0.6,
            ),
        ]
        mixture = HeterogeneousExactAnalysis(small, classes)
        result = MonteCarloSimulator(
            small,
            trials=8000,
            seed=13,
            sensing_ranges=mixture.sensing_ranges(),
        ).run()
        assert mixture.detection_probability() == pytest.approx(
            result.detection_probability, abs=0.02
        )

    def test_invalid_sensing_ranges_rejected(self, small):
        from repro.errors import SimulationError
        from repro.simulation.runner import MonteCarloSimulator

        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, sensing_ranges=np.ones(3))
        with pytest.raises(SimulationError):
            MonteCarloSimulator(
                small, sensing_ranges=np.zeros(small.num_sensors)
            )
