"""Unit tests for repro.simulation.sensing."""

import numpy as np
import pytest

from repro.deployment.field import SensorField
from repro.errors import SimulationError
from repro.simulation.sensing import sample_detections, segment_coverage


def single_trial(sensors, waypoints):
    """Wrap single-trial inputs into batch-of-one arrays."""
    return np.asarray(sensors, float)[None, ...], np.asarray(waypoints, float)[None, ...]


class TestSegmentCoverage:
    def test_sensor_on_path_covered(self):
        sensors, waypoints = single_trial(
            [[5.0, 0.0]], [[0.0, 0.0], [10.0, 0.0]]
        )
        coverage = segment_coverage(sensors, waypoints, sensing_range=1.0)
        assert coverage.shape == (1, 1, 1)
        assert coverage[0, 0, 0]

    def test_sensor_beside_path(self):
        sensors, waypoints = single_trial([[5.0, 2.0]], [[0.0, 0.0], [10.0, 0.0]])
        assert segment_coverage(sensors, waypoints, 2.0)[0, 0, 0]
        assert not segment_coverage(sensors, waypoints, 1.9)[0, 0, 0]

    def test_sensor_past_endpoint_uses_cap_distance(self):
        sensors, waypoints = single_trial([[13.0, 4.0]], [[0.0, 0.0], [10.0, 0.0]])
        # Distance to the endpoint (10, 0) is 5.
        assert segment_coverage(sensors, waypoints, 5.0)[0, 0, 0]
        assert not segment_coverage(sensors, waypoints, 4.9)[0, 0, 0]

    def test_multi_period_contiguous_coverage(self):
        # Target passes left to right; a sensor near the middle covers a
        # contiguous run of periods.
        waypoints = [[float(x), 0.0] for x in range(0, 60, 10)]
        sensors, waypoints = single_trial([[25.0, 0.0]], waypoints)
        coverage = segment_coverage(sensors, waypoints, 12.0)[0, 0]
        covered = np.flatnonzero(coverage)
        assert covered.size > 0
        assert np.all(np.diff(covered) == 1)

    def test_static_segment(self):
        sensors, waypoints = single_trial([[1.0, 1.0]], [[0.0, 0.0], [0.0, 0.0]])
        assert segment_coverage(sensors, waypoints, 2.0)[0, 0, 0]
        assert not segment_coverage(sensors, waypoints, 1.0)[0, 0, 0]

    def test_torus_wrap_detects_across_boundary(self):
        field = SensorField(100.0, 100.0)
        sensors, waypoints = single_trial(
            [[99.0, 50.0]], [[1.0, 50.0], [6.0, 50.0]]
        )
        plain = segment_coverage(sensors, waypoints, 5.0)
        wrapped = segment_coverage(sensors, waypoints, 5.0, field=field, wrap=True)
        assert not plain[0, 0, 0]
        assert wrapped[0, 0, 0]

    def test_wrap_requires_field(self):
        sensors, waypoints = single_trial([[0.0, 0.0]], [[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(SimulationError):
            segment_coverage(sensors, waypoints, 1.0, wrap=True)

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            segment_coverage(np.zeros((1, 2)), np.zeros((1, 2, 2)), 1.0)
        with pytest.raises(SimulationError):
            segment_coverage(np.zeros((1, 2, 2)), np.zeros((1, 2)), 1.0)
        with pytest.raises(SimulationError):
            segment_coverage(np.zeros((2, 1, 2)), np.zeros((1, 2, 2)), 1.0)
        with pytest.raises(SimulationError):
            segment_coverage(np.zeros((1, 1, 2)), np.zeros((1, 1, 2)), 1.0)

    def test_negative_range_rejected(self):
        sensors, waypoints = single_trial([[0.0, 0.0]], [[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(SimulationError):
            segment_coverage(sensors, waypoints, -1.0)


class TestSampleDetections:
    def test_certain_detection_copies_coverage(self, rng):
        coverage = np.array([[[True, False, True]]])
        detected = sample_detections(coverage, 1.0, rng)
        np.testing.assert_array_equal(detected, coverage)
        detected[0, 0, 0] = False
        assert coverage[0, 0, 0]  # copy, not view

    def test_never_detects_outside_coverage(self, rng):
        coverage = rng.random((50, 20, 10)) < 0.5
        detected = sample_detections(coverage, 0.9, rng)
        assert not np.any(detected & ~coverage)

    def test_detection_rate_close_to_pd(self, rng):
        coverage = np.ones((200, 50, 10), dtype=bool)
        detected = sample_detections(coverage, 0.7, rng)
        assert detected.mean() == pytest.approx(0.7, abs=0.01)

    def test_zero_pd_detects_nothing(self, rng):
        coverage = np.ones((5, 5, 5), dtype=bool)
        assert not sample_detections(coverage, 0.0, rng).any()

    def test_invalid_pd_rejected(self, rng):
        with pytest.raises(SimulationError):
            sample_detections(np.ones((1, 1, 1), bool), 1.5, rng)
