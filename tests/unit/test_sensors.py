"""Unit tests for repro.deployment.sensors."""

import numpy as np
import pytest

from repro.deployment.sensors import Sensor, sensors_from_array
from repro.errors import DeploymentError
from repro.geometry.shapes import Point


def make_sensor(node_id=0, x=0.0, y=0.0, sensing=10.0, comm=30.0) -> Sensor:
    return Sensor(node_id, Point(x, y), sensing, comm)


class TestSensor:
    def test_can_sense_within_range(self):
        sensor = make_sensor()
        assert sensor.can_sense(Point(10.0, 0.0))
        assert not sensor.can_sense(Point(10.1, 0.0))

    def test_can_communicate_symmetric_ranges(self):
        a = make_sensor(0, 0, 0, comm=30.0)
        b = make_sensor(1, 25.0, 0, comm=30.0)
        assert a.can_communicate_with(b)
        assert b.can_communicate_with(a)

    def test_communication_limited_by_weaker_radio(self):
        strong = make_sensor(0, 0, 0, comm=100.0)
        weak = make_sensor(1, 50.0, 0, comm=10.0)
        assert not strong.can_communicate_with(weak)
        assert not weak.can_communicate_with(strong)

    def test_invalid_fields_rejected(self):
        with pytest.raises(DeploymentError):
            make_sensor(node_id=-1)
        with pytest.raises(DeploymentError):
            make_sensor(sensing=-1.0)
        with pytest.raises(DeploymentError):
            make_sensor(comm=-1.0)


class TestSensorsFromArray:
    def test_ids_follow_row_order(self):
        sensors = sensors_from_array(np.array([[0.0, 1.0], [2.0, 3.0]]), 5.0, 10.0)
        assert [s.node_id for s in sensors] == [0, 1]
        assert sensors[1].position == Point(2.0, 3.0)

    def test_ranges_propagate(self):
        sensors = sensors_from_array(np.array([[0.0, 0.0]]), 7.0, 21.0)
        assert sensors[0].sensing_range == 7.0
        assert sensors[0].communication_range == 21.0

    def test_empty_array(self):
        assert sensors_from_array(np.empty((0, 2)), 1.0, 2.0) == []

    def test_bad_shape_rejected(self):
        with pytest.raises(DeploymentError):
            sensors_from_array(np.zeros((2, 3)), 1.0, 2.0)
