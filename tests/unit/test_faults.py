"""Unit tests for repro.faults: fault models, masks, degraded analysis."""

import hashlib

import numpy as np
import pytest

from repro.detection.group import GroupDetector, deliver_reports
from repro.detection.reports import DetectionReport
from repro.errors import FaultError, ReproError, SimulationError
from repro.experiments.presets import small_scenario
from repro.faults import (
    FaultModel,
    degraded_detection_probability,
    degraded_scenario,
    expected_spurious_reports,
)
from repro.simulation.runner import MonteCarloSimulator, SimulationResult

#: The seed repo's golden fingerprint for small_scenario(), trials=500,
#: seed=123 (pinned by tests/unit/test_parallel.py) — the zero-rate fault
#: model must reproduce it bitwise.
GOLDEN_FINGERPRINT = (
    "8556e11ded8b057a444091c8e3f719a09474659083c4fb32dd8a92f5e4bf6678"
)


def fingerprint(result: SimulationResult) -> str:
    digest = hashlib.sha256()
    for array in (
        result.report_counts,
        result.node_counts,
        result.false_report_counts,
        result.detection_periods,
    ):
        if array is not None:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class TestFaultModelValidation:
    def test_defaults_are_null(self):
        model = FaultModel()
        assert model.is_null
        assert not model.has_node_faults
        assert not model.has_delivery_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"death_rate": -0.1},
            {"death_rate": 1.5},
            {"dropout_rate": 2.0},
            {"stuck_silent_frac": -1e-9},
            {"stuck_report_frac": 1.01},
            {"delivery_loss_prob": -0.5},
            {"delay_prob": 1.0001},
        ],
    )
    def test_out_of_range_rates_rejected(self, kwargs):
        with pytest.raises(FaultError):
            FaultModel(**kwargs)

    def test_stuck_fractions_must_fit_in_population(self):
        with pytest.raises(FaultError):
            FaultModel(stuck_silent_frac=0.7, stuck_report_frac=0.4)

    def test_delay_periods_validated(self):
        with pytest.raises(FaultError):
            FaultModel(delay_periods=0)
        with pytest.raises(FaultError):
            FaultModel(delay_periods=1.5)

    def test_fault_error_is_repro_and_value_error(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(FaultError, ValueError)

    def test_component_flags(self):
        assert FaultModel(dropout_rate=0.1).has_node_faults
        assert FaultModel(delivery_loss_prob=0.1).has_delivery_faults
        assert not FaultModel(delivery_loss_prob=0.1).has_node_faults


class TestNodeMasks:
    def test_total_death_kills_everything(self):
        masks = FaultModel(death_rate=1.0).sample_node_masks(
            3, 5, 4, np.random.default_rng(0)
        )
        assert not masks.alive.any()
        assert not masks.available.any()

    def test_zero_hazard_never_dies(self):
        masks = FaultModel(dropout_rate=0.5).sample_node_masks(
            3, 5, 4, np.random.default_rng(0)
        )
        assert masks.alive is None  # no death component drawn

    def test_alive_is_a_prefix_property(self):
        # Once dead, a sensor stays dead: alive masks are non-increasing
        # along the period axis.
        masks = FaultModel(death_rate=0.3).sample_node_masks(
            16, 8, 10, np.random.default_rng(7)
        )
        alive = masks.alive.astype(int)
        assert (np.diff(alive, axis=2) <= 0).all()

    def test_stuck_roles_are_disjoint(self):
        model = FaultModel(stuck_silent_frac=0.5, stuck_report_frac=0.5)
        masks = model.sample_node_masks(4, 100, 3, np.random.default_rng(1))
        # Every sensor is stuck one way or the other; none genuine.
        assert not masks.available.any()
        assert masks.byzantine is not None

    def test_all_byzantine(self):
        model = FaultModel(stuck_report_frac=1.0)
        masks = model.sample_node_masks(2, 10, 3, np.random.default_rng(2))
        assert masks.byzantine.all()
        assert not masks.available.any()

    def test_full_dropout_blocks_availability(self):
        masks = FaultModel(dropout_rate=1.0).sample_node_masks(
            2, 6, 5, np.random.default_rng(3)
        )
        assert not masks.available.any()


class TestDelivery:
    def test_total_loss_drops_everything(self):
        model = FaultModel(delivery_loss_prob=1.0)
        reports = np.ones((2, 3, 4), dtype=bool)
        on_time, late, *_ = model.apply_delivery(
            reports, None, np.random.default_rng(0)
        )
        assert not on_time.any()
        assert late is None or not late.any()

    def test_total_delay_shifts_by_delay_periods(self):
        model = FaultModel(delay_prob=1.0, delay_periods=2)
        reports = np.zeros((1, 1, 5), dtype=bool)
        reports[0, 0, 0] = True
        on_time, late, *_ = model.apply_delivery(
            reports, None, np.random.default_rng(0)
        )
        assert not on_time.any()
        assert late[0, 0, 2]
        assert late.sum() == 1

    def test_delay_past_window_is_lost(self):
        model = FaultModel(delay_prob=1.0, delay_periods=10)
        reports = np.ones((1, 2, 4), dtype=bool)
        on_time, late, *_ = model.apply_delivery(
            reports, None, np.random.default_rng(0)
        )
        assert not on_time.any()
        assert late is None or not late.any()


class TestDegradedAnalysis:
    def test_null_model_is_identity(self, small):
        assert degraded_scenario(small, FaultModel()) == small

    def test_dropout_folds_into_detect_prob(self, small):
        folded = degraded_scenario(small, FaultModel(dropout_rate=0.25))
        assert folded.detect_prob == pytest.approx(small.detect_prob * 0.75)
        assert folded.num_sensors == small.num_sensors

    def test_stuck_silent_folds_into_node_count(self, small):
        folded = degraded_scenario(small, FaultModel(stuck_silent_frac=0.5))
        assert folded.num_sensors == round(small.num_sensors * 0.5)

    def test_fully_suppressed_raises(self, small):
        with pytest.raises(FaultError):
            degraded_scenario(small, FaultModel(stuck_silent_frac=1.0))

    def test_degraded_probability_bounded_by_fault_free(self, small):
        base = degraded_detection_probability(small, FaultModel())
        hit = degraded_detection_probability(
            small, FaultModel(dropout_rate=0.4, delivery_loss_prob=0.2)
        )
        assert 0.0 < hit < base <= 1.0

    def test_fully_suppressed_probability_is_zero(self, small):
        assert (
            degraded_detection_probability(small, FaultModel(death_rate=1.0))
            == 0.0
        )

    def test_expected_spurious_reports(self, small):
        model = FaultModel(stuck_report_frac=0.5)
        expected = expected_spurious_reports(small, model)
        assert expected == pytest.approx(
            small.num_sensors * 0.5 * small.window
        )
        assert expected_spurious_reports(small, FaultModel()) == 0.0


class TestSimulatorIntegration:
    def test_zero_rate_model_is_bitwise_identical(self):
        result = MonteCarloSimulator(
            small_scenario(), trials=500, seed=123, faults=FaultModel()
        ).run()
        assert fingerprint(result) == GOLDEN_FINGERPRINT
        assert int(result.detections) == 154

    def test_faults_must_be_a_fault_model(self, small):
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, trials=10, faults={"death_rate": 0.5})

    def test_total_death_produces_no_reports(self, small):
        result = MonteCarloSimulator(
            small, trials=50, seed=9, faults=FaultModel(death_rate=1.0)
        ).run()
        assert result.report_counts.sum() == 0
        assert result.detections == 0

    def test_all_byzantine_floods_reports(self, small):
        result = MonteCarloSimulator(
            small, trials=50, seed=9, faults=FaultModel(stuck_report_frac=1.0)
        ).run()
        # Every sensor reports every period; all reports are spurious.
        expected = small.num_sensors * small.window
        assert (result.report_counts == expected).all()
        assert (result.false_report_counts == expected).all()
        assert result.detection_probability == 1.0

    def test_dropout_matches_folded_analysis(self, small):
        model = FaultModel(dropout_rate=0.3)
        result = MonteCarloSimulator(
            small, trials=3_000, seed=11, faults=model
        ).run()
        predicted = degraded_detection_probability(small, model)
        assert result.detection_probability == pytest.approx(
            predicted, abs=0.04
        )

    def test_delivery_loss_fingerprint_differs_from_fault_free(self, small):
        clean = MonteCarloSimulator(small, trials=200, seed=5).run()
        lossy = MonteCarloSimulator(
            small,
            trials=200,
            seed=5,
            faults=FaultModel(delivery_loss_prob=0.5),
        ).run()
        assert (lossy.report_counts <= clean.report_counts).all()
        assert lossy.report_counts.sum() < clean.report_counts.sum()

    def test_faults_compose_with_parallel_workers(self, small):
        model = FaultModel(dropout_rate=0.2, delivery_loss_prob=0.1)
        serial = MonteCarloSimulator(
            small, trials=100, seed=21, faults=model
        ).run(workers=1)
        sharded = MonteCarloSimulator(
            small, trials=100, seed=21, faults=model
        ).run(workers=2)
        assert serial.trials == sharded.trials == 100
        # Different trial streams but the same model: rates must be close.
        assert abs(
            serial.detection_probability - sharded.detection_probability
        ) < 0.25


def _report(node_id: int, period: int) -> DetectionReport:
    return DetectionReport(
        node_id=node_id, period=period, position=(0.0, 0.0)
    )


class TestDeliverReports:
    def test_requires_fault_model(self):
        with pytest.raises(FaultError):
            list(deliver_reports([], {"loss": 1.0}, np.random.default_rng(0)))

    def test_null_model_passes_through(self):
        stream = [(1, [_report(0, 1)]), (2, []), (3, [_report(1, 3)])]
        delivered = list(
            deliver_reports(stream, FaultModel(), np.random.default_rng(0))
        )
        assert delivered == [(1, [_report(0, 1)]), (2, []), (3, [_report(1, 3)])]

    def test_total_loss_drops_all(self):
        stream = [(1, [_report(0, 1), _report(1, 1)]), (2, [_report(2, 2)])]
        delivered = list(
            deliver_reports(
                stream,
                FaultModel(delivery_loss_prob=1.0),
                np.random.default_rng(0),
            )
        )
        assert delivered == [(1, []), (2, [])]

    def test_delay_restamps_and_arrives_later(self):
        stream = [(1, [_report(0, 1)]), (2, []), (3, [])]
        delivered = list(
            deliver_reports(
                stream,
                FaultModel(delay_prob=1.0, delay_periods=2),
                np.random.default_rng(0),
            )
        )
        assert delivered[0] == (1, [])
        assert delivered[1] == (2, [])
        assert delivered[2] == (3, [_report(0, 3)])

    def test_in_flight_past_stream_end_is_lost(self):
        stream = [(1, [_report(0, 1)])]
        delivered = list(
            deliver_reports(
                stream,
                FaultModel(delay_prob=1.0, delay_periods=5),
                np.random.default_rng(0),
            )
        )
        assert delivered == [(1, [])]

    def test_feeds_group_detector(self):
        detector = GroupDetector(window=3, threshold=2)
        stream = [
            (1, [_report(0, 1)]),
            (2, [_report(1, 2)]),
            (3, []),
        ]
        fired = detector.process_stream(
            deliver_reports(stream, FaultModel(), np.random.default_rng(0))
        )
        assert fired
