"""Unit tests for repro.experiments.records."""

from repro.experiments.records import ExperimentRecord


class TestExperimentRecord:
    def test_add_row_extends_columns(self):
        record = ExperimentRecord("X1", "test")
        record.add_row(a=1, b=2)
        record.add_row(a=3, c=4)
        assert record.columns == ["a", "b", "c"]
        assert record.rows[1] == {"a": 3, "c": 4}

    def test_column_extraction_with_missing(self):
        record = ExperimentRecord("X1", "test")
        record.add_row(a=1, b=2)
        record.add_row(a=3)
        assert record.column("a") == [1, 3]
        assert record.column("b") == [2, None]

    def test_json_round_trip(self):
        record = ExperimentRecord("FIG9A", "demo", parameters={"trials": 10})
        record.add_row(num_sensors=60, analysis=0.42, simulation=0.41)
        restored = ExperimentRecord.from_json(record.to_json())
        assert restored.experiment_id == "FIG9A"
        assert restored.title == "demo"
        assert restored.parameters == {"trials": 10}
        assert restored.columns == record.columns
        assert restored.rows == record.rows

    def test_from_json_defaults(self):
        restored = ExperimentRecord.from_json(
            '{"experiment_id": "A", "title": "t"}'
        )
        assert restored.rows == []
        assert restored.columns == []
