"""Unit tests for repro.core.kernels — the backend registry and FFT path.

Covers the backend seam's contracts:

* registry validation, process-wide default get/set, and graceful
  ``numba`` degradation (``REPRO_DISABLE_NUMBA``);
* FFT-vs-reference conformance on adversarial stacks (tiny supports,
  near-zero mass rows, mixed-magnitude pmfs);
* the a-priori round-off guard and its ``kernel.fallbacks`` /
  ``kernel.fft_dispatch`` counters;
* the PR 5 golden grids reproduced **bitwise** under
  ``backend='reference'``.
"""

import numpy as np
import pytest

from repro import obs
from repro.cache import clear_analysis_cache
from repro.core import kernels
from repro.core.batched import BatchedMarkovSpatialAnalysis
from repro.core.kernels import (
    FFT_GUARD_ATOL,
    FFT_MIN_WIDTH,
    KERNEL_BACKENDS,
    available_backends,
    batch_convolve,
    batch_convolve_power,
    fft_roundoff_bound,
    get_default_backend,
    normalize_backend,
    numba_available,
    resolve_backend,
    set_default_backend,
)
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario, small_scenario


@pytest.fixture(autouse=True)
def _reset_backend_state(monkeypatch):
    """Restore the process default backend and warning latch per test."""
    previous = get_default_backend()
    monkeypatch.setattr(kernels, "_numba_warned", kernels._numba_warned)
    yield
    set_default_backend(previous)


def _pmf_stack(rng, rows, width):
    raw = rng.random((rows, width))
    return raw / raw.sum(axis=1, keepdims=True)


class TestRegistry:
    def test_registry_names(self):
        assert KERNEL_BACKENDS == ("auto", "reference", "fft", "numba")

    def test_normalize_accepts_known_and_none(self):
        for name in KERNEL_BACKENDS:
            assert normalize_backend(name) == name
        assert normalize_backend(None) is None

    def test_normalize_rejects_unknown(self):
        with pytest.raises(AnalysisError, match="unknown kernel backend"):
            normalize_backend("blas")

    def test_default_backend_roundtrip(self):
        assert get_default_backend() == "auto"
        set_default_backend("reference")
        assert get_default_backend() == "reference"
        # None resolves to the new process default.
        assert resolve_backend(None) == "reference"

    def test_set_default_rejects_unknown(self):
        with pytest.raises(AnalysisError, match="unknown kernel backend"):
            set_default_backend("vulkan")
        with pytest.raises(AnalysisError, match="unknown kernel backend"):
            set_default_backend(None)

    def test_available_backends_always_has_core_trio(self):
        names = available_backends()
        assert ("auto", "reference", "fft") == names[:3]
        assert ("numba" in names) == numba_available()

    def test_disable_numba_env_forces_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        assert not numba_available()
        assert "numba" not in available_backends()

    def test_numba_degrades_to_auto_with_one_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        monkeypatch.setattr(kernels, "_numba_warned", False)
        with obs.instrument() as ob:
            with pytest.warns(RuntimeWarning, match="degrading to 'auto'"):
                assert resolve_backend("numba") == "auto"
            # Second request degrades silently but is still counted.
            assert resolve_backend("numba") == "auto"
            counters = ob.manifest()["counters"]
        assert counters["kernel.numba_unavailable"] == 2

    def test_unknown_backend_rejected_at_convolve(self):
        a = np.ones((1, 3))
        with pytest.raises(AnalysisError, match="unknown kernel backend"):
            batch_convolve(a, a, backend="blas")


class TestReferenceKernel:
    def test_matches_numpy_convolve_per_row(self, rng):
        a = rng.random((4, 9))
        b = rng.random((4, 5))
        out = batch_convolve(a, b, backend="reference")
        for row in range(4):
            np.testing.assert_allclose(
                out[row], np.convolve(a[row], b[row]), atol=1e-15
            )

    def test_batch_invariance_bitwise(self, rng):
        a = _pmf_stack(rng, 6, 31)
        b = _pmf_stack(rng, 6, 17)
        full = batch_convolve(a, b, backend="reference")
        for row in range(6):
            single = batch_convolve(
                a[row : row + 1], b[row : row + 1], backend="reference"
            )
            assert (single[0] == full[row]).all()

    def test_operand_order_symmetric(self, rng):
        a = rng.random((3, 20))
        b = rng.random((3, 7))
        assert (
            batch_convolve(a, b, backend="reference")
            == batch_convolve(b, a, backend="reference")
        ).all()

    def test_shape_validation(self):
        with pytest.raises(AnalysisError, match="two \\(B, n\\) stacks"):
            batch_convolve(np.ones(3), np.ones((1, 3)))
        with pytest.raises(AnalysisError, match="two \\(B, n\\) stacks"):
            batch_convolve(np.ones((2, 3)), np.ones((3, 3)))


class TestFFTConformance:
    """FFT-vs-reference agreement on adversarial stacks (satellite c)."""

    def test_tiny_supports(self):
        # Length-1 and length-2 operands: degenerate FFT grids.
        cases = [
            (np.array([[0.25], [1.0], [0.0]]), np.array([[4.0], [0.5], [3.0]])),
            (
                np.array([[0.5, 0.5], [0.9, 0.1]]),
                np.array([[1.0], [0.25]]),
            ),
            (
                np.array([[0.3, 0.7], [0.6, 0.4]]),
                np.array([[0.2, 0.8], [0.5, 0.5]]),
            ),
        ]
        for a, b in cases:
            ref = batch_convolve(a, b, backend="reference")
            fft = batch_convolve(a, b, backend="fft")
            assert np.abs(fft - ref).max() <= 1e-12

    def test_near_zero_mass_rows(self, rng):
        a = _pmf_stack(rng, 3, 80)
        b = _pmf_stack(rng, 3, 70)
        a[0] *= 1e-300  # sub-normal-adjacent mass
        a[1] = 0.0  # no mass at all
        ref = batch_convolve(a, b, backend="reference")
        fft = batch_convolve(a, b, backend="fft")
        assert np.abs(fft - ref).max() <= 1e-12
        assert (fft[1] == 0.0).all()

    def test_mixed_magnitude_pmfs(self, rng):
        # Rows spanning ~15 decades but still summing to <= 1: the shape
        # the truncated geometric tails actually produce.
        width = 96
        decades = np.logspace(0, -15, width)
        a = np.stack([decades, decades[::-1], _pmf_stack(rng, 1, width)[0]])
        a = a / a.sum(axis=1, keepdims=True)
        b = _pmf_stack(rng, 3, width)
        ref = batch_convolve(a, b, backend="reference")
        fft = batch_convolve(a, b, backend="fft")
        assert np.abs(fft - ref).max() <= 1e-12

    def test_fft_clamps_roundoff_negatives(self, rng):
        a = _pmf_stack(rng, 4, 128)
        b = _pmf_stack(rng, 4, 128)
        out = batch_convolve(a, b, backend="fft")
        assert (out >= 0.0).all()

    def test_fft_batch_invariance(self, rng):
        a = _pmf_stack(rng, 5, 90)
        b = _pmf_stack(rng, 5, 90)
        full = batch_convolve(a, b, backend="fft")
        for row in range(5):
            single = batch_convolve(
                a[row : row + 1], b[row : row + 1], backend="fft"
            )
            assert (single[0] == full[row]).all()

    def test_power_auto_vs_reference(self, rng):
        base = _pmf_stack(rng, 3, 40)
        ref = batch_convolve_power(base, 7, backend="reference")
        auto = batch_convolve_power(base, 7, backend="auto")
        assert np.abs(auto - ref).max() <= 1e-12


class TestDispatch:
    def test_auto_small_support_is_bitwise_reference(self, rng):
        a = _pmf_stack(rng, 4, 200)
        b = _pmf_stack(rng, 4, FFT_MIN_WIDTH - 1)
        with obs.instrument() as ob:
            auto = batch_convolve(a, b, backend="auto")
            counters = ob.manifest()["counters"]
        assert (auto == batch_convolve(a, b, backend="reference")).all()
        assert "kernel.fft_dispatch" not in counters

    def test_auto_large_support_dispatches_fft(self, rng):
        a = _pmf_stack(rng, 4, FFT_MIN_WIDTH)
        b = _pmf_stack(rng, 4, FFT_MIN_WIDTH)
        with obs.instrument() as ob:
            auto = batch_convolve(a, b, backend="auto")
            counters = ob.manifest()["counters"]
        assert counters["kernel.fft_dispatch"] == 1
        assert (auto == batch_convolve(a, b, backend="fft")).all()

    def test_dispatch_keys_on_shorter_operand(self, rng):
        # One wide operand is not enough: the crossover depends on the
        # shorter support, whichever argument slot it arrives in.
        wide = _pmf_stack(rng, 2, 500)
        narrow = _pmf_stack(rng, 2, 8)
        with obs.instrument() as ob:
            batch_convolve(narrow, wide, backend="auto")
            counters = ob.manifest()["counters"]
        assert "kernel.fft_dispatch" not in counters

    def test_guard_falls_back_on_large_norms(self):
        # ||a||_1 * ||b||_1 ~ 1e22 pushes the a-priori bound far past the
        # guard: the call must take the exact loop and count the fallback.
        a = np.full((2, 128), 1e9)
        b = np.full((2, 128), 1e9)
        assert fft_roundoff_bound(a, b) > FFT_GUARD_ATOL
        with obs.instrument() as ob:
            out = batch_convolve(a, b, backend="fft")
            counters = ob.manifest()["counters"]
        assert counters["kernel.fallbacks"] == 1
        assert "kernel.fft_dispatch" not in counters
        assert (out == batch_convolve(a, b, backend="reference")).all()

    def test_guard_accepts_pmf_rows(self, rng):
        a = _pmf_stack(rng, 3, 128)
        b = _pmf_stack(rng, 3, 128)
        assert fft_roundoff_bound(a, b) <= FFT_GUARD_ATOL

    def test_guard_rejects_nonfinite(self):
        a = np.full((1, 128), np.inf)
        b = np.ones((1, 128))
        with obs.instrument() as ob:
            batch_convolve(a, b, backend="fft")
            counters = ob.manifest()["counters"]
        assert counters["kernel.fallbacks"] == 1


class TestEngineBackends:
    def test_engine_rejects_unknown_backend(self, small):
        with pytest.raises(AnalysisError, match="unknown kernel backend"):
            BatchedMarkovSpatialAnalysis(small, backend="blas")

    def test_engine_backend_property(self, small):
        assert BatchedMarkovSpatialAnalysis(small).backend is None
        engine = BatchedMarkovSpatialAnalysis(small, backend="fft")
        assert engine.backend == "fft"

    def test_auto_within_tolerance_of_reference(self, small):
        clear_analysis_cache()
        axes = dict(num_sensors=[20, 40, 80], thresholds=[1, 3, 6])
        ref = BatchedMarkovSpatialAnalysis(
            small, backend="reference"
        ).detection_probability_grid(**axes)
        fft = BatchedMarkovSpatialAnalysis(
            small, backend="fft"
        ).detection_probability_grid(**axes)
        auto = BatchedMarkovSpatialAnalysis(
            small, backend="auto"
        ).detection_probability_grid(**axes)
        assert np.abs(fft - ref).max() <= 1e-12
        assert np.abs(auto - ref).max() <= 1e-12

    def test_default_backend_governs_plain_engines(self, small):
        clear_analysis_cache()
        set_default_backend("reference")
        inherited = BatchedMarkovSpatialAnalysis(
            small
        ).detection_probability_grid(num_sensors=[30], thresholds=[2])
        explicit = BatchedMarkovSpatialAnalysis(
            small, backend="reference"
        ).detection_probability_grid(num_sensors=[30], thresholds=[2])
        assert (inherited == explicit).all()


#: PR 5 golden grids, reproduced bitwise by ``backend='reference'``.
#: Regenerate only on a deliberate numerical contract change:
#:   detection_probability_grid under the parameters named in each case.
GOLDEN_SMALL = [
    ["0x1.250aaae998776p-2", "0x1.789352b7b0611p-3", "0x1.8b7ed1d7d6c98p-6"],
    ["0x1.f635aa8685f53p-2", "0x1.5ec15f17d3905p-2", "0x1.5b2d945aff1cap-4"],
    ["0x1.7b0241b88211ap-1", "0x1.2bdeab2426753p-1", "0x1.08d24a2c585fcp-2"],
]
GOLDEN_ONR = [
    ["0x1.b4fd50acd4b3fp-2"],
    ["0x1.f50cd3b3cacb8p-1"],
]


class TestReferenceGoldens:
    """``backend='reference'`` must stay bitwise equal to the PR 5 output."""

    def _hex_grid(self, grid):
        return [[float(v).hex() for v in row] for row in grid]

    def test_small_grid_bitwise(self):
        clear_analysis_cache()
        grid = BatchedMarkovSpatialAnalysis(
            small_scenario(), backend="reference"
        ).detection_probability_grid(
            num_sensors=[20, 40, 80], thresholds=[1, 3, 6]
        )
        assert self._hex_grid(grid) == GOLDEN_SMALL

    @pytest.mark.slow
    def test_onr_grid_bitwise(self):
        clear_analysis_cache()
        grid = BatchedMarkovSpatialAnalysis(
            onr_scenario(num_sensors=240, speed=10.0),
            body_truncation=4,
            substeps=2,
            backend="reference",
        ).detection_probability_grid(num_sensors=[60, 240], thresholds=[5])
        assert self._hex_grid(grid) == GOLDEN_ONR
