"""Unit tests for repro.core.spatial (the S-approach)."""

import numpy as np
import pytest

from repro.core.spatial import SApproach
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


class TestConstruction:
    def test_valid(self, onr):
        approach = SApproach(onr, max_sensors=4)
        assert approach.max_sensors == 4
        assert approach.scenario is onr

    def test_invalid_truncation_rejected(self, onr):
        with pytest.raises(AnalysisError):
            SApproach(onr, max_sensors=0)

    def test_small_window_rejected(self):
        with pytest.raises(AnalysisError):
            SApproach(onr_scenario(window=3, threshold=1))

    def test_region_areas_copy_is_defensive(self, onr):
        approach = SApproach(onr)
        areas = approach.region_areas
        areas[:] = 0.0
        assert approach.region_areas.sum() > 0.0


class TestAccuracy:
    def test_accuracy_grows_with_truncation(self, onr):
        values = [SApproach(onr, g).accuracy() for g in (1, 3, 6, 10, 14)]
        assert values == sorted(values)
        # ~6.4 sensors are expected inside the ARegion at N=240, so small
        # truncations capture very little — the S-approach's core problem.
        assert values[0] < 0.05
        assert values[-1] > 0.95

    def test_accuracy_below_one_when_truncated(self, onr):
        assert SApproach(onr, max_sensors=2).accuracy() < 1.0


class TestDetectionProbability:
    def test_pmf_mass_equals_accuracy(self, onr):
        approach = SApproach(onr, max_sensors=5)
        assert approach.report_count_pmf().sum() == pytest.approx(
            approach.accuracy()
        )

    def test_normalized_in_unit_interval(self, onr):
        p = SApproach(onr, max_sensors=6).detection_probability()
        assert 0.0 <= p <= 1.0

    def test_unnormalized_below_normalized(self, onr):
        approach = SApproach(onr, max_sensors=4)
        assert approach.detection_probability(
            normalize=False
        ) <= approach.detection_probability(normalize=True)

    def test_threshold_zero_is_certain_after_normalisation(self, onr):
        assert SApproach(onr, 5).detection_probability(threshold=0) == pytest.approx(
            1.0
        )

    def test_threshold_monotone(self, onr):
        approach = SApproach(onr, max_sensors=6)
        values = [approach.detection_probability(threshold=k) for k in (1, 3, 5, 9)]
        assert values == sorted(values, reverse=True)

    def test_threshold_beyond_support_is_zero(self, onr):
        approach = SApproach(onr, max_sensors=2)
        assert approach.detection_probability(threshold=10_000) == 0.0

    def test_negative_threshold_rejected(self, onr):
        with pytest.raises(AnalysisError):
            SApproach(onr, 3).detection_probability(threshold=-1)

    def test_naive_mode_agrees(self, small):
        approach = SApproach(small, max_sensors=2)
        fast = approach.report_count_pmf(naive=False)
        naive = approach.report_count_pmf(naive=True)
        np.testing.assert_allclose(fast, naive, atol=1e-12)
