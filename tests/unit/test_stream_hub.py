"""Unit tests for the stream hub: sessions, fan-out, eviction."""

import asyncio
import json

import pytest

from repro.errors import ProtocolError
from repro.experiments.presets import small_scenario
from repro.detection.reports import DetectionReport
from repro.geometry.shapes import Point
from repro.streaming import protocol
from repro.streaming.hub import StreamHub


def _run(coro):
    return asyncio.run(coro)


def _report(node, period):
    return DetectionReport(node, period, Point(0.0, 0.0))


def _play_session(hub, periods, seed=3, event_digest=None):
    """Feed one full session through a hub; return the end summary."""
    scenario = small_scenario()
    session = hub.open_session()
    session.handle(protocol.hello_frame(scenario, seed=seed))
    seq = 0
    total = 0
    last = 0
    for period, reports in periods:
        seq += 1
        session.handle(protocol.reports_frame(seq, period, reports))
        total += len(reports)
        last = period
    seq += 1
    replies = session.handle(
        protocol.end_frame(
            seq, periods=last, total_reports=total, event_digest=event_digest
        )
    )
    return replies[0]


class TestSessions:
    def test_session_summary_and_counters(self):
        hub = StreamHub()
        summary = _play_session(
            hub,
            [(1, [_report(1, 1)]), (2, [_report(2, 2), _report(3, 2)])],
        )
        assert summary["type"] == "end"
        assert summary["periods"] == 2
        assert summary["total_reports"] == 3
        assert len(summary["event_digest"]) == 64
        counters = hub.snapshot()["counters"]
        assert counters["sessions"] == 1
        assert counters["sessions_completed"] == 1
        assert counters["reports"] == 3
        assert counters["events"] == 2
        assert hub.snapshot()["sessions_active"] == 0

    def test_grammar_violation_propagates(self):
        hub = StreamHub()
        session = hub.open_session()
        session.handle(protocol.hello_frame(small_scenario(), seed=1))
        with pytest.raises(ProtocolError):
            session.handle(protocol.reports_frame(2, 1, []))  # seq skips 1

    def test_digest_mismatch_is_rejected_and_counted(self):
        hub = StreamHub()
        with pytest.raises(ProtocolError) as excinfo:
            _play_session(hub, [(1, [])], event_digest="0" * 64)
        assert excinfo.value.code == "digest"
        assert hub.snapshot()["counters"]["digest_mismatches"] == 1

    def test_matching_pinned_digest_accepted(self):
        hub = StreamHub()
        first = _play_session(hub, [(1, [_report(1, 1)])], seed=1)
        second = _play_session(
            hub,
            [(1, [_report(1, 1)])],
            seed=1,
            event_digest=first["event_digest"],
        )
        assert second["event_digest"] == first["event_digest"]


class TestFanOut:
    def test_subscribers_receive_identical_full_sessions(self):
        async def main():
            hub = StreamHub()
            subscribers = [hub.subscribe() for _ in range(3)]
            _play_session(hub, [(1, [_report(1, 1)]), (2, [])])

            async def drain(sub):
                frames = []
                async for encoded in sub:
                    frames.append(json.loads(encoded))
                    if frames[-1]["type"] == "end":
                        sub.close()
                return frames

            return await asyncio.gather(*(drain(s) for s in subscribers))

        streams = _run(main())
        assert streams[0] == streams[1] == streams[2]
        types = [frame["type"] for frame in streams[0]]
        assert types == ["hello", "event", "event", "end"]

    def test_slow_subscriber_is_evicted_and_counted(self):
        async def main():
            hub = StreamHub(subscriber_queue=2)
            slow = hub.subscribe()
            fast = hub.subscribe()

            async def drain(sub):
                frames = []
                async for encoded in sub:
                    frames.append(json.loads(encoded))
                    if frames[-1]["type"] == "end":
                        sub.close()
                return frames

            drain_task = asyncio.ensure_future(drain(fast))
            await asyncio.sleep(0)
            # 5 periods -> hello + 5 events + end = 7 frames; the slow
            # subscriber never drains its 2-slot queue while the fast
            # one keeps up (the loop gets control between frames, as it
            # would between socket reads).
            scenario = small_scenario()
            session = hub.open_session()
            session.handle(protocol.hello_frame(scenario, seed=3))
            await asyncio.sleep(0)
            for seq, period in enumerate(range(1, 6), start=1):
                session.handle(protocol.reports_frame(seq, period, []))
                await asyncio.sleep(0)
            session.handle(
                protocol.end_frame(6, periods=5, total_reports=0)
            )
            fast_frames = await drain_task
            return hub, slow, fast_frames

        hub, slow, fast_frames = _run(main())
        assert slow.evicted
        assert hub.snapshot()["counters"]["subscriber_evictions"] == 1
        assert [f["type"] for f in fast_frames][-1] == "end"
        assert hub.snapshot()["subscribers_active"] == 0

    def test_unsubscribe_is_idempotent(self):
        async def main():
            hub = StreamHub()
            sub = hub.subscribe()
            hub.unsubscribe(sub)
            hub.unsubscribe(sub)
            return hub.snapshot()

        snapshot = _run(main())
        assert snapshot["subscribers_active"] == 0
        assert snapshot["counters"].get("subscriber_evictions", 0) == 0

    def test_broadcast_without_subscribers_is_cheap(self):
        hub = StreamHub()
        assert hub.broadcast({"type": "event"}) == 0

    def test_close_wakes_all_subscribers(self):
        async def main():
            hub = StreamHub()
            subs = [hub.subscribe() for _ in range(2)]

            async def drain(sub):
                return [frame async for frame in sub]

            tasks = [asyncio.ensure_future(drain(s)) for s in subs]
            await asyncio.sleep(0)
            hub.close()
            return await asyncio.gather(*tasks)

        results = _run(main())
        assert results == [[], []]

    def test_invalid_queue_bound_rejected(self):
        with pytest.raises(ValueError):
            StreamHub(subscriber_queue=0)
