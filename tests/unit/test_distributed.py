"""Unit tests for the distributed sweep tier.

Three layers, in increasing realism: the pure
:class:`~repro.distributed.leases.LeaseBook` scheduling state machine,
the wire-protocol validators, and a real coordinator + thread-hosted
workers over localhost TCP (same code path as the process fleet, minus
the fork).
"""

import json
import socket
import threading

import pytest

from repro.distributed import (
    LeaseBook,
    SweepCoordinator,
    run_worker,
    resolve_spec,
)
from repro.distributed import protocol
from repro.errors import ProtocolError, SimulationError, StreamError
from repro.experiments.sweeps import _points_fingerprint


def double_point(**point):
    """Module-level so `callable` specs can import it by name."""
    return {"x": point["x"], "value": point["x"] * 2}


DOUBLE_SPEC = {
    "kind": "callable",
    "function": "tests.unit.test_distributed:double_point",
}


class TestLeaseBook:
    def test_initial_grants_split_pool_near_evenly(self):
        book = LeaseBook(10)
        for name in ("a", "b", "c"):
            book.register(name)
        grants = [book.request(name)[0] for name in ("a", "b", "c")]
        assert [g[0] for g in grants] == ["grant"] * 3
        # First grant is the largest shard (ceil(10/3) = 4); each later
        # grant re-splits the remaining pool over all three workers, so
        # no worker ever hoards the tail.
        assert grants[0][2:] == (0, 4)
        sizes = [stop - start for _, _, start, stop in grants]
        assert sizes == [4, 2, 2]
        # The leftovers are served when the first worker drains.
        for index in range(4):
            book.result("a", index)
        ((kind, worker, start, stop),) = book.request("a")
        assert (kind, worker) == ("grant", "a") and stop - start >= 1

    def test_every_lease_is_contiguous_and_disjoint(self):
        book = LeaseBook(13)
        for name in ("a", "b", "c", "d"):
            book.register(name)
        for name in ("a", "b", "c", "d"):
            book.request(name)
        seen = set()
        for name in ("a", "b", "c", "d"):
            pending = book.pending(name)
            assert pending == list(range(pending[0], pending[-1] + 1))
            assert not seen.intersection(pending)
            seen.update(pending)

    def test_steal_revokes_tail_half_of_slowest(self):
        book = LeaseBook(8)
        book.register("slow")
        directives = book.request("slow")  # takes all 8
        assert directives == [("grant", "slow", 0, 8)]
        book.register("thief")
        directives = book.request("thief")
        assert directives == [("revoke", "slow", 4)]
        directives = book.ack_revoke("slow", 4)
        assert ("grant", "thief", 4, 8) in directives
        assert book.pending("slow") == [0, 1, 2, 3]
        assert book.pending("thief") == [4, 5, 6, 7]
        assert book.stats["steals"] == 1

    def test_victim_outruns_revoke(self):
        book = LeaseBook(6)
        book.register("fast")
        book.request("fast")
        book.register("idle")
        assert book.request("idle") == [("revoke", "fast", 3)]
        # The victim computed 0..4 before the revoke landed; it acks at
        # its true frontier and the thief steals only what remains.
        for index in range(5):
            book.result("fast", index)
        directives = book.ack_revoke("fast", 5)
        assert ("grant", "idle", 5, 6) in directives
        assert book.pending("fast") == []

    def test_completed_points_are_never_leased(self):
        book = LeaseBook(6, completed=[0, 2, 4])
        book.register("w")
        ((kind, worker, start, stop),) = book.request("w")
        assert kind == "grant"
        # Pool is [1, 3, 5]; grants are contiguous runs, so the first
        # grant is the singleton run [1].
        assert (start, stop) == (1, 2)

    def test_crash_returns_lease_to_pool_and_reserves_parked(self):
        book = LeaseBook(6)
        book.register("a")
        book.request("a")
        book.register("b")
        book.request("b")  # parks, revoke in flight to a
        directives = book.crash("a")
        assert ("grant", "b", 0, 6) in directives
        assert "a" not in book.workers()
        assert book.stats["crashes"] == 1

    def test_exactly_once_enforced(self):
        book = LeaseBook(4)
        book.register("w")
        book.request("w")
        book.result("w", 0)
        with pytest.raises(SimulationError, match="does not own"):
            book.result("w", 0)
        with pytest.raises(SimulationError, match="still owning"):
            book.request("w")

    def test_done_signalled_to_parked_workers(self):
        book = LeaseBook(2)
        book.register("a")
        book.register("b")
        book.request("a")
        book.request("b")
        book.result("a", 0)
        directives = book.result("b", 1)
        assert book.done
        assert directives == []
        assert book.request("a") == [("done", "a")]

    def test_register_twice_rejected(self):
        book = LeaseBook(2)
        book.register("w")
        with pytest.raises(SimulationError, match="already registered"):
            book.register("w")

    def test_empty_sweep_is_immediately_done(self):
        book = LeaseBook(0)
        book.register("w")
        assert book.done
        assert book.request("w") == [("done", "w")]


class TestProtocol:
    def test_hello_roundtrip(self):
        frame = protocol.hello_frame("w0")
        assert protocol.validate_hello(frame) == "w0"

    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"protocol": 99}, "version"),
            ({"role": "coordinator"}, "handshake"),
            ({"worker": ""}, "handshake"),
            ({"type": "request"}, "handshake"),
        ],
    )
    def test_bad_hello_rejected(self, mutation, code):
        frame = {**protocol.hello_frame("w0"), **mutation}
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_hello(frame)
        assert excinfo.value.code == code

    def test_welcome_fingerprint_must_match_points(self):
        points = [{"x": 1}, {"x": 2}]
        good = protocol.welcome_frame(
            _points_fingerprint(points), points, DOUBLE_SPEC
        )
        assert protocol.validate_welcome(good, _points_fingerprint) is good
        lying = dict(good, fingerprint="0" * 64)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_welcome(lying, _points_fingerprint)
        assert excinfo.value.code == "fingerprint"

    def test_welcome_pinned_to_expected_sweep(self):
        points = [{"x": 1}]
        frame = protocol.welcome_frame(
            _points_fingerprint(points), points, DOUBLE_SPEC
        )
        with pytest.raises(ProtocolError, match="launched for"):
            protocol.validate_welcome(
                frame, _points_fingerprint, expected_fingerprint="f" * 64
            )

    def test_error_frame_surfaces_as_typed_protocol_error(self):
        frame = protocol.error_frame("nope", code="duplicate")
        with pytest.raises(ProtocolError) as excinfo:
            protocol.validate_welcome(frame, _points_fingerprint)
        assert excinfo.value.code == "duplicate"

    def test_frames_encode_canonically(self):
        frame = protocol.result_frame(3, {"b": 1, "a": 2})
        data = protocol.encode_frame(frame)
        assert data == b'{"index":3,"row":{"a":2,"b":1},"type":"result"}\n'


class TestResolveSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown spec kind"):
            resolve_spec({"kind": "quantum"})

    def test_unresolvable_callable_rejected(self):
        with pytest.raises(ProtocolError, match="cannot resolve"):
            resolve_spec({"kind": "callable", "function": "repro:nope"})
        with pytest.raises(ProtocolError, match="module:attr"):
            resolve_spec({"kind": "callable", "function": "no-colon"})

    def test_callable_with_fixed_kwargs(self):
        spec = dict(DOUBLE_SPEC)
        fn = resolve_spec(spec)
        assert fn(x=4) == {"x": 4, "value": 8}


def _quiet_worker(host, port, **kwargs):
    try:
        run_worker(host, port, **kwargs)
    except (StreamError, OSError):
        # Teardown race: the coordinator may close sockets once the
        # sweep is done, before late workers finish their handshake.
        pass


def _thread_workers(address, count, **kwargs):
    host, port = address
    threads = [
        threading.Thread(
            target=_quiet_worker,
            args=(host, port),
            kwargs={"name": f"t{index}", **kwargs},
            daemon=True,
        )
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


class TestCoordinatorSocket:
    POINTS = [{"x": value} for value in range(7)]

    def test_thread_workers_complete_sweep_in_order(self):
        coordinator = SweepCoordinator(self.POINTS, DOUBLE_SPEC).start()
        try:
            threads = _thread_workers(coordinator.address, 2)
            rows = coordinator.wait(timeout=30)
            for thread in threads:
                thread.join(timeout=10)
        finally:
            coordinator.close()
        assert rows == [double_point(**point) for point in self.POINTS]
        counters, _ = coordinator.metrics.snapshot()
        assert counters["results"] == 7
        # At least one grant happened; how the rest sharded is a race
        # (the first worker may finish before the second connects).
        assert counters["shards"] >= 1

    def test_single_worker_is_sufficient(self):
        coordinator = SweepCoordinator(self.POINTS, DOUBLE_SPEC).start()
        try:
            _thread_workers(coordinator.address, 1)
            rows = coordinator.wait(timeout=30)
        finally:
            coordinator.close()
        assert [row["value"] for row in rows] == [0, 2, 4, 6, 8, 10, 12]

    def test_duplicate_worker_name_refused(self):
        coordinator = SweepCoordinator(self.POINTS, DOUBLE_SPEC).start()
        errors = []

        def second():
            try:
                run_worker(*coordinator.address, name="same")
            except ProtocolError as exc:
                errors.append(exc)

        try:
            host, port = coordinator.address
            first = socket.create_connection((host, port))
            first.sendall(protocol.encode_frame(protocol.hello_frame("same")))
            first.recv(1 << 16)  # its welcome
            thread = threading.Thread(target=second, daemon=True)
            thread.start()
            thread.join(timeout=10)
            first.close()
        finally:
            coordinator.close()
        assert len(errors) == 1 and errors[0].code == "duplicate"

    def test_worker_rejects_wrong_sweep(self):
        coordinator = SweepCoordinator(self.POINTS, DOUBLE_SPEC).start()
        try:
            host, port = coordinator.address
            with pytest.raises(ProtocolError, match="launched for"):
                run_worker(
                    host, port, name="picky", expected_fingerprint="a" * 64
                )
        finally:
            coordinator.close()

    def test_rows_survive_wire_byte_identically(self, tmp_path):
        checkpoint = tmp_path / "wire.json"
        coordinator = SweepCoordinator(
            self.POINTS, DOUBLE_SPEC, checkpoint=str(checkpoint)
        ).start()
        try:
            _thread_workers(coordinator.address, 3)
            rows = coordinator.wait(timeout=30)
        finally:
            coordinator.close()
        from repro.experiments.sweeps import sweep

        serial = sweep(
            self.POINTS,
            lambda point: double_point(**point),
            checkpoint=str(tmp_path / "serial.json"),
        )
        assert json.dumps(rows) == json.dumps(serial)
        assert (
            (tmp_path / "wire.json").read_bytes()
            == (tmp_path / "serial.json").read_bytes()
        )

    def test_checkpoint_resume_skips_completed_points(self, tmp_path):
        checkpoint = tmp_path / "resume.json"
        first = SweepCoordinator(
            self.POINTS, DOUBLE_SPEC, checkpoint=str(checkpoint)
        ).start()
        try:
            _thread_workers(first.address, 2)
            first.wait(timeout=30)
        finally:
            first.close()
        second = SweepCoordinator(
            self.POINTS, DOUBLE_SPEC, checkpoint=str(checkpoint)
        ).start()
        try:
            # Everything is already in the checkpoint: done without any
            # worker connecting at all.
            rows = second.wait(timeout=10)
        finally:
            second.close()
        assert [row["value"] for row in rows] == [0, 2, 4, 6, 8, 10, 12]
        counters, _ = second.metrics.snapshot()
        assert counters["resumes"] == 7

    def test_illegal_transition_gets_error_frame(self):
        """A book violation answers with a typed error frame.

        Reporting a result for an index the worker does not own raises
        SimulationError inside the lease book; the handler must turn
        that into an ``error`` frame (code ``state``) before dropping
        the connection, not die with an unhandled traceback.
        """
        coordinator = SweepCoordinator(self.POINTS, DOUBLE_SPEC).start()
        try:
            host, port = coordinator.address
            sock = socket.create_connection((host, port), timeout=10)
            sock.settimeout(10)
            decoder = protocol.FrameDecoder(protocol.MAX_SWEEP_FRAME_BYTES)
            pending = []

            def read_frame():
                while not pending:
                    chunk = sock.recv(1 << 16)
                    assert chunk, "coordinator closed without an error frame"
                    pending.extend(decoder.feed(chunk))
                return pending.pop(0)

            sock.sendall(
                protocol.encode_frame(protocol.hello_frame("rogue"))
            )
            assert read_frame()["type"] == "welcome"
            sock.sendall(
                protocol.encode_frame(protocol.result_frame(3, {"x": 3}))
            )
            frame = read_frame()
            assert frame["type"] == "error"
            assert frame["code"] == "state"
            assert "does not own" in frame["error"]
            sock.close()
        finally:
            coordinator.close()
