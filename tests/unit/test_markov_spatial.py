"""Unit tests for repro.core.markov_spatial (the M-S-approach)."""

import numpy as np
import pytest

from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


@pytest.fixture
def analysis(onr) -> MarkovSpatialAnalysis:
    return MarkovSpatialAnalysis(onr, body_truncation=3)


class TestConstruction:
    def test_defaults(self, analysis):
        assert analysis.body_truncation == 3
        assert analysis.head_truncation == 3

    def test_separate_head_truncation(self, onr):
        msa = MarkovSpatialAnalysis(onr, body_truncation=2, head_truncation=5)
        assert msa.head_truncation == 5

    def test_invalid_truncations_rejected(self, onr):
        with pytest.raises(AnalysisError):
            MarkovSpatialAnalysis(onr, body_truncation=0)
        with pytest.raises(AnalysisError):
            MarkovSpatialAnalysis(onr, body_truncation=2, head_truncation=0)

    def test_small_window_rejected(self):
        with pytest.raises(AnalysisError):
            MarkovSpatialAnalysis(onr_scenario(window=4, threshold=1))


class TestStagePmfs:
    def test_head_mass_is_xi_h(self, analysis):
        assert analysis.head_stage_pmf().sum() == pytest.approx(
            analysis.head_stage_accuracy()
        )

    def test_body_mass_is_xi(self, analysis):
        assert analysis.body_stage_pmf().sum() == pytest.approx(
            analysis.body_stage_accuracy()
        )

    def test_head_mass_below_body_mass(self, analysis):
        # The head NEDR is bigger, so truncating at the same g loses more.
        assert analysis.head_stage_accuracy() < analysis.body_stage_accuracy()

    def test_tail_masses_equal_body_mass(self, analysis):
        # Same NEDR area, same truncation => same occupancy CDF (Eq. 9).
        xi = analysis.body_stage_accuracy()
        for j in range(1, analysis.scenario.ms + 1):
            assert analysis.tail_stage_pmf(j).sum() == pytest.approx(xi)

    def test_tail_support_shrinks_with_j(self, analysis):
        # Tail period T_j supports at most (ms + 1 - j) * g reports.
        g = analysis.body_truncation
        ms = analysis.scenario.ms
        for j in range(1, ms + 1):
            pmf = analysis.tail_stage_pmf(j)
            max_reports = np.flatnonzero(pmf > 0)[-1]
            assert max_reports <= (ms + 1 - j) * g

    def test_analysis_accuracy_formula(self, analysis):
        expected = analysis.head_stage_accuracy() * analysis.body_stage_accuracy() ** (
            analysis.scenario.window - 1
        )
        assert analysis.analysis_accuracy() == pytest.approx(expected)

    def test_paper_accuracy_ballpark(self, onr):
        # Section 4 quotes 95.6% accuracy at N = 240, V = 10, gh = g = 3.
        # The literal Eqs. 7/9/14 evaluate to 97.6%; we assert the shared
        # qualitative claim (a few percent of mass is dropped, recovered by
        # normalisation) and record the numeric gap in EXPERIMENTS.md.
        msa = MarkovSpatialAnalysis(onr, body_truncation=3, head_truncation=3)
        assert 0.94 < msa.analysis_accuracy() < 0.99


class TestResultDistribution:
    def test_convolution_matches_matrix(self, analysis):
        conv = analysis.report_count_distribution("convolution")
        matrix = analysis.report_count_distribution("matrix")
        np.testing.assert_allclose(conv, matrix[: conv.size], atol=1e-12)
        assert abs(matrix[conv.size :]).sum() == 0.0

    def test_total_mass_is_eta_ms(self, analysis):
        dist = analysis.report_count_distribution()
        assert dist.sum() == pytest.approx(analysis.analysis_accuracy())

    def test_unknown_method_rejected(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.report_count_distribution("fft")

    def test_state_count(self, analysis):
        # M * Z + 1 with Z = (ms + 1) * gh = 5 * 3.
        assert analysis.num_states() == 20 * 15 + 1

    def test_transition_matrix_shapes(self, analysis):
        matrices = analysis.transition_matrices()
        assert len(matrices) == 2 + analysis.scenario.ms
        for matrix in matrices:
            assert matrix.shape == (analysis.num_states(), analysis.num_states())


class TestDetectionProbability:
    def test_in_unit_interval(self, analysis):
        assert 0.0 <= analysis.detection_probability() <= 1.0

    def test_normalized_above_unnormalized(self, analysis):
        assert analysis.detection_probability(
            normalize=False
        ) < analysis.detection_probability(normalize=True)

    def test_monotone_in_threshold(self, analysis):
        values = [analysis.detection_probability(threshold=k) for k in (1, 3, 5, 10)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_sensor_count(self):
        values = [
            MarkovSpatialAnalysis(onr_scenario(num_sensors=n)).detection_probability()
            for n in (60, 120, 240)
        ]
        assert values == sorted(values)

    def test_faster_target_detected_more_often(self):
        # The paper's headline observation about sparse networks.
        slow = MarkovSpatialAnalysis(
            onr_scenario(num_sensors=120, speed=4.0)
        ).detection_probability()
        fast = MarkovSpatialAnalysis(
            onr_scenario(num_sensors=120, speed=10.0)
        ).detection_probability()
        assert fast > slow

    def test_matrix_method_same_probability(self, analysis):
        assert analysis.detection_probability(method="matrix") == pytest.approx(
            analysis.detection_probability(method="convolution"), abs=1e-12
        )

    def test_negative_threshold_rejected(self, analysis):
        with pytest.raises(AnalysisError):
            analysis.detection_probability(threshold=-1)

    def test_threshold_beyond_support(self, analysis):
        assert analysis.detection_probability(threshold=10_000) == 0.0

    def test_threshold_at_exact_support_edge(self, analysis):
        """``k == distribution.size`` must take the beyond-support branch
        (``dist[k:]`` would be an empty-but-valid slice one index later)."""
        size = analysis.report_count_distribution().size
        assert analysis.detection_probability(threshold=size) == 0.0
        assert analysis.detection_probability(threshold=size - 1) >= 0.0

    def test_zero_mass_error_names_truncations(self, tiny):
        """With truncations that capture no mass, the normalised result is
        undefined; the error must name the offending parameters so a user
        can fix their configuration without reading the source."""
        starved = MarkovSpatialAnalysis(
            tiny.replace(num_sensors=500_000),
            body_truncation=1,
            head_truncation=1,
        )
        with pytest.raises(AnalysisError) as excinfo:
            starved.detection_probability()
        message = str(excinfo.value)
        assert "num_sensors=500000" in message
        assert "g=1" in message and "gh=1" in message
        assert "substeps=1" in message
        assert "increase the truncations" in message
        # The unnormalised tail is still well-defined (it is just zero).
        assert starved.detection_probability(normalize=False) == 0.0


class TestSubsteps:
    """Section 3.4.5's sketched refinement: slice each NEDR into substeps."""

    def test_substep_accuracy_beats_base_at_same_truncation(self, onr):
        base = MarkovSpatialAnalysis(onr, 2, 2, substeps=1)
        sliced = MarkovSpatialAnalysis(onr, 2, 2, substeps=3)
        assert sliced.analysis_accuracy() > base.analysis_accuracy()

    def test_smaller_g_with_substeps_matches_larger_g(self, onr):
        # g=2, Q=3 captures at least the accuracy of g=3, Q=1.
        refined = MarkovSpatialAnalysis(onr, 2, 2, substeps=3)
        paper = MarkovSpatialAnalysis(onr, 3, 3, substeps=1)
        assert refined.analysis_accuracy() >= paper.analysis_accuracy() - 1e-6
        assert refined.detection_probability() == pytest.approx(
            paper.detection_probability(), abs=1e-3
        )

    def test_substeps_converge_to_exact(self, onr):
        from repro.core.exact_spatial import ExactSpatialAnalysis

        exact = ExactSpatialAnalysis(onr).detection_probability()
        refined = MarkovSpatialAnalysis(
            onr, 3, 3, substeps=4
        ).detection_probability()
        assert refined == pytest.approx(exact, abs=2e-3)

    def test_engines_agree_with_substeps(self, onr):
        analysis = MarkovSpatialAnalysis(onr, 2, 2, substeps=2)
        conv = analysis.report_count_distribution("convolution")
        matrix = analysis.report_count_distribution("matrix")
        np.testing.assert_allclose(conv, matrix[: conv.size], atol=1e-12)
        assert abs(matrix[conv.size :]).sum() == 0.0

    def test_substep_one_is_base_method(self, onr):
        base = MarkovSpatialAnalysis(onr, 3).report_count_distribution()
        explicit = MarkovSpatialAnalysis(
            onr, 3, substeps=1
        ).report_count_distribution()
        np.testing.assert_array_equal(base, explicit)

    def test_invalid_substeps_rejected(self, onr):
        with pytest.raises(AnalysisError):
            MarkovSpatialAnalysis(onr, 3, substeps=0)
