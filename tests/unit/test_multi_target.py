"""Unit tests for multi-target streams and track clustering."""

import numpy as np
import pytest

from repro.detection.reports import DetectionReport
from repro.detection.track_filter import SpeedGateTrackFilter
from repro.errors import AnalysisError, SimulationError
from repro.geometry.shapes import Point
from repro.simulation.streams import simulate_multi_target_stream
from repro.tracking import cluster_reports


@pytest.fixture
def two_target_episode(small):
    starts = np.array(
        [
            [small.field.width * 0.2, small.field.height * 0.2],
            [small.field.width * 0.8, small.field.height * 0.8],
        ]
    )
    return simulate_multi_target_stream(
        small, starts, rng=7, headings=np.array([0.0, np.pi])
    )


class TestSimulateMultiTargetStream:
    def test_episode_shapes(self, two_target_episode, small):
        episode = two_target_episode
        assert episode.num_targets == 2
        assert episode.waypoints.shape == (2, small.window + 1, 2)
        assert len(episode.periods) == small.window
        assert len(episode.report_sources) == small.window

    def test_sources_parallel_to_reports(self, two_target_episode):
        for reports, sources in zip(
            two_target_episode.periods, two_target_episode.report_sources
        ):
            assert len(reports) == len(sources)
            for source in sources:
                assert source in (-1, 0, 1)

    def test_per_target_counts_match_sources(self, two_target_episode):
        counted = np.zeros(2, dtype=int)
        for sources in two_target_episode.report_sources:
            for source in sources:
                if source >= 0:
                    counted[source] += 1
        np.testing.assert_array_equal(
            counted, two_target_episode.per_target_report_counts
        )

    def test_detected_targets_respects_threshold(self, two_target_episode):
        episode = two_target_episode
        for t in episode.detected_targets(threshold=1):
            assert episode.per_target_report_counts[t] >= 1
        assert episode.detected_targets(threshold=10_000) == []

    def test_false_alarms_marked_minus_one(self, small):
        starts = np.array([[small.field.width / 2, small.field.height / 2]])
        episode = simulate_multi_target_stream(
            small, starts, rng=8, false_alarm_prob=0.02
        )
        sources = [s for ss in episode.report_sources for s in ss]
        assert sources.count(-1) == episode.false_report_count
        assert episode.false_report_count > 0

    def test_single_target_reduces_to_plain_stream_statistics(self, small):
        # Expected per-episode report counts match the single-target path.
        from repro.simulation.streams import simulate_report_stream

        rng = np.random.default_rng(9)
        multi_counts, single_counts = [], []
        for _ in range(150):
            start = rng.uniform(
                (0, 0), (small.field.width, small.field.height), size=(1, 2)
            )
            multi = simulate_multi_target_stream(small, start, rng=rng)
            multi_counts.append(int(multi.per_target_report_counts[0]))
            single = simulate_report_stream(small, rng=rng)
            single_counts.append(single.true_report_count)
        assert np.mean(multi_counts) == pytest.approx(
            np.mean(single_counts), abs=1.0
        )

    def test_invalid_inputs_rejected(self, small):
        with pytest.raises(SimulationError):
            simulate_multi_target_stream(small, np.zeros((0, 2)))
        with pytest.raises(SimulationError):
            simulate_multi_target_stream(small, np.zeros((2, 3)))
        with pytest.raises(SimulationError):
            simulate_multi_target_stream(
                small, np.zeros((2, 2)), headings=np.zeros(3)
            )
        with pytest.raises(SimulationError):
            simulate_multi_target_stream(
                small, np.zeros((1, 2)), false_alarm_prob=1.0
            )


class TestClusterReports:
    @pytest.fixture
    def gate(self):
        return SpeedGateTrackFilter(
            max_speed=10.0, sensing_range=100.0, period_length=60.0
        )

    @staticmethod
    def track_reports(offset_x, node_base, periods=5):
        return [
            DetectionReport(node_base + p, p + 1, Point(offset_x + 600.0 * p, 0.0))
            for p in range(periods)
        ]

    def test_two_distant_tracks_split(self, gate):
        a = self.track_reports(0.0, 0)
        b = self.track_reports(500_000.0, 100)
        clusters = cluster_reports(a + b, gate)
        assert len(clusters) == 2
        ids = [{r.node_id for r in c} for c in clusters]
        assert {frozenset(i) for i in ids} == {
            frozenset(r.node_id for r in a),
            frozenset(r.node_id for r in b),
        }

    def test_single_track_single_cluster(self, gate):
        reports = self.track_reports(0.0, 0)
        clusters = cluster_reports(reports, gate)
        assert len(clusters) == 1
        assert len(clusters[0]) == len(reports)

    def test_noise_dropped(self, gate):
        track = self.track_reports(0.0, 0)
        noise = [DetectionReport(99, 3, Point(9e6, 9e6))]
        clusters = cluster_reports(track + noise, gate)
        assert all(
            all(r.node_id != 99 for r in cluster) for cluster in clusters
        )

    def test_min_cluster_size(self, gate):
        lonely = [DetectionReport(0, 1, Point(0.0, 0.0))]
        assert cluster_reports(lonely, gate, min_cluster_size=2) == []
        assert len(cluster_reports(lonely, gate, min_cluster_size=1)) == 1

    def test_max_clusters_bound(self, gate):
        tracks = []
        for i in range(5):
            tracks.extend(self.track_reports(i * 1e6, i * 100))
        clusters = cluster_reports(tracks, gate, max_clusters=2)
        assert len(clusters) == 2

    def test_empty_input(self, gate):
        assert cluster_reports([], gate) == []

    def test_invalid_bounds_rejected(self, gate):
        with pytest.raises(AnalysisError):
            cluster_reports([], gate, min_cluster_size=0)
        with pytest.raises(AnalysisError):
            cluster_reports([], gate, max_clusters=0)
