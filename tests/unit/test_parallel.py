"""Unit tests for repro.parallel: sharding, seeding, merging, determinism."""

import hashlib

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.parallel import (
    available_workers,
    merge_simulation_results,
    parallel_map,
    run_simulator_parallel,
    spawn_seed_sequences,
    split_trials,
)
from repro.simulation.runner import MonteCarloSimulator, SimulationResult


def fingerprint(result: SimulationResult) -> str:
    """Bitwise digest of every per-trial array a run produces."""
    digest = hashlib.sha256()
    for array in (
        result.report_counts,
        result.node_counts,
        result.false_report_counts,
        result.detection_periods,
    ):
        if array is not None:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class TestSplitTrials:
    def test_even_split(self):
        assert split_trials(100, 4) == [25, 25, 25, 25]

    def test_remainder_goes_to_first_shards(self):
        assert split_trials(10, 3) == [4, 3, 3]

    def test_sums_to_trials(self):
        for trials in (1, 7, 100, 1001):
            for workers in (1, 2, 3, 8):
                shards = split_trials(trials, workers)
                assert sum(shards) == trials
                assert all(s >= 1 for s in shards)

    def test_workers_clamped_to_trials(self):
        assert split_trials(3, 8) == [1, 1, 1]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            split_trials(0, 2)
        with pytest.raises(SimulationError):
            split_trials(10, 0)
        with pytest.raises(SimulationError):
            split_trials(10, 2.5)


class TestSpawnSeedSequences:
    def test_deterministic_per_seed_and_workers(self):
        a = spawn_seed_sequences(42, 4)
        b = spawn_seed_sequences(42, 4)
        assert [s.generate_state(4).tolist() for s in a] == [
            s.generate_state(4).tolist() for s in b
        ]

    def test_streams_differ_across_workers(self):
        states = {
            tuple(s.generate_state(4).tolist())
            for s in spawn_seed_sequences(42, 4)
        }
        assert len(states) == 4

    def test_prefix_stability_not_required(self):
        # Different worker counts are *allowed* to produce different
        # streams — only (seed, workers) as a pair is pinned.
        two = spawn_seed_sequences(7, 2)
        assert len(two) == 2


class TestMergeSimulationResults:
    def test_concatenates_in_shard_order(self, small):
        a = SimulationResult(
            scenario=small,
            report_counts=np.array([1, 2]),
            node_counts=np.array([1, 2]),
        )
        b = SimulationResult(
            scenario=small,
            report_counts=np.array([3]),
            node_counts=np.array([3]),
        )
        merged = merge_simulation_results([a, b])
        np.testing.assert_array_equal(merged.report_counts, [1, 2, 3])
        assert merged.trials == 3

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            merge_simulation_results([])

    def test_single_shard_is_identity(self, small):
        result = MonteCarloSimulator(small, trials=40, seed=2).run()
        merged = merge_simulation_results([result])
        assert merged.trials == result.trials
        assert fingerprint(merged) == fingerprint(result)

    def test_rejects_scenario_mismatch(self, small, tiny):
        a = SimulationResult(
            scenario=small,
            report_counts=np.array([1]),
            node_counts=np.array([1]),
        )
        b = SimulationResult(
            scenario=tiny,
            report_counts=np.array([1]),
            node_counts=np.array([1]),
        )
        with pytest.raises(SimulationError):
            merge_simulation_results([a, b])

    def test_rejects_tracking_mismatch(self, small):
        a = SimulationResult(
            scenario=small,
            report_counts=np.array([1]),
            node_counts=np.array([1]),
            detection_periods=np.array([2.0]),
        )
        b = SimulationResult(
            scenario=small,
            report_counts=np.array([1]),
            node_counts=np.array([1]),
        )
        with pytest.raises(SimulationError):
            merge_simulation_results([a, b])


class TestParallelRun:
    def test_same_seed_same_workers_identical(self, small):
        a = MonteCarloSimulator(small, trials=120, seed=9).run(workers=3)
        b = MonteCarloSimulator(small, trials=120, seed=9, workers=3).run()
        assert fingerprint(a) == fingerprint(b)
        assert a.trials == 120

    def test_workers_1_matches_legacy_serial(self, small):
        serial = MonteCarloSimulator(small, trials=200, seed=11).run()
        explicit = MonteCarloSimulator(small, trials=200, seed=11).run(workers=1)
        assert fingerprint(serial) == fingerprint(explicit)

    def test_workers_1_matches_seed_repo_fingerprint(self):
        # Golden values captured from the pre-parallel serial implementation:
        # any drift here means the refactor changed the trial stream.
        from repro.experiments.presets import small_scenario

        result = MonteCarloSimulator(small_scenario(), trials=500, seed=123).run()
        assert list(result.report_counts[:10]) == [0, 4, 0, 1, 3, 4, 3, 0, 0, 3]
        assert result.detections == 154
        assert (
            fingerprint(result)
            == "8556e11ded8b057a444091c8e3f719a09474659083c4fb32dd8a92f5e4bf6678"
        )

    def test_parallel_estimate_within_serial_confidence_interval(self, small):
        serial = MonteCarloSimulator(small, trials=2_000, seed=3).run()
        parallel = MonteCarloSimulator(small, trials=2_000, seed=3).run(workers=2)
        low, high = serial.confidence_interval(confidence=0.999)
        assert low <= parallel.detection_probability <= high

    def test_progress_reported_from_parent(self, small):
        calls = []
        simulator = MonteCarloSimulator(
            small,
            trials=60,
            seed=1,
            progress=lambda done, total: calls.append((done, total)),
        )
        run_simulator_parallel(simulator, workers=2)
        assert calls[-1] == (60, 60)
        assert [done for done, _ in calls] == sorted(done for done, _ in calls)

    def test_unpicklable_deployment_raises_helpful_error(self, small):
        simulator = MonteCarloSimulator(
            small,
            trials=4,
            seed=1,
            deployment=lambda field, count, rng: rng.uniform(
                (0.0, 0.0), (field.width, field.height), size=(count, 2)
            ),
        )
        with pytest.raises(SimulationError, match="picklable"):
            simulator.run(workers=2)

    def test_invalid_workers_rejected(self, small):
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, trials=10, workers=0)
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, trials=10).run(workers=-1)

    def test_workers_beyond_trials_collapse(self, small):
        result = MonteCarloSimulator(small, trials=3, seed=5).run(workers=16)
        assert result.trials == 3


def _square(value):
    return {"value": value, "square": value * value}


def _affine(a, b):
    return {"sum": a + b}


class TestParallelMap:
    def test_ordered_results(self):
        assert parallel_map(_square, [3, 1, 2], workers=2) == [
            {"value": 3, "square": 9},
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
        ]

    def test_kwargs_items(self):
        rows = parallel_map(
            _affine,
            [{"a": 1, "b": 2}, {"a": 3, "b": 4}],
            workers=2,
            kwargs_items=True,
        )
        assert rows == [{"sum": 3}, {"sum": 7}]

    def test_serial_path_allows_lambdas(self):
        assert parallel_map(lambda v: v + 1, [1, 2], workers=1) == [2, 3]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []


def test_available_workers_positive():
    assert available_workers() >= 1
