"""Unit tests for the serving layer: coalescer, cache policy, server."""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cache import clear_analysis_cache
from repro.service import (
    AnalysisService,
    Endpoint,
    RequestCoalescer,
    ServiceConfig,
    build_response_cache,
    request_fingerprint,
)

SCENARIO = {
    "field_width": 10_000.0,
    "field_height": 10_000.0,
    "num_sensors": 240,
    "sensing_range": 600.0,
    "target_speed": 10.0,
    "sensing_period": 30.0,
    "detect_prob": 0.9,
    "window": 10,
    "threshold": 3,
}


@pytest.fixture(autouse=True)
def fresh_analysis_cache():
    clear_analysis_cache()
    yield
    clear_analysis_cache()


def run(coro):
    return asyncio.run(coro)


class _Gate:
    """A compute stub whose completion the test controls explicitly."""

    def __init__(self, result=None):
        self.calls = 0
        self._lock = threading.Lock()
        self.release = threading.Event()
        self.started = threading.Event()
        self._result = result if result is not None else {"value": 42}

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        self.started.set()
        if not self.release.wait(timeout=10):
            raise RuntimeError("gate never released")
        return dict(self._result, request=request)


def _stub_service(gate, path="/stub", **config_kwargs) -> AnalysisService:
    """A service with one gated endpoint on a thread pool (countable)."""
    endpoint = Endpoint(
        path,
        "stub",
        canonicalize=lambda payload: {"v": payload.get("v", 0)}
        if isinstance(payload, dict)
        else {"v": 0},
        compute=gate,
    )
    config = ServiceConfig(port=0, **config_kwargs)
    return AnalysisService(
        config,
        endpoints={path: endpoint},
        executor_factory=lambda: ThreadPoolExecutor(max_workers=config.workers),
    )


async def _settle(condition, timeout=5.0):
    """Await until ``condition()`` is true (event-loop friendly poll)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.005)


class TestRequestCoalescer:
    def test_concurrent_identical_keys_share_one_computation(self):
        async def main():
            coalescer = RequestCoalescer()
            calls = []
            release = asyncio.Event()

            async def compute():
                calls.append(1)
                await release.wait()
                return "answer"

            tasks = [
                asyncio.ensure_future(coalescer.run("k", compute))
                for _ in range(8)
            ]
            await _settle(lambda: coalescer.inflight == 1)
            release.set()
            results = await asyncio.gather(*tasks)
            assert len(calls) == 1
            assert all(value == "answer" for value, _ in results)
            coalesced = [flag for _, flag in results]
            assert coalesced.count(False) == 1
            assert coalesced.count(True) == 7
            assert coalescer.inflight == 0

        run(main())

    def test_distinct_keys_do_not_coalesce(self):
        async def main():
            coalescer = RequestCoalescer()
            calls = []

            def compute_for(key):
                async def compute():
                    calls.append(key)
                    return key

                return compute

            results = await asyncio.gather(
                coalescer.run("a", compute_for("a")),
                coalescer.run("b", compute_for("b")),
            )
            assert sorted(calls) == ["a", "b"]
            assert [flag for _, flag in results] == [False, False]

        run(main())

    def test_sequential_requests_recompute(self):
        async def main():
            coalescer = RequestCoalescer()
            calls = []

            async def compute():
                calls.append(1)
                return len(calls)

            first, _ = await coalescer.run("k", compute)
            second, coalesced = await coalescer.run("k", compute)
            assert (first, second) == (1, 2)
            assert not coalesced

        run(main())

    def test_error_propagates_to_every_waiter_then_clears(self):
        async def main():
            coalescer = RequestCoalescer()
            release = asyncio.Event()

            async def explode():
                await release.wait()
                raise RuntimeError("boom")

            tasks = [
                asyncio.ensure_future(coalescer.run("k", explode))
                for _ in range(3)
            ]
            await _settle(lambda: coalescer.inflight == 1)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(result, RuntimeError) for result in results)
            assert coalescer.inflight == 0

            async def recover():
                return "fine"

            value, coalesced = await coalescer.run("k", recover)
            assert value == "fine" and not coalesced

        run(main())

    def test_cancelled_follower_does_not_cancel_the_flight(self):
        async def main():
            coalescer = RequestCoalescer()
            release = asyncio.Event()

            async def compute():
                await release.wait()
                return "survived"

            leader = asyncio.ensure_future(coalescer.run("k", compute))
            follower = asyncio.ensure_future(coalescer.run("k", compute))
            await _settle(lambda: coalescer.inflight == 1)
            follower.cancel()
            await asyncio.gather(follower, return_exceptions=True)
            release.set()
            value, coalesced = await leader
            assert value == "survived" and not coalesced

        run(main())


class TestCachePolicy:
    def test_fingerprint_ignores_key_order(self):
        canonical = {"a": 1, "b": {"x": 2.0, "y": 3}}
        shuffled = {"b": {"y": 3, "x": 2.0}, "a": 1}
        assert request_fingerprint("/analyze", canonical) == request_fingerprint(
            "/analyze", shuffled
        )

    def test_fingerprint_separates_endpoints(self):
        canonical = {"a": 1}
        assert request_fingerprint("/analyze", canonical) != request_fingerprint(
            "/sweep", canonical
        )

    def test_response_cache_is_lru_with_ttl(self):
        clock = [0.0]
        cache = build_response_cache(max_entries=2, ttl=5.0, clock=lambda: clock[0])
        cache.store("a", b"1")
        cache.store("b", b"2")
        assert cache.lookup("a") == (True, b"1")  # refresh "a"
        cache.store("c", b"3")  # evicts "b" (LRU)
        assert "b" not in cache
        assert "a" in cache
        clock[0] = 10.0
        found, _ = cache.lookup("a")
        assert not found  # expired
        assert cache.expirations == 1
        assert cache.lookups == cache.hits + cache.misses


class TestServiceComputePath:
    def test_sixty_four_concurrent_identical_requests_one_computation(self):
        async def main():
            gate = _Gate()
            service = _stub_service(gate, queue_limit=128)
            body = json.dumps({"v": 7}).encode()
            tasks = [
                asyncio.ensure_future(service.dispatch("POST", "/stub", body))
                for _ in range(64)
            ]
            await _settle(
                lambda: service.metrics.counter("requests.stub") == 64
                and gate.started.is_set()
            )
            gate.release.set()
            results = await asyncio.gather(*tasks)
            statuses = [status for status, _, _ in results]
            bodies = {payload for _, _, payload in results}
            assert statuses == [200] * 64
            assert len(bodies) == 1  # byte-identical payloads
            assert gate.calls == 1  # exactly one underlying computation
            assert service.metrics.counter("computations") == 1
            assert service.metrics.counter("coalesced") == 63
            # Conservation: every request was leader, follower, or hit.
            assert (
                service.metrics.counter("computations")
                + service.metrics.counter("coalesced")
                + service.metrics.counter("cache_served")
                == 64
            )

        run(main())

    def test_cached_response_is_byte_identical_to_cold(self):
        async def main():
            gate = _Gate()
            gate.release.set()
            service = _stub_service(gate)
            body = json.dumps({"v": 1}).encode()
            status1, headers1, cold = await service.dispatch("POST", "/stub", body)
            status2, headers2, warm = await service.dispatch("POST", "/stub", body)
            assert (status1, status2) == (200, 200)
            assert headers1["X-Repro-Cache"] == "miss"
            assert headers2["X-Repro-Cache"] == "hit"
            assert cold == warm
            assert gate.calls == 1

        run(main())

    def test_backpressure_returns_503_with_retry_after(self):
        async def main():
            gate = _Gate()
            service = _stub_service(gate, queue_limit=1)
            slow = asyncio.ensure_future(
                service.dispatch("POST", "/stub", json.dumps({"v": 1}).encode())
            )
            await _settle(lambda: service.metrics.counter("requests.stub") == 1)
            # Distinct payload: must not coalesce, must hit admission.
            status, headers, payload = await service.dispatch(
                "POST", "/stub", json.dumps({"v": 2}).encode()
            )
            assert status == 503
            # Retry-After is jittered (1-3 s) so rejected clients do not
            # re-stampede the admission queue on the same second.
            assert headers["Retry-After"] in {"1", "2", "3"}
            assert b"admission queue full" in payload
            assert service.metrics.counter("rejected") == 1
            gate.release.set()
            status, _, _ = await slow
            assert status == 200
            # The server survived saturation: health still answers.
            status, _, health = await service.dispatch("GET", "/healthz")
            assert status == 200
            assert json.loads(health)["status"] == "ok"

        run(main())

    def test_cache_hit_bypasses_admission(self):
        async def main():
            gate = _Gate()
            service = _stub_service(gate, queue_limit=1)
            body = json.dumps({"v": 1}).encode()
            gate.release.set()
            await service.dispatch("POST", "/stub", body)
            gate.release.clear()
            # Saturate the only admission slot with a distinct request.
            blocked = asyncio.ensure_future(
                service.dispatch("POST", "/stub", json.dumps({"v": 9}).encode())
            )
            await _settle(lambda: service.metrics.counter("requests.stub") == 2)
            # The cached request still answers instantly.
            status, headers, _ = await service.dispatch("POST", "/stub", body)
            assert (status, headers["X-Repro-Cache"]) == (200, "hit")
            gate.release.set()
            await blocked

        run(main())

    def test_request_timeout_gives_504_and_recycles_pool(self):
        async def main():
            gate = _Gate()
            service = _stub_service(gate, request_timeout=0.2)
            status, _, payload = await service.dispatch(
                "POST", "/stub", json.dumps({"v": 1}).encode()
            )
            assert status == 504
            assert b"timeout" in payload
            assert service.metrics.counter("timeouts") == 1
            gate.release.set()  # unblock the abandoned worker thread
            # The recycled pool serves the next request normally.
            gate2 = _Gate()
            gate2.release.set()
            service._endpoints["/stub"] = Endpoint(
                "/stub", "stub", lambda p: {"v": p.get("v", 0)}, gate2
            )
            status, _, _ = await service.dispatch(
                "POST", "/stub", json.dumps({"v": 2}).encode()
            )
            assert status == 200

        run(main())

    def test_compute_error_maps_to_500_and_server_survives(self):
        async def main():
            def explode(request):
                raise RuntimeError("kernel fault")

            endpoint = Endpoint("/bad", "bad", lambda p: {}, explode)
            service = AnalysisService(
                ServiceConfig(port=0),
                endpoints={"/bad": endpoint},
                executor_factory=lambda: ThreadPoolExecutor(max_workers=1),
            )
            status, _, payload = await service.dispatch("POST", "/bad", b"{}")
            assert status == 500
            assert b"kernel fault" in payload
            status, _, _ = await service.dispatch("GET", "/healthz")
            assert status == 200

        run(main())


class TestHttpLayer:
    @staticmethod
    async def _raw_request(host, port, raw: bytes) -> bytes:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(raw)
        await writer.drain()
        response = await reader.read()
        writer.close()
        await writer.wait_closed()
        return response

    @staticmethod
    async def _request(host, port, method, path, body=b""):
        raw = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode() + body
        response = await TestHttpLayer._raw_request(host, port, raw)
        head, _, payload = response.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        headers = {}
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, payload

    def test_socket_roundtrip_errors_and_health(self):
        async def main():
            gate = _Gate()
            gate.release.set()
            service = _stub_service(gate)
            await service.start()
            host, port = service.host, service.port
            try:
                status, _, payload = await self._request(host, port, "GET", "/healthz")
                assert status == 200 and b'"status":"ok"' in payload

                status, _, _ = await self._request(host, port, "GET", "/nope")
                assert status == 404

                status, _, _ = await self._request(host, port, "DELETE", "/stub")
                assert status == 405

                status, _, payload = await self._request(
                    host, port, "POST", "/stub", b"not json"
                )
                assert status == 400 and b"not valid JSON" in payload

                status, headers, _ = await self._request(
                    host, port, "POST", "/stub", json.dumps({"v": 5}).encode()
                )
                assert status == 200 and headers["x-repro-cache"] == "miss"

                status, _, payload = await self._request(host, port, "GET", "/metrics")
                metrics = json.loads(payload)
                assert metrics["counters"]["computations"] == 1
                assert "response_cache" in metrics
            finally:
                await service.stop()

        run(main())

    def test_oversized_body_rejected(self):
        async def main():
            gate = _Gate()
            gate.release.set()
            service = _stub_service(gate)
            service.config.max_body_bytes = 64
            await service.start()
            try:
                status, _, payload = await self._request(
                    service.host, service.port, "POST", "/stub", b"x" * 100
                )
                assert status == 413
            finally:
                await service.stop()

        run(main())

    def test_malformed_request_line_rejected(self):
        async def main():
            gate = _Gate()
            gate.release.set()
            service = _stub_service(gate)
            await service.start()
            try:
                response = await self._raw_request(
                    service.host, service.port, b"garbage\r\n\r\n"
                )
                assert b"400" in response.split(b"\r\n", 1)[0]
            finally:
                await service.stop()

        run(main())


class TestRealEndpoints:
    def _service(self, **config_kwargs):
        return AnalysisService(
            ServiceConfig(port=0, **config_kwargs),
            executor_factory=lambda: ThreadPoolExecutor(max_workers=1),
        )

    def test_analyze_matches_direct_analysis(self):
        from repro.core.markov_spatial import MarkovSpatialAnalysis
        from repro.core.scenario import Scenario

        async def main():
            service = self._service()
            body = json.dumps({"scenario": SCENARIO}).encode()
            status, _, payload = await service.dispatch("POST", "/analyze", body)
            assert status == 200
            result = json.loads(payload)
            expected = MarkovSpatialAnalysis(
                Scenario.from_dict(SCENARIO), 3
            ).detection_probability()
            assert result["detection_probability"] == pytest.approx(expected)

        run(main())

    def test_analyze_rejects_invalid_payloads(self):
        async def main():
            service = self._service()
            cases = [
                b"[]",  # not an object
                json.dumps({"scenario": {"num_sensors": 3}}).encode(),  # missing
                json.dumps({"scenario": SCENARIO, "bogus": 1}).encode(),
                json.dumps(
                    {"scenario": SCENARIO, "body_truncation": 0}
                ).encode(),
                json.dumps(
                    {"scenario": dict(SCENARIO, window=2)}
                ).encode(),  # window <= ms
            ]
            for body in cases:
                status, _, _ = await service.dispatch("POST", "/analyze", body)
                assert status == 400, body

        run(main())

    def test_simulate_matches_direct_run_and_caps_trials(self):
        from repro.core.scenario import Scenario
        from repro.simulation.runner import MonteCarloSimulator

        async def main():
            service = self._service()
            body = json.dumps(
                {"scenario": SCENARIO, "trials": 300, "seed": 9}
            ).encode()
            status, _, payload = await service.dispatch("POST", "/simulate", body)
            assert status == 200
            result = json.loads(payload)
            direct = MonteCarloSimulator(
                Scenario.from_dict(SCENARIO), trials=300, seed=9
            ).run()
            assert result["detection_probability"] == pytest.approx(
                direct.detection_probability
            )
            status, _, payload = await service.dispatch(
                "POST",
                "/simulate",
                json.dumps({"scenario": SCENARIO, "trials": 10**9}).encode(),
            )
            assert status == 400
            assert b"trials" in payload

        run(main())

    def test_sweep_rows_cover_requested_values(self):
        async def main():
            service = self._service()
            body = json.dumps(
                {
                    "scenario": SCENARIO,
                    "parameter": "threshold",
                    "values": [1, 3, 5],
                }
            ).encode()
            status, _, payload = await service.dispatch("POST", "/sweep", body)
            assert status == 200
            result = json.loads(payload)
            assert [row["threshold"] for row in result["rows"]] == [1, 3, 5]
            probabilities = [
                row["detection_probability"] for row in result["rows"]
            ]
            assert probabilities == sorted(probabilities, reverse=True)

        run(main())

    def test_batched_sweep_axis_matches_scalar_analysis(self):
        """``num_sensors`` sweeps take the one-grid-call batched path in
        the handler; each row must still match the scalar engine."""
        from repro.core.markov_spatial import MarkovSpatialAnalysis
        from repro.core.scenario import Scenario

        async def main():
            service = self._service()
            counts = [60, 120, 240]
            body = json.dumps(
                {
                    "scenario": SCENARIO,
                    "parameter": "num_sensors",
                    "values": counts,
                }
            ).encode()
            status, _, payload = await service.dispatch("POST", "/sweep", body)
            assert status == 200
            rows = json.loads(payload)["rows"]
            assert [row["num_sensors"] for row in rows] == counts
            for row in rows:
                scenario = Scenario.from_dict(
                    {**SCENARIO, "num_sensors": row["num_sensors"]}
                )
                reference = MarkovSpatialAnalysis(
                    scenario, 3
                ).detection_probability()
                assert row["detection_probability"] == pytest.approx(
                    reference, abs=1e-12
                )

        run(main())

    def test_equivalent_payload_spellings_share_a_cache_line(self):
        async def main():
            service = self._service()
            spelled = json.dumps(
                {"scenario": SCENARIO, "body_truncation": 3, "substeps": 1}
            ).encode()
            bare = json.dumps(
                {"scenario": dict(reversed(list(SCENARIO.items())))}
            ).encode()
            status, headers, cold = await service.dispatch(
                "POST", "/analyze", spelled
            )
            assert (status, headers["X-Repro-Cache"]) == (200, "miss")
            status, headers, warm = await service.dispatch(
                "POST", "/analyze", bare
            )
            assert (status, headers["X-Repro-Cache"]) == (200, "hit")
            assert cold == warm

        run(main())


class TestSimulateSweep:
    """The /simulate ``sweep`` sub-object: one fused pass per axis."""

    def _service(self, **config_kwargs):
        return AnalysisService(
            ServiceConfig(port=0, **config_kwargs),
            executor_factory=lambda: ThreadPoolExecutor(max_workers=1),
        )

    def test_canonical_form_always_carries_sweep_key(self):
        from repro.service.handlers import canonicalize_simulate

        plain = canonicalize_simulate({"scenario": SCENARIO, "trials": 10})
        assert plain["sweep"] is None
        swept = canonicalize_simulate(
            {
                "scenario": SCENARIO,
                "trials": 10,
                "sweep": {"parameter": "threshold", "values": [1, 3.0]},
            }
        )
        assert swept["sweep"] == {"parameter": "threshold", "values": [1, 3]}

    def test_sweep_rows_match_fused_engine(self):
        from repro.core.scenario import Scenario
        from repro.simulation.fused import FusedMonteCarloEngine

        async def main():
            service = self._service()
            body = json.dumps(
                {
                    "scenario": SCENARIO,
                    "trials": 200,
                    "seed": 9,
                    "sweep": {
                        "parameter": "num_sensors",
                        "values": [60, 240],
                    },
                }
            ).encode()
            status, _, payload = await service.dispatch(
                "POST", "/simulate", body
            )
            assert status == 200
            result = json.loads(payload)
            assert result["parameter"] == "num_sensors"
            assert [row["num_sensors"] for row in result["rows"]] == [60, 240]
            direct = FusedMonteCarloEngine(
                Scenario.from_dict(SCENARIO),
                num_sensors=[60, 240],
                thresholds=[SCENARIO["threshold"]],
                trials=200,
                seed=9,
            ).run()
            detections = direct.detections_grid()[:, 0]
            for row, expected in zip(result["rows"], detections):
                assert row["detections"] == int(expected)
                assert row["detection_probability"] == pytest.approx(
                    expected / 200
                )
                low, high = row["confidence_interval"]
                assert low <= row["detection_probability"] <= high

        run(main())

    def test_sweep_validation_rejections(self):
        async def main():
            service = self._service()

            async def status_of(sweep):
                body = json.dumps(
                    {"scenario": SCENARIO, "trials": 10, "sweep": sweep}
                ).encode()
                status, _, payload = await service.dispatch(
                    "POST", "/simulate", body
                )
                return status, payload

            for sweep, fragment in [
                ({"parameter": "detect_prob", "values": [0.5]}, b"parameter"),
                ({"parameter": "threshold", "values": []}, b"non-empty"),
                ({"parameter": "threshold", "values": [1.5]}, b"integers"),
                ({"parameter": "num_sensors", "values": [0]}, b"invalid"),
                ({"parameter": "threshold", "values": [1], "x": 1}, b"x"),
                (
                    {
                        "parameter": "threshold",
                        "values": list(range(1, 300)),
                    },
                    b"points",
                ),
            ]:
                status, payload = await status_of(sweep)
                assert status == 400, sweep
                assert fragment in payload, (sweep, payload)

        run(main())


class TestFleetServing:
    """Service-level behavior of the supervised replica fleet."""

    @staticmethod
    def _conserved(service, total):
        """The request-conservation invariant under faults."""
        served = (
            service.metrics.counter("computations")
            + service.metrics.counter("coalesced")
            + service.metrics.counter("cache_served")
            + service.metrics.counter("degraded")
        )
        return served == total

    def test_mid_flight_eviction_reroutes_instead_of_leaking(self):
        """Regression: a replica evicted mid-flight must not strand its
        in-flight requests — they re-route with the remaining budget."""

        async def main():
            gate = _Gate()
            service = _stub_service(gate, replicas=2)
            await service.supervisor.start()
            key = request_fingerprint("/stub", {"v": 1})
            owner = service.supervisor._router.route(key)
            task = asyncio.ensure_future(
                service.dispatch("POST", "/stub", json.dumps({"v": 1}).encode())
            )
            victim = service.supervisor.replica(owner)
            await _settle(lambda: victim.inflight > 0)
            service.supervisor._evict(victim, reason="test")
            # The re-routed attempt is the gate's second call; release
            # only after it has started so the first attempt provably
            # died to the eviction, not to a fast completion.
            await _settle(lambda: gate.calls == 2)
            gate.release.set()
            status, headers, payload = await task
            assert status == 200
            assert headers["X-Repro-Cache"] == "miss"
            assert "X-Repro-Degraded" not in headers
            assert json.loads(payload)["request"] == {"v": 1}
            fleet = service.supervisor.metrics
            assert fleet.counter("reroutes") == 1
            assert fleet.counter("evictions") == 1
            assert service.metrics.counter("computations") == 1
            assert self._conserved(service, 1)
            await service.stop()

        run(main())

    def test_degraded_stale_cache_serving(self):
        """With no healthy replica, an expired cache entry is re-served
        flagged ``degraded`` instead of failing the request."""

        async def main():
            gate = _Gate()
            gate.release.set()
            service = _stub_service(
                gate, replicas=1, cache_ttl=0.05, route_wait=0.05
            )
            body = json.dumps({"v": 1}).encode()
            status, _, fresh = await service.dispatch("POST", "/stub", body)
            assert status == 200
            # Kill routability without triggering a supervised restart.
            service.supervisor.replica("r0").evict()
            await asyncio.sleep(0.1)  # let the cache entry expire
            status, headers, payload = await service.dispatch(
                "POST", "/stub", body
            )
            assert status == 200
            assert headers["X-Repro-Degraded"] == "stale"
            degraded = json.loads(payload)
            assert degraded["degraded"] is True
            pristine = json.loads(fresh)
            pristine.pop("degraded", None)
            degraded.pop("degraded")
            assert degraded == pristine, "stale body matches the original"
            assert service.metrics.counter("degraded") == 1
            assert service.metrics.counter("degraded_stale") == 1
            assert self._conserved(service, 2)
            # Degraded bodies are never cached: the flag would otherwise
            # shadow the real answer after the fleet recovers.
            found, _ = service.response_cache.lookup(
                request_fingerprint("/stub", {"v": 1})
            )
            assert not found
            await service.stop()

        run(main())

    def test_degraded_approximation_when_cache_is_cold(self):
        async def main():
            gate = _Gate()
            endpoint = Endpoint(
                "/stub",
                "stub",
                canonicalize=lambda p: {"v": p.get("v", 0)},
                compute=gate,
                approximate=lambda canonical: {"estimate": canonical["v"] + 1},
            )
            config = ServiceConfig(port=0, route_wait=0.05)
            service = AnalysisService(
                config,
                endpoints={"/stub": endpoint},
                executor_factory=lambda: ThreadPoolExecutor(max_workers=1),
            )
            await service.supervisor.start()
            service.supervisor.replica("r0").evict()
            status, headers, payload = await service.dispatch(
                "POST", "/stub", json.dumps({"v": 4}).encode()
            )
            assert status == 200
            assert headers["X-Repro-Degraded"] == "approximation"
            result = json.loads(payload)
            assert result == {"degraded": True, "estimate": 5}
            assert service.metrics.counter("degraded_approximations") == 1
            assert self._conserved(service, 1)
            await service.stop()

        run(main())

    def test_unserved_degradation_returns_503_with_retry_after(self):
        async def main():
            gate = _Gate()
            service = _stub_service(gate, replicas=1, route_wait=0.05)
            await service.supervisor.start()
            service.supervisor.replica("r0").evict()
            status, headers, payload = await service.dispatch(
                "POST", "/stub", json.dumps({"v": 1}).encode()
            )
            assert status == 503
            assert headers["Retry-After"] in {"1", "2", "3"}
            assert b"no healthy compute replica" in payload
            assert service.metrics.counter("unserved") == 1
            await service.stop()

        run(main())

    def test_readiness_tracks_healthy_replica_count(self):
        async def main():
            gate = _Gate()
            service = _stub_service(gate, replicas=2)
            await service.supervisor.start()
            status, _, payload = await service.dispatch("GET", "/readyz")
            ready = json.loads(payload)
            assert (status, ready["status"]) == (200, "ready")
            assert ready["healthy_replicas"] == 2
            # Liveness stays green while readiness goes red.
            for replica_id in service.supervisor.replica_ids():
                service.supervisor.replica(replica_id).evict()
            status, headers, payload = await service.dispatch("GET", "/readyz")
            unready = json.loads(payload)
            assert (status, unready["status"]) == (503, "unready")
            assert headers["Retry-After"] in {"1", "2", "3"}
            assert unready["healthy_replicas"] == 0
            status, _, _ = await service.dispatch("GET", "/healthz")
            assert status == 200
            await service.stop()

        run(main())

    def test_metrics_exposes_fleet_snapshot(self):
        async def main():
            gate = _Gate()
            gate.release.set()
            service = _stub_service(gate, replicas=2)
            await service.dispatch(
                "POST", "/stub", json.dumps({"v": 1}).encode()
            )
            _, _, payload = await service.dispatch("GET", "/metrics")
            fleet = json.loads(payload)["fleet"]
            assert set(fleet["replicas"]) == {"r0", "r1"}
            assert fleet["healthy_replicas"] == 2
            await service.stop()

        run(main())
