"""Unit tests for the chaos-injection harness (actions, scripts, runs)."""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.chaos import (
    ChaosAction,
    ChaosHarness,
    ChaosScript,
    KINDS,
    flap,
    hang,
    kill,
    slow,
)
from repro.service import FleetConfig, ReplicaSupervisor


def run(coro):
    return asyncio.run(coro)


def _thread_pool():
    return ThreadPoolExecutor(max_workers=1)


def _fast_config(**overrides) -> FleetConfig:
    defaults = dict(
        replicas=2,
        heartbeat_interval=0.05,
        probe_timeout=0.5,
        warmup_timeout=5.0,
        route_wait=0.5,
        restart_backoff_base=0.01,
        restart_backoff_cap=0.05,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestChaosAction:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ChaosAction(at=0.0, kind="explode")

    def test_rejects_negative_offset_and_duration(self):
        with pytest.raises(ValueError):
            ChaosAction(at=-1.0, kind="kill")
        with pytest.raises(ValueError):
            ChaosAction(at=0.0, kind="hang", duration=-2.0)

    def test_fault_counts_per_kind(self):
        assert kill(0.0).fault_count == 1
        assert hang(0.0, 1.0).fault_count == 1
        assert slow(0.0, 1.0).fault_count == 0
        assert flap(0.0, 1.0).fault_count == 2

    def test_builders_cover_every_kind(self):
        built = {
            kill(0.0).kind,
            hang(0.0, 1.0).kind,
            slow(0.0, 1.0).kind,
            flap(0.0, 1.0).kind,
        }
        assert built == set(KINDS)


class TestChaosScript:
    def test_actions_are_replayed_in_offset_order(self):
        script = ChaosScript(actions=(kill(2.0), hang(0.5, 1.0), kill(1.0)))
        assert [a.at for a in script.actions] == [0.5, 1.0, 2.0]

    def test_fault_count_totals_the_actions(self):
        script = ChaosScript(
            actions=(kill(0.0), hang(0.1, 1.0), slow(0.2, 1.0), flap(0.3, 1.0))
        )
        assert script.fault_count() == 4

    def test_to_dict_round_trips_the_schedule(self):
        script = ChaosScript(actions=(kill(0.5, replica="r1"),), seed=9)
        payload = script.to_dict()
        assert payload["seed"] == 9
        assert payload["fault_count"] == 1
        assert payload["actions"] == [
            {"at": 0.5, "kind": "kill", "replica": "r1", "duration": 0.0}
        ]


class TestChaosHarness:
    def test_kill_script_is_detected_and_repaired(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            try:
                script = ChaosScript(
                    actions=(kill(0.0, replica="r0"), kill(0.05, replica="r1"))
                )
                report = await ChaosHarness(supervisor, script).run()
                assert report.fault_count == 2
                assert [entry["kind"] for entry in report.injected] == [
                    "kill",
                    "kill",
                ]
                assert report.counters["kills"] == 2
                assert report.counters["injected"] == 2
                deadline = time.monotonic() + 10.0
                while (
                    supervisor.metrics.counter("restarts") < 2
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert supervisor.metrics.counter("evictions") == 2
                assert supervisor.metrics.counter("restarts") == 2
                assert supervisor.healthy_count() == 2
            finally:
                await supervisor.stop()

        run(main())

    def test_slow_action_wedges_without_eviction(self):
        async def main():
            supervisor = ReplicaSupervisor(
                _thread_pool,
                # Probe timeout comfortably above the wedge: a slow
                # replica answers late but answers, so no eviction.
                _fast_config(probe_timeout=5.0, heartbeat_interval=0.05),
            )
            await supervisor.start()
            try:
                script = ChaosScript(actions=(slow(0.0, 0.2, replica="r0"),))
                report = await ChaosHarness(supervisor, script).run()
                assert report.fault_count == 0
                await asyncio.sleep(0.5)
                assert supervisor.metrics.counter("evictions") == 0
            finally:
                await supervisor.stop()

        run(main())

    def test_targetless_actions_draw_from_the_script_seed(self):
        async def main():
            supervisor = ReplicaSupervisor(
                _thread_pool, _fast_config(replicas=3)
            )
            await supervisor.start()
            try:
                script = ChaosScript(actions=(kill(0.0), kill(0.02)), seed=11)
                report = await ChaosHarness(supervisor, script).run()
                return [entry["replica"] for entry in report.injected]
            finally:
                await supervisor.stop()

        first = run(main())
        second = run(main())
        assert first == second, "seeded target draws must be reproducible"

    def test_report_serializes_for_artifacts(self):
        async def main():
            supervisor = ReplicaSupervisor(_thread_pool, _fast_config())
            await supervisor.start()
            try:
                script = ChaosScript(actions=(kill(0.0, replica="r0"),))
                report = await ChaosHarness(supervisor, script).run()
                payload = report.to_dict()
                assert payload["script"]["fault_count"] == 1
                assert payload["counters"]["kills"] == 1
                assert payload["duration_seconds"] >= 0.0
                assert len(payload["injected"]) == 1
            finally:
                await supervisor.stop()

        run(main())
