"""Unit tests for repro.network.routing."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.network.graph import build_connectivity_graph
from repro.network.routing import bfs_path, greedy_geographic_path


@pytest.fixture
def line_graph():
    # Five nodes in a row, each reaching only its neighbours.
    positions = np.array([[float(i * 10), 0.0] for i in range(5)])
    return build_connectivity_graph(positions, 11.0)


class TestBfsPath:
    def test_line_route(self, line_graph):
        assert bfs_path(line_graph, 0, 4) == [0, 1, 2, 3, 4]

    def test_same_node(self, line_graph):
        assert bfs_path(line_graph, 2, 2) == [2]

    def test_disconnected_raises(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0]])
        graph = build_connectivity_graph(positions, 5.0)
        with pytest.raises(RoutingError):
            bfs_path(graph, 0, 1)

    def test_missing_node_raises(self, line_graph):
        with pytest.raises(RoutingError):
            bfs_path(line_graph, 0, 99)


class TestGreedyGeographicPath:
    def test_line_route(self, line_graph):
        assert greedy_geographic_path(line_graph, 0, 4) == [0, 1, 2, 3, 4]

    def test_same_node(self, line_graph):
        assert greedy_geographic_path(line_graph, 3, 3) == [3]

    def test_path_edges_exist(self, rng):
        positions = rng.uniform(0, 100, size=(60, 2))
        graph = build_connectivity_graph(positions, 30.0)
        import networkx as nx

        component = max(nx.connected_components(graph), key=len)
        nodes = sorted(component)
        path = greedy_geographic_path(graph, nodes[0], nodes[-1])
        assert path[0] == nodes[0] and path[-1] == nodes[-1]
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_recovers_from_local_minimum(self):
        # A "dead end" topology: greedy forwarding from 0 towards 3 walks
        # to node 1 (closest to the destination) which has no closer
        # neighbour; recovery must still find the route via 2.
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0, pos=(0.0, 0.0))
        graph.add_node(1, pos=(8.0, 0.0))  # near destination, dead end
        graph.add_node(2, pos=(0.0, 6.0))  # detour
        graph.add_node(3, pos=(10.0, 0.0))  # destination
        graph.add_edges_from([(0, 1), (0, 2), (2, 3)])
        path = greedy_geographic_path(graph, 0, 3)
        assert path[0] == 0 and path[-1] == 3
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_disconnected_raises(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0]])
        graph = build_connectivity_graph(positions, 5.0)
        with pytest.raises(RoutingError):
            greedy_geographic_path(graph, 0, 1)

    def test_missing_position_raises(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0, pos=(0.0, 0.0))
        graph.add_node(1)  # no position
        graph.add_edge(0, 1)
        with pytest.raises(RoutingError):
            greedy_geographic_path(graph, 0, 1)

    def test_greedy_hops_not_absurdly_long(self, rng):
        # Sanity check against pathological loops: the greedy+recovery path
        # is at most a few times the minimum-hop path.
        positions = rng.uniform(0, 100, size=(80, 2))
        graph = build_connectivity_graph(positions, 25.0)
        import networkx as nx

        component = sorted(max(nx.connected_components(graph), key=len))
        src, dst = component[0], component[-1]
        greedy = greedy_geographic_path(graph, src, dst)
        shortest = bfs_path(graph, src, dst)
        assert len(greedy) <= 3 * len(shortest) + 3
