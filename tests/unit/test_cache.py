"""Unit tests for repro.cache and the analysis layers wired into it."""

import numpy as np
import pytest

from repro.cache import (
    AnalysisCache,
    analysis_cache,
    cached_array,
    clear_analysis_cache,
    pmf_key,
    region_geometry_key,
)
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.core.regions import head_subareas
from repro.experiments.presets import onr_scenario
from repro.geometry.coverage import estimate_coverage_count_areas


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts (and leaves) an empty process-wide cache."""
    clear_analysis_cache()
    yield
    clear_analysis_cache()


class TestAnalysisCache:
    def test_counters(self):
        cache = AnalysisCache()
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("a", lambda: 2) == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_clear_resets_everything(self):
        cache = AnalysisCache()
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate() == 0.0

    def test_eviction_drops_oldest(self):
        cache = AnalysisCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get_or_compute(key, lambda: key)
        assert len(cache) == 2
        assert "a" not in cache
        assert "c" in cache

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            AnalysisCache(max_entries=0)

    def test_stats_snapshot(self):
        cache = AnalysisCache()
        cache.get_or_compute("a", lambda: 1)
        assert cache.stats() == {
            "entries": 1,
            "hits": 0,
            "misses": 1,
            "lookups": 1,
            "evictions": 0,
            "expirations": 0,
            "hit_rate": 0.0,
            "max_entries": None,
            "ttl": None,
            "stale_grace": None,
            "stale_hits": 0,
        }

    def test_lookups_always_equal_hits_plus_misses(self):
        cache = AnalysisCache(max_entries=2)
        for key in ("a", "b", "a", "c", "d", "b"):
            cache.get_or_compute(key, lambda: key)
            assert cache.lookups == cache.hits + cache.misses

    def test_lru_eviction_respects_recency_not_insertion(self):
        cache = AnalysisCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refreshes "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b", the LRU entry
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_ttl_expires_entries(self):
        clock = [0.0]
        cache = AnalysisCache(ttl=10.0, clock=lambda: clock[0])
        assert cache.get_or_compute("a", lambda: 1) == 1
        clock[0] = 5.0
        assert cache.get_or_compute("a", lambda: 2) == 1  # still live
        clock[0] = 20.0
        assert "a" not in cache
        assert cache.get_or_compute("a", lambda: 3) == 3  # expired: recompute
        assert cache.expirations == 1
        assert (cache.hits, cache.misses) == (1, 2)
        assert cache.lookups == 3

    def test_store_first_writer_wins(self):
        cache = AnalysisCache()
        assert cache.store("k", 1) == 1
        assert cache.store("k", 2) == 1
        found, value = cache.lookup("k")
        assert found and value == 1

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            AnalysisCache(ttl=0.0)

    def test_racing_compute_keeps_counters_consistent(self):
        # Two threads miss the same key: each charged one miss (they both
        # looked and found nothing), one value wins, lookups == hits+misses.
        import threading

        cache = AnalysisCache()
        barrier = threading.Barrier(2)
        stored = []

        def compute_slow(tag):
            def compute():
                barrier.wait(timeout=5)
                return tag

            return compute

        def worker(tag):
            stored.append(cache.get_or_compute("k", compute_slow(tag)))

        threads = [
            threading.Thread(target=worker, args=(tag,)) for tag in ("x", "y")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(stored)) == 1  # everyone saw the winning value
        assert cache.misses == 2 and cache.hits == 0
        assert cache.lookups == 2
        assert len(cache) == 1


class TestCachedArray:
    def test_returned_array_is_read_only(self):
        value = cached_array(("t", "frozen"), lambda: np.arange(3.0))
        with pytest.raises(ValueError):
            value[0] = 99.0

    def test_second_lookup_skips_compute(self):
        calls = []

        def compute():
            calls.append(1)
            return np.arange(2.0)

        cached_array(("t", "once"), compute)
        cached_array(("t", "once"), compute)
        assert len(calls) == 1


class TestCacheKeys:
    def test_region_key_ignores_rule_and_fleet(self):
        base = onr_scenario(num_sensors=120, speed=10.0)
        same = onr_scenario(num_sensors=240, speed=10.0, threshold=7)
        assert region_geometry_key(base) == region_geometry_key(same)

    def test_region_key_tracks_geometry(self):
        base = onr_scenario(num_sensors=120, speed=10.0)
        assert region_geometry_key(base) != region_geometry_key(
            onr_scenario(num_sensors=120, speed=4.0)
        )
        assert region_geometry_key(base) != region_geometry_key(
            onr_scenario(num_sensors=120, speed=10.0, sensing_range=900.0)
        )

    def test_pmf_key_tracks_occupancy_fields(self):
        base = onr_scenario(num_sensors=120, speed=10.0)
        areas = np.arange(3.0)
        key = pmf_key(base, 3, 1, areas)
        assert key == pmf_key(
            onr_scenario(num_sensors=120, speed=10.0, threshold=9), 3, 1, areas
        )
        assert key != pmf_key(
            onr_scenario(num_sensors=121, speed=10.0), 3, 1, areas
        )
        assert key != pmf_key(
            onr_scenario(num_sensors=120, speed=10.0, detect_prob=0.8),
            3,
            1,
            areas,
        )
        assert key != pmf_key(base, 4, 1, areas)
        assert key != pmf_key(base, 3, 2, areas)
        assert key != pmf_key(base, 3, 1, areas + 1.0)


class TestAnalysisLayerCaching:
    def test_region_areas_cached_across_threshold_and_fleet(self):
        head_subareas(onr_scenario(num_sensors=120, speed=10.0))
        baseline = analysis_cache().misses
        head_subareas(onr_scenario(num_sensors=240, speed=10.0, threshold=7))
        assert analysis_cache().misses == baseline
        assert analysis_cache().hits >= 1

    def test_region_areas_recomputed_for_new_geometry(self):
        head_subareas(onr_scenario(num_sensors=120, speed=10.0))
        baseline = analysis_cache().misses
        head_subareas(onr_scenario(num_sensors=120, speed=4.0))
        assert analysis_cache().misses == baseline + 1

    def test_k_sweep_computes_geometry_at_most_once(self):
        # First grid point warms the cache; the rest of the k-sweep must
        # not add a single miss (region areas, regions, and pmfs all hit).
        MarkovSpatialAnalysis(
            onr_scenario(num_sensors=120, speed=10.0, threshold=3), 3
        ).detection_probability()
        warm_misses = analysis_cache().misses
        for threshold in (5, 7, 9):
            MarkovSpatialAnalysis(
                onr_scenario(num_sensors=120, speed=10.0, threshold=threshold), 3
            ).detection_probability()
        assert analysis_cache().misses == warm_misses
        assert analysis_cache().hit_rate() > 0.5

    def test_n_sweep_reuses_regions_but_not_pmfs(self):
        MarkovSpatialAnalysis(
            onr_scenario(num_sensors=120, speed=10.0), 3
        ).detection_probability()
        warm_misses = analysis_cache().misses
        MarkovSpatialAnalysis(
            onr_scenario(num_sensors=240, speed=10.0), 3
        ).detection_probability()
        # The pmfs depend on N so they recompute; the geometry must not —
        # the second point needs strictly fewer cold computations.
        added = analysis_cache().misses - warm_misses
        assert 0 < added < warm_misses
        misses_after = analysis_cache().misses
        head_subareas(onr_scenario(num_sensors=240, speed=10.0))
        assert analysis_cache().misses == misses_after

    def test_analysis_results_unchanged_by_caching(self):
        scenario = onr_scenario(num_sensors=120, speed=10.0)
        first = MarkovSpatialAnalysis(scenario, 3).detection_probability()
        second = MarkovSpatialAnalysis(scenario, 3).detection_probability()
        assert first == pytest.approx(second, abs=0.0)

    def test_monte_carlo_area_estimates_cached_for_integer_seed(self):
        a = estimate_coverage_count_areas(1000.0, 600.0, 20, samples=5_000, rng=7)
        hits_before = analysis_cache().hits
        b = estimate_coverage_count_areas(1000.0, 600.0, 20, samples=5_000, rng=7)
        assert a == b
        assert analysis_cache().hits == hits_before + 1
        # A generator is not a reproducible key: no caching.
        misses_before = analysis_cache().misses
        estimate_coverage_count_areas(
            1000.0, 600.0, 20, samples=5_000, rng=np.random.default_rng(7)
        )
        assert analysis_cache().misses == misses_before
