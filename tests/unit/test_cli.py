"""Unit tests for the repro CLI."""

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig8"])
        assert args.experiment == "fig8"
        assert args.trials == 10_000
        assert args.seed == 20080617

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig9a", "--trials", "500", "--seed", "1", "--accuracy", "0.9"]
        )
        assert args.trials == 500
        assert args.seed == 1
        assert args.accuracy == 0.9

    def test_options_before_subcommand(self):
        args = build_parser().parse_args(
            ["--trials", "2000", "--workers", "4", "fig9a"]
        )
        assert args.experiment == "fig9a"
        assert args.trials == 2000
        assert args.workers == 4
        assert args.seed == 20080617  # untouched options keep defaults

    def test_option_after_subcommand_wins(self):
        args = build_parser().parse_args(
            ["--trials", "2000", "fig9a", "--trials", "500", "--seed", "1"]
        )
        assert args.trials == 500
        assert args.seed == 1

    def test_plot_flag_before_subcommand(self):
        args = build_parser().parse_args(["--plot", "fig8"])
        assert args.plot is True
        assert build_parser().parse_args(["fig8"]).plot is False


class TestMain:
    def test_fig8_prints_table(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "[FIG8]" in out
        assert "num_sensors" in out

    def test_truncation_experiment(self, capsys):
        assert main(["truncation"]) == 0
        out = capsys.readouterr().out
        assert "EXT-EXACT" in out

    def test_false_alarms_experiment(self, capsys):
        assert main(["false-alarms"]) == 0
        assert "EXT-FA" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        assert main(["fig8", "--json", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "fig8.json").read_text())
        assert payload["experiment_id"] == "FIG8"
        assert payload["rows"]

    def test_small_simulation_experiment(self, capsys):
        # Keep trials tiny so the test stays fast.
        assert main(["boundary", "--trials", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "EXT-BND" in out
        assert "torus" in out
