"""Unit tests for the repro CLI."""

import json

import pytest

from repro.experiments.cli import _parse_grid_axes, build_parser, main
from repro.obs import read_jsonl


class TestParseGridAxes:
    def test_explicit_values_and_int_range(self):
        grids = _parse_grid_axes(["n=10,20,30", "k=20:40:10"])
        assert grids == {"n": [10, 20, 30], "k": [20, 30, 40]}

    def test_float_range_inclusive(self):
        assert _parse_grid_axes(["rs=0:1:0.25"])["rs"] == [
            0,
            0.25,
            0.5,
            0.75,
            1.0,
        ]

    def test_large_magnitude_range_keeps_endpoint(self):
        # Regression: repeated accumulation with an absolute 1e-9
        # epsilon dropped the final point once rounding drift at this
        # magnitude exceeded the epsilon, silently changing the point
        # list (and hence the checkpoint fingerprint).
        values = _parse_grid_axes(["x=100000:100184.2:0.1"])["x"]
        assert len(values) == 1843
        assert values[-1] == pytest.approx(100184.2)
        assert values[5] == 100000 + 5 * 0.1

    def test_degenerate_range_is_single_point(self):
        assert _parse_grid_axes(["v=2:2:0.5"])["v"] == [2]

    def test_rejects_malformed(self):
        for spec in ["n", "n=", "n=1:2", "n=2:1:1", "n=1:2:0"]:
            with pytest.raises(ValueError):
                _parse_grid_axes([spec])


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig8"])
        assert args.experiment == "fig8"
        assert args.trials == 10_000
        assert args.seed == 20080617

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(
            ["fig9a", "--trials", "500", "--seed", "1", "--accuracy", "0.9"]
        )
        assert args.trials == 500
        assert args.seed == 1
        assert args.accuracy == 0.9

    def test_options_before_subcommand(self):
        args = build_parser().parse_args(
            ["--trials", "2000", "--workers", "4", "fig9a"]
        )
        assert args.experiment == "fig9a"
        assert args.trials == 2000
        assert args.workers == 4
        assert args.seed == 20080617  # untouched options keep defaults

    def test_option_after_subcommand_wins(self):
        args = build_parser().parse_args(
            ["--trials", "2000", "fig9a", "--trials", "500", "--seed", "1"]
        )
        assert args.trials == 500
        assert args.seed == 1

    def test_plot_flag_before_subcommand(self):
        args = build_parser().parse_args(["--plot", "fig8"])
        assert args.plot is True
        assert build_parser().parse_args(["fig8"]).plot is False


class TestMain:
    def test_fig8_prints_table(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "[FIG8]" in out
        assert "num_sensors" in out

    def test_truncation_experiment(self, capsys):
        assert main(["truncation"]) == 0
        out = capsys.readouterr().out
        assert "EXT-EXACT" in out

    def test_false_alarms_experiment(self, capsys):
        assert main(["false-alarms"]) == 0
        assert "EXT-FA" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        assert main(["fig8", "--json", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "fig8.json").read_text())
        assert payload["experiment_id"] == "FIG8"
        assert payload["rows"]

    def test_design_experiment(self, capsys):
        assert main(["design", "--max-sensors", "250"]) == 0
        out = capsys.readouterr().out
        assert "EXT-DESIGN" in out
        assert "joint_sensors" in out

    def test_small_simulation_experiment(self, capsys):
        # Keep trials tiny so the test stays fast.
        assert main(["boundary", "--trials", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "EXT-BND" in out
        assert "torus" in out


class TestObservability:
    def test_trace_flag_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["fig9a", "--trace", str(tmp_path / "t.jsonl"), "--profile"]
        )
        assert str(args.trace).endswith("t.jsonl")
        assert args.profile is True
        assert build_parser().parse_args(["fig9a"]).trace is None
        assert build_parser().parse_args(["fig9a"]).profile is False

    def test_fig9a_trace_and_profile(self, tmp_path, capsys):
        """Acceptance: `repro fig9a --trace out.jsonl --profile` emits
        parseable JSONL plus a manifest whose per-stage wall times sum to
        (within tolerance) the instrumented run's wall clock."""
        trace = tmp_path / "out.jsonl"
        assert (
            main(
                [
                    "fig9a",
                    "--trials",
                    "50",
                    "--seed",
                    "3",
                    "--trace",
                    str(trace),
                    "--profile",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "[FIG9A]" in captured.out
        assert "== repro profile ==" in captured.err
        assert "experiment:fig9a" in captured.err

        records = read_jsonl(trace)  # every line parses as JSON
        assert records[-1]["type"] == "manifest"
        manifest = records[-1]["manifest"]
        assert manifest == json.loads(
            (tmp_path / "out.jsonl.manifest.json").read_text()
        )
        # The experiment span is the run's single stage: its wall time
        # accounts for (almost) all of the measured wall clock.
        stage_wall = sum(s["wall"] for s in manifest["stages"].values())
        assert stage_wall <= manifest["wall_time"]
        assert stage_wall >= 0.95 * manifest["wall_time"]
        # Trial accounting reached the manifest through the live run.
        assert manifest["counters"]["sim.trials"] > 0
        assert manifest["run"]["command"] == "fig9a"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert "experiment:fig9a" in span_names
        assert "sim.run" in span_names

    def test_profile_without_trace(self, capsys):
        assert main(["fig8", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "== repro profile ==" in err
        assert "experiment:fig8" in err

    def test_trace_written_even_when_experiment_fails(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments import cli as cli_module

        def boom(args):
            raise RuntimeError("forced failure")

        monkeypatch.setitem(cli_module._EXPERIMENTS, "fig8", boom)
        trace = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            main(["fig8", "--trace", str(trace)])
        records = read_jsonl(trace)
        assert records[-1]["type"] == "manifest"
        (span,) = [r for r in records if r["type"] == "span"]
        assert span["name"] == "experiment:fig8"
        assert span["ok"] is False


class TestBackendOption:
    def test_backend_parses_with_default(self):
        args = build_parser().parse_args(["fig8"])
        assert getattr(args, "backend", "auto") == "auto"
        args = build_parser().parse_args(
            ["--backend", "reference", "truncation"]
        )
        assert args.backend == "reference"

    def test_backend_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--backend", "blas"])

    def test_backend_option_sets_process_default(self, capsys):
        from repro.core.kernels import get_default_backend, set_default_backend

        previous = get_default_backend()
        try:
            assert main(["truncation", "--backend", "reference"]) == 0
            assert get_default_backend() == "reference"
        finally:
            set_default_backend(previous)
