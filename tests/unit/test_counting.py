"""Unit tests for repro.markov.counting."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.markov.counting import (
    convolve_pmf,
    counting_transition_matrix,
    merge_tail,
    propagate_counts,
    validate_pmf,
)


class TestValidatePmf:
    def test_valid(self):
        out = validate_pmf([0.5, 0.5])
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_substochastic_needs_flag(self):
        with pytest.raises(DistributionError):
            validate_pmf([0.4, 0.4])
        validate_pmf([0.4, 0.4], substochastic=True)

    def test_negative_rejected(self):
        with pytest.raises(DistributionError):
            validate_pmf([1.2, -0.2])

    def test_mass_above_one_rejected(self):
        with pytest.raises(DistributionError):
            validate_pmf([0.8, 0.8], substochastic=True)

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            validate_pmf([])


class TestConvolvePmf:
    def test_two_coins(self):
        out = convolve_pmf([0.5, 0.5], [0.5, 0.5])
        np.testing.assert_allclose(out, [0.25, 0.5, 0.25])

    def test_identity_element(self):
        out = convolve_pmf([1.0], [0.1, 0.9])
        np.testing.assert_allclose(out, [0.1, 0.9])

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            convolve_pmf([], [1.0])


class TestCountingTransitionMatrix:
    def test_shift_structure(self):
        matrix = counting_transition_matrix([0.7, 0.3], 3)
        expected = np.array([[0.7, 0.3, 0.0], [0.0, 0.7, 0.3], [0.0, 0.0, 1.0]])
        np.testing.assert_allclose(matrix, expected)

    def test_overflow_absorbs_in_last_state(self):
        matrix = counting_transition_matrix([0.5, 0.25, 0.25], 2)
        # From state 1, +1 and +2 both exceed -> both land in state 1.
        np.testing.assert_allclose(matrix[1], [0.0, 1.0])

    def test_overflow_dropped_when_disabled(self):
        matrix = counting_transition_matrix(
            [0.5, 0.25, 0.25], 2, absorb_overflow=False
        )
        np.testing.assert_allclose(matrix[1], [0.0, 0.5])

    def test_substochastic_pmf_allowed(self):
        matrix = counting_transition_matrix([0.5, 0.2], 4)
        assert matrix[0].sum() == pytest.approx(0.7)

    def test_invalid_states_rejected(self):
        with pytest.raises(DistributionError):
            counting_transition_matrix([1.0], 0)


class TestPropagateCounts:
    def test_matches_matrix_step(self):
        pmf = np.array([0.6, 0.3, 0.1])
        dist = np.array([0.5, 0.5, 0.0, 0.0])
        by_convolution = propagate_counts(dist, pmf)
        matrix = counting_transition_matrix(pmf, by_convolution.size)
        padded = np.zeros(by_convolution.size)
        padded[: dist.size] = dist
        by_matrix = padded @ matrix
        np.testing.assert_allclose(by_convolution, by_matrix)

    def test_grows_support(self):
        out = propagate_counts([1.0], [0.5, 0.5])
        assert out.size == 2

    def test_empty_distribution_rejected(self):
        with pytest.raises(DistributionError):
            propagate_counts([], [1.0])


class TestMergeTail:
    def test_merges_mass(self):
        out = merge_tail([0.1, 0.2, 0.3, 0.4], threshold=2)
        np.testing.assert_allclose(out, [0.1, 0.2, 0.7])

    def test_short_distribution_padded(self):
        out = merge_tail([0.9, 0.1], threshold=4)
        np.testing.assert_allclose(out, [0.9, 0.1, 0.0, 0.0, 0.0])

    def test_threshold_zero_merges_everything(self):
        out = merge_tail([0.25, 0.25, 0.5], threshold=0)
        np.testing.assert_allclose(out, [1.0])

    def test_negative_threshold_rejected(self):
        with pytest.raises(DistributionError):
            merge_tail([1.0], -1)
