"""Unit tests for repro.core.false_alarms (Section 6 future work)."""

import math

import pytest
from scipy import stats

from repro.core.false_alarms import (
    expected_hours_between_false_alarms,
    false_alarm_rate_per_period,
    minimum_safe_threshold,
    window_false_alarm_probability,
)
from repro.errors import AnalysisError


class TestWindowProbability:
    def test_matches_binomial_tail(self):
        p = window_false_alarm_probability(240, 20, 1e-3, 5)
        expected = float(stats.binom.sf(4, 4800, 1e-3))
        assert p == pytest.approx(expected)

    def test_threshold_one_complements_no_alarms(self):
        p = window_false_alarm_probability(10, 5, 0.01, 1)
        assert p == pytest.approx(1.0 - 0.99**50)

    def test_zero_false_alarm_rate(self):
        assert window_false_alarm_probability(10, 5, 0.0, 1) == 0.0

    def test_monotone_decreasing_in_threshold(self):
        values = [
            window_false_alarm_probability(240, 20, 1e-3, k) for k in (1, 3, 5, 10)
        ]
        assert values == sorted(values, reverse=True)

    def test_monotone_increasing_in_rate(self):
        values = [
            window_false_alarm_probability(240, 20, pf, 5)
            for pf in (1e-5, 1e-4, 1e-3)
        ]
        assert values == sorted(values)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            window_false_alarm_probability(0, 20, 0.1, 1)
        with pytest.raises(AnalysisError):
            window_false_alarm_probability(10, 0, 0.1, 1)
        with pytest.raises(AnalysisError):
            window_false_alarm_probability(10, 20, 1.0, 1)
        with pytest.raises(AnalysisError):
            window_false_alarm_probability(10, 20, 0.1, 0)


class TestMinimumSafeThreshold:
    def test_is_minimal(self):
        k = minimum_safe_threshold(240, 20, 1e-3, 1e-6)
        assert window_false_alarm_probability(240, 20, 1e-3, k) <= 1e-6
        assert window_false_alarm_probability(240, 20, 1e-3, k - 1) > 1e-6

    def test_grows_with_false_alarm_rate(self):
        values = [
            minimum_safe_threshold(240, 20, pf, 1e-6)
            for pf in (1e-5, 1e-4, 1e-3, 1e-2)
        ]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_clean_sensors_need_k_one(self):
        assert minimum_safe_threshold(240, 20, 0.0, 1e-6) == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(AnalysisError):
            minimum_safe_threshold(240, 20, 1e-3, 0.0)
        with pytest.raises(AnalysisError):
            minimum_safe_threshold(240, 20, 1e-3, 1.0)


class TestRates:
    def test_rate_equals_window_probability(self):
        assert false_alarm_rate_per_period(240, 20, 1e-3, 5) == pytest.approx(
            window_false_alarm_probability(240, 20, 1e-3, 5)
        )

    def test_hours_between_false_alarms(self):
        rate = false_alarm_rate_per_period(240, 20, 1e-3, 5)
        hours = expected_hours_between_false_alarms(240, 20, 1e-3, 5, 60.0)
        assert hours == pytest.approx(60.0 / rate / 3600.0)

    def test_infinite_when_rate_zero(self):
        assert math.isinf(
            expected_hours_between_false_alarms(10, 5, 0.0, 1, 60.0)
        )

    def test_invalid_period_rejected(self):
        with pytest.raises(AnalysisError):
            expected_hours_between_false_alarms(10, 5, 0.1, 1, 0.0)
