"""Unit tests for repro.simulation.runner."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.runner import MonteCarloSimulator, SimulationResult
from repro.simulation.targets import RandomWalkTarget


class TestSimulationResult:
    def test_detection_probability(self, small):
        result = SimulationResult(
            scenario=small,
            report_counts=np.array([0, 2, 3, 5, 9]),
            node_counts=np.array([0, 1, 2, 3, 4]),
        )
        # threshold is 3 -> trials with >= 3 reports: three of five.
        assert result.detections == 3
        assert result.detection_probability == pytest.approx(0.6)

    def test_detection_probability_at_custom_rule(self, small):
        result = SimulationResult(
            scenario=small,
            report_counts=np.array([0, 2, 3, 5, 9]),
            node_counts=np.array([0, 1, 2, 3, 4]),
        )
        assert result.detection_probability_at(threshold=5) == pytest.approx(0.4)
        assert result.detection_probability_at(
            threshold=3, min_nodes=3
        ) == pytest.approx(0.4)

    def test_histogram(self, small):
        result = SimulationResult(
            scenario=small,
            report_counts=np.array([0, 0, 2, 2, 2]),
            node_counts=np.zeros(5),
        )
        np.testing.assert_array_equal(
            result.report_count_histogram(), [2, 0, 3]
        )

    def test_default_false_reports_zero(self, small):
        result = SimulationResult(
            scenario=small,
            report_counts=np.array([1, 2]),
            node_counts=np.array([1, 1]),
        )
        np.testing.assert_array_equal(result.false_report_counts, [0, 0])

    def test_shape_mismatch_rejected(self, small):
        with pytest.raises(SimulationError):
            SimulationResult(
                scenario=small,
                report_counts=np.array([1, 2]),
                node_counts=np.array([1]),
            )

    def test_empty_rejected(self, small):
        with pytest.raises(SimulationError):
            SimulationResult(
                scenario=small,
                report_counts=np.array([]),
                node_counts=np.array([]),
            )

    def test_confidence_interval_brackets_estimate(self, small):
        result = SimulationResult(
            scenario=small,
            report_counts=np.array([5] * 30 + [0] * 70),
            node_counts=np.zeros(100),
        )
        low, high = result.confidence_interval()
        assert low < 0.3 < high
        assert result.standard_error() > 0.0


class TestMonteCarloSimulator:
    def test_seed_reproducibility(self, small):
        a = MonteCarloSimulator(small, trials=300, seed=5).run()
        b = MonteCarloSimulator(small, trials=300, seed=5).run()
        np.testing.assert_array_equal(a.report_counts, b.report_counts)
        np.testing.assert_array_equal(a.node_counts, b.node_counts)

    def test_different_seeds_differ(self, small):
        a = MonteCarloSimulator(small, trials=300, seed=1).run()
        b = MonteCarloSimulator(small, trials=300, seed=2).run()
        assert not np.array_equal(a.report_counts, b.report_counts)

    def test_batching_invariance(self, small):
        a = MonteCarloSimulator(small, trials=250, seed=9, batch_size=250).run()
        b = MonteCarloSimulator(small, trials=250, seed=9, batch_size=64).run()
        # Different batching consumes the RNG differently, so compare
        # statistics rather than exact trial streams.
        assert a.detection_probability == pytest.approx(
            b.detection_probability, abs=0.1
        )

    def test_node_counts_bounded_by_reports(self, small):
        result = MonteCarloSimulator(small, trials=500, seed=11).run()
        assert np.all(result.node_counts <= result.report_counts)
        assert np.all((result.report_counts == 0) == (result.node_counts == 0))

    def test_reports_bounded_by_max_coverage(self, small):
        result = MonteCarloSimulator(small, trials=500, seed=11).run()
        bound = small.num_sensors * (small.ms + 1)
        assert result.report_counts.max() <= bound

    def test_custom_target_model(self, small):
        result = MonteCarloSimulator(
            small, trials=200, seed=3, target=RandomWalkTarget(small.target_speed)
        ).run()
        assert result.trials == 200

    def test_boundary_modes_run(self, small):
        for boundary in ("torus", "clip", "interior"):
            result = MonteCarloSimulator(
                small, trials=100, seed=4, boundary=boundary
            ).run()
            assert result.trials == 100

    def test_interior_mode_rejects_overlong_tracks(self, small):
        # Track length (12 periods * 150 m = 1800 m) exceeds the 1200 m
        # field diagonal (~1697 m): the rejection sampler can never fit it
        # and must fail loudly.
        scenario = small.replace(
            field=small.field.__class__(1200.0, 1200.0), num_sensors=5
        )
        simulator = MonteCarloSimulator(
            scenario, trials=10, seed=1, boundary="interior"
        )
        with pytest.raises(SimulationError):
            simulator.run()

    def test_false_alarms_inflate_reports(self, small):
        clean = MonteCarloSimulator(small, trials=400, seed=8).run()
        noisy = MonteCarloSimulator(
            small, trials=400, seed=8, false_alarm_prob=0.05
        ).run()
        assert noisy.report_counts.sum() > clean.report_counts.sum()
        assert noisy.false_report_counts.sum() > 0

    def test_detection_periods_consistent_with_reports(self, small):
        result = MonteCarloSimulator(small, trials=500, seed=19).run()
        detected = result.report_counts >= small.threshold
        assert np.all((result.detection_periods > 0) == detected)
        assert result.detection_periods.max() <= small.window

    def test_latency_cdf_monotone_ends_at_detection_probability(self, small):
        result = MonteCarloSimulator(small, trials=500, seed=20).run()
        cdf = result.latency_cdf()
        assert cdf[0] == 0.0
        assert np.all(np.diff(cdf) >= 0.0)
        assert cdf[-1] == pytest.approx(result.detection_probability)

    def test_mean_latency_within_window(self, small):
        result = MonteCarloSimulator(small, trials=500, seed=21).run()
        assert 1.0 <= result.mean_latency() <= small.window

    def test_latency_cdf_matches_naive_loop(self, small):
        result = MonteCarloSimulator(small, trials=500, seed=22).run()
        periods = result.detection_periods
        naive = np.array(
            [
                np.sum((periods > 0) & (periods <= m)) / result.trials
                for m in range(small.window + 1)
            ]
        )
        np.testing.assert_allclose(result.latency_cdf(), naive)

    def test_latency_untracked_raises(self, small):
        result = SimulationResult(
            scenario=small,
            report_counts=np.array([1, 5]),
            node_counts=np.array([1, 3]),
        )
        with pytest.raises(SimulationError):
            result.latency_cdf()
        with pytest.raises(SimulationError):
            result.mean_latency()

    def test_custom_deployment_strategy(self, small):
        from repro.deployment.strategies import deploy_grid

        def deploy(field, count, rng):
            return deploy_grid(field, count, jitter=100.0, rng=rng)

        result = MonteCarloSimulator(
            small, trials=200, seed=6, deployment=deploy
        ).run()
        assert result.trials == 200

    def test_bad_deployment_shape_rejected(self, small):
        simulator = MonteCarloSimulator(
            small, trials=10, seed=1, deployment=lambda f, n, r: np.zeros((3, 2))
        )
        with pytest.raises(SimulationError):
            simulator.run()

    def test_batched_deployment_strategy(self, small):
        import functools

        from repro.deployment.strategies import deploy_grid_batched

        result = MonteCarloSimulator(
            small,
            trials=200,
            seed=6,
            deployment=functools.partial(deploy_grid_batched, jitter=100.0),
        ).run()
        assert result.trials == 200

    def test_batched_deployment_draws_one_block(self, small):
        # A batched strategy sees one call per simulator batch, not one
        # per trial.
        calls = []

        def deploy(field, num_sensors, rng, batch):
            calls.append(batch)
            return rng.uniform(
                (0.0, 0.0),
                (field.width, field.height),
                size=(batch, num_sensors, 2),
            )

        MonteCarloSimulator(
            small, trials=250, seed=7, batch_size=100, deployment=deploy
        ).run()
        assert calls == [100, 100, 50]

    def test_batched_detection_unwraps_partials_and_bound_methods(self):
        import functools

        from repro.deployment.strategies import deploy_grid_batched
        from repro.simulation.runner import _deployment_is_batched

        class Strategy:
            def place(self, field, num_sensors, rng, batch):
                return np.zeros((batch, num_sensors, 2))

            def legacy(self, field, num_sensors, rng):
                return np.zeros((num_sensors, 2))

        strategy = Strategy()
        assert _deployment_is_batched(deploy_grid_batched)
        assert _deployment_is_batched(functools.partial(deploy_grid_batched))
        assert _deployment_is_batched(
            functools.partial(deploy_grid_batched, jitter=1.0)
        )
        # A partial pre-binding `batch` by keyword still wraps a batched
        # deployment; the runner's keyword call overrides the binding
        # (the old positional call crashed with "multiple values").
        assert _deployment_is_batched(
            functools.partial(deploy_grid_batched, batch=8)
        )
        assert _deployment_is_batched(strategy.place)
        assert _deployment_is_batched(functools.partial(Strategy.place, strategy))
        assert _deployment_is_batched(
            functools.partial(functools.partial(Strategy.place), strategy)
        )
        assert not _deployment_is_batched(strategy.legacy)
        assert not _deployment_is_batched(
            functools.partial(Strategy.legacy, strategy)
        )
        assert not _deployment_is_batched(lambda f, n, r: None)
        assert not _deployment_is_batched(len)

    def test_keyword_only_batch_parameter_supported(self, small):
        def deploy(field, num_sensors, rng, *, batch):
            return rng.uniform(
                (0.0, 0.0),
                (field.width, field.height),
                size=(batch, num_sensors, 2),
            )

        result = MonteCarloSimulator(
            small, trials=50, seed=3, deployment=deploy
        ).run()
        assert result.trials == 50

    def test_partial_with_prebound_batch_runs_and_matches_direct(self, small):
        # Regression: partial(batched_fn, batch=...) used to crash with
        # "got multiple values for argument 'batch'"; the runner's batch
        # must override the pre-bound keyword so results are identical to
        # using the bare callable.
        import functools

        from repro.deployment.strategies import deploy_grid_batched

        direct = MonteCarloSimulator(
            small, trials=120, seed=11, deployment=deploy_grid_batched
        ).run()
        wrapped = MonteCarloSimulator(
            small,
            trials=120,
            seed=11,
            deployment=functools.partial(deploy_grid_batched, batch=7),
        ).run()
        np.testing.assert_array_equal(
            direct.report_counts, wrapped.report_counts
        )

    def test_bound_method_deployment_runs_batched(self, small):
        calls = []

        class Strategy:
            def place(self, field, num_sensors, rng, batch):
                calls.append(batch)
                return rng.uniform(
                    (0.0, 0.0),
                    (field.width, field.height),
                    size=(batch, num_sensors, 2),
                )

        MonteCarloSimulator(
            small,
            trials=250,
            seed=7,
            batch_size=100,
            deployment=Strategy().place,
        ).run()
        assert calls == [100, 100, 50]

    def test_bad_batched_deployment_shape_rejected(self, small):
        def deploy(field, num_sensors, rng, batch):
            return np.zeros((batch, 3, 2))

        simulator = MonteCarloSimulator(small, trials=10, seed=1, deployment=deploy)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_invalid_configuration_rejected(self, small):
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, trials=0)
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, batch_size=0)
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, boundary="reflect")
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, false_alarm_prob=1.0)


class TestSlidingWindow:
    def test_period_counts_collected_on_request(self, small):
        result = MonteCarloSimulator(
            small, trials=100, seed=30, collect_period_counts=True
        ).run()
        assert result.period_counts.shape == (100, small.window)
        np.testing.assert_array_equal(
            result.period_counts.sum(axis=1), result.report_counts
        )

    def test_period_counts_absent_by_default(self, small):
        result = MonteCarloSimulator(small, trials=50, seed=31).run()
        assert result.period_counts is None
        with pytest.raises(SimulationError):
            result.sliding_window_detection_probability(window=small.window)

    def test_full_window_matches_fixed_rule(self, small):
        result = MonteCarloSimulator(
            small, trials=400, seed=32, collect_period_counts=True
        ).run()
        sliding = result.sliding_window_detection_probability(
            window=small.window
        )
        assert sliding == pytest.approx(result.detection_probability)

    def test_smaller_window_detects_no_more_with_same_threshold(self, small):
        result = MonteCarloSimulator(
            small, trials=400, seed=33, collect_period_counts=True
        ).run()
        small_window = result.sliding_window_detection_probability(
            window=max(1, small.window // 2)
        )
        full_window = result.sliding_window_detection_probability(
            window=small.window
        )
        assert small_window <= full_window

    def test_invalid_parameters_rejected(self, small):
        result = MonteCarloSimulator(
            small, trials=50, seed=34, collect_period_counts=True
        ).run()
        with pytest.raises(SimulationError):
            result.sliding_window_detection_probability(window=0)
        with pytest.raises(SimulationError):
            result.sliding_window_detection_probability(window=small.window + 1)
        with pytest.raises(SimulationError):
            result.sliding_window_detection_probability(
                window=small.window, threshold=0
            )


class TestCommunicationLoss:
    def test_generous_range_changes_nothing(self, small):
        ideal = MonteCarloSimulator(small, trials=300, seed=50).run()
        connected = MonteCarloSimulator(
            small,
            trials=300,
            seed=50,
            communication_range=100_000.0,
        ).run()
        np.testing.assert_array_equal(
            ideal.report_counts, connected.report_counts
        )

    def test_tiny_range_silences_network(self, small):
        # With a 1 m radio, no sensor reaches the base.
        result = MonteCarloSimulator(
            small, trials=200, seed=51, communication_range=1.0
        ).run()
        assert result.report_counts.sum() == 0

    def test_loss_is_one_sided(self, small):
        ideal = MonteCarloSimulator(small, trials=400, seed=52).run()
        lossy = MonteCarloSimulator(
            small, trials=400, seed=52, communication_range=1_500.0
        ).run()
        assert (
            lossy.detection_probability
            <= ideal.detection_probability + 0.05
        )

    def test_custom_base_station(self, small):
        result = MonteCarloSimulator(
            small,
            trials=100,
            seed=53,
            communication_range=2_000.0,
            base_station=(0.0, 0.0),
        ).run()
        assert result.trials == 100

    def test_invalid_range_rejected(self, small):
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, communication_range=0.0)

    def test_false_alarms_also_dropped(self, small):
        # With an unreachable base, even false reports never arrive.
        result = MonteCarloSimulator(
            small,
            trials=200,
            seed=54,
            communication_range=1.0,
            false_alarm_prob=0.05,
        ).run()
        assert result.false_report_counts.sum() == 0

    def test_generous_range_is_bitwise_identical(self, small):
        # The connectivity mask draws no randomness, so a range that
        # connects everyone must leave every per-trial array untouched.
        ideal = MonteCarloSimulator(small, trials=150, seed=55).run()
        connected = MonteCarloSimulator(
            small, trials=150, seed=55, communication_range=100_000.0
        ).run()
        for name in ("report_counts", "node_counts", "false_report_counts"):
            np.testing.assert_array_equal(
                getattr(ideal, name), getattr(connected, name)
            )

    def test_byzantine_flood_silenced_by_unreachable_base(self, small):
        # Stuck-reporting sensors still need a route: delivery loss via
        # the communication range applies to spurious reports too.
        from repro.faults import FaultModel

        result = MonteCarloSimulator(
            small,
            trials=100,
            seed=56,
            communication_range=1.0,
            faults=FaultModel(stuck_report_frac=1.0),
        ).run()
        assert result.report_counts.sum() == 0
        assert result.false_report_counts.sum() == 0


class TestProgressCallback:
    def test_progress_reports_every_batch(self, small):
        calls = []
        MonteCarloSimulator(
            small,
            trials=300,
            seed=60,
            batch_size=100,
            progress=lambda done, total: calls.append((done, total)),
        ).run()
        assert calls == [(100, 300), (200, 300), (300, 300)]

    def test_uneven_final_batch(self, small):
        calls = []
        MonteCarloSimulator(
            small,
            trials=250,
            seed=61,
            batch_size=100,
            progress=lambda done, total: calls.append(done),
        ).run()
        assert calls == [100, 200, 250]

    def test_non_callable_rejected(self, small):
        with pytest.raises(SimulationError):
            MonteCarloSimulator(small, progress="loud")


class TestSummary:
    def test_summary_is_json_serialisable(self, small):
        import json

        result = MonteCarloSimulator(small, trials=300, seed=80).run()
        payload = json.dumps(result.summary())
        data = json.loads(payload)
        assert data["trials"] == 300
        assert 0.0 <= data["detection_probability"] <= 1.0
        assert data["ci_low"] <= data["detection_probability"] <= data["ci_high"]
        assert data["scenario"]["num_sensors"] == small.num_sensors

    def test_summary_includes_latency_when_detected(self, small):
        result = MonteCarloSimulator(small, trials=400, seed=81).run()
        if result.detections > 0:
            assert "mean_latency_periods" in result.summary()

    def test_summary_round_trips_scenario(self, small):
        from repro.core.scenario import Scenario

        result = MonteCarloSimulator(small, trials=50, seed=82).run()
        restored = Scenario.from_dict(result.summary()["scenario"])
        assert restored == small
