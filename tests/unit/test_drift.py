"""Unit tests for repro.deployment.drift."""

import numpy as np
import pytest
from scipy import stats

from repro.deployment.drift import apply_drift, drift_deployment_strategy
from repro.deployment.field import SensorField
from repro.errors import DeploymentError


@pytest.fixture
def field() -> SensorField:
    return SensorField(1000.0, 500.0)


class TestApplyDrift:
    def test_zero_sigma_is_identity_copy(self, field, rng):
        positions = rng.uniform((0, 0), (1000, 500), size=(20, 2))
        drifted = apply_drift(positions, 0.0, field, rng)
        np.testing.assert_array_equal(drifted, positions)
        drifted[0, 0] = -1.0
        assert positions[0, 0] != -1.0  # copy

    def test_results_inside_field(self, field, rng):
        positions = rng.uniform((0, 0), (1000, 500), size=(200, 2))
        for boundary in ("torus", "reflect"):
            drifted = apply_drift(positions, 5_000.0, field, rng, boundary)
            assert (drifted[:, 0] >= 0).all() and (drifted[:, 0] <= 1000).all()
            assert (drifted[:, 1] >= 0).all() and (drifted[:, 1] <= 500).all()

    def test_small_drift_moves_points_slightly(self, field, rng):
        positions = np.full((50, 2), [500.0, 250.0])
        drifted = apply_drift(positions, 10.0, field, rng)
        displacement = np.linalg.norm(drifted - positions, axis=1)
        assert 0.0 < displacement.mean() < 50.0

    def test_torus_preserves_uniformity(self, field):
        """The load-bearing fact: wrapped drift keeps uniform uniform."""
        rng = np.random.default_rng(42)
        positions = rng.uniform((0, 0), (1000, 500), size=(8000, 2))
        drifted = apply_drift(positions, 3_000.0, field, rng, "torus")
        # KS test of each marginal against uniform.
        for axis, length in ((0, 1000.0), (1, 500.0)):
            statistic, p_value = stats.kstest(
                drifted[:, axis] / length, "uniform"
            )
            assert p_value > 0.01, (axis, statistic)

    def test_reflect_preserves_uniformity(self, field):
        rng = np.random.default_rng(43)
        positions = rng.uniform((0, 0), (1000, 500), size=(8000, 2))
        drifted = apply_drift(positions, 3_000.0, field, rng, "reflect")
        for axis, length in ((0, 1000.0), (1, 500.0)):
            _, p_value = stats.kstest(drifted[:, axis] / length, "uniform")
            assert p_value > 0.01, axis

    def test_empty_positions(self, field, rng):
        out = apply_drift(np.empty((0, 2)), 10.0, field, rng)
        assert out.shape == (0, 2)

    def test_invalid_inputs_rejected(self, field, rng):
        with pytest.raises(DeploymentError):
            apply_drift(np.zeros((2, 3)), 1.0, field, rng)
        with pytest.raises(DeploymentError):
            apply_drift(np.zeros((2, 2)), -1.0, field, rng)
        with pytest.raises(DeploymentError):
            apply_drift(np.zeros((2, 2)), 1.0, field, rng, boundary="absorb")


class TestDriftDeploymentStrategy:
    def test_returns_valid_deployment(self, field, rng):
        deploy = drift_deployment_strategy(100.0, missions=4)
        positions = deploy(field, 30, rng)
        assert positions.shape == (30, 2)
        assert (positions >= 0).all()

    def test_zero_missions_is_plain_uniform(self, field):
        deploy = drift_deployment_strategy(100.0, missions=0)
        a = deploy(field, 30, np.random.default_rng(5))
        b = np.random.default_rng(5).uniform((0, 0), (1000, 500), size=(30, 2))
        np.testing.assert_allclose(a, b)

    def test_negative_missions_rejected(self):
        with pytest.raises(DeploymentError):
            drift_deployment_strategy(10.0, missions=-1)

    def test_plugs_into_simulator(self, small):
        from repro.simulation.runner import MonteCarloSimulator

        result = MonteCarloSimulator(
            small,
            trials=150,
            seed=6,
            deployment=drift_deployment_strategy(500.0, missions=3),
        ).run()
        assert result.trials == 150
