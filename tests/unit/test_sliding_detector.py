"""Unit tests for the online sliding-window detector."""

import pytest

from repro.detection.group import GroupDetector
from repro.detection.reports import DetectionReport
from repro.detection.track_filter import SpeedGateTrackFilter
from repro.errors import SimulationError
from repro.geometry.shapes import Point
from repro.streaming.detector import (
    DetectionEvent,
    SlidingWindowDetector,
    event_digest,
)


def _report(node, period, x=0.0, y=0.0):
    return DetectionReport(node, period, Point(x, y))


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0, "threshold": 1},
            {"window": 3, "threshold": 0},
            {"window": 3, "threshold": 1, "min_nodes": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            SlidingWindowDetector(**kwargs)


class TestDecisions:
    def test_fires_when_k_reports_in_window(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        assert not detector.observe(1, [_report(1, 1)]).fired
        event = detector.observe(2, [_report(2, 2)])
        assert event.fired and event.new_detection
        assert detector.detection_periods == [2]

    def test_window_expiry_clears_the_decision(self):
        detector = SlidingWindowDetector(window=2, threshold=2)
        detector.observe(1, [_report(1, 1), _report(2, 1)])
        assert detector.windowed_count == 2
        # Period 3's window is {2, 3}: period 1's reports expired.
        event = detector.observe(3, [])
        assert not event.fired
        assert detector.windowed_count == 0
        assert detector.distinct_node_count == 0

    def test_new_detection_only_on_rising_edge(self):
        detector = SlidingWindowDetector(window=5, threshold=1)
        first = detector.observe(1, [_report(1, 1)])
        second = detector.observe(2, [_report(1, 2)])
        assert first.new_detection and not second.new_detection
        assert second.fired

    def test_min_nodes_requires_distinct_reporters(self):
        detector = SlidingWindowDetector(window=4, threshold=2, min_nodes=2)
        event = detector.observe(1, [_report(7, 1), _report(7, 1)])
        assert not event.fired  # two reports, one node
        event = detector.observe(2, [_report(8, 2)])
        assert event.fired
        assert event.distinct_nodes == 2

    def test_gap_periods_may_be_skipped_entirely(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        detector.observe(1, [_report(1, 1)])
        # Periods 2 and 3 never close; period 4's window is {2, 3, 4}.
        event = detector.observe(4, [_report(2, 4)])
        assert event.windowed_reports == 1
        assert not event.fired


class TestIncrementalIngest:
    def test_ingest_then_close_equals_observe(self):
        a = SlidingWindowDetector(window=3, threshold=2)
        b = SlidingWindowDetector(window=3, threshold=2)
        reports = [_report(1, 1), _report(2, 1), _report(3, 1)]
        for report in reports:
            a.ingest(report)
        event_a = a.close_period(1)
        event_b = b.observe(1, reports)
        assert event_a == event_b

    def test_ingest_for_closed_period_rejected(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        detector.observe(2, [])
        with pytest.raises(SimulationError):
            detector.ingest(_report(1, 2))

    def test_ingest_for_mismatched_open_period_rejected(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        detector.ingest(_report(1, 3))
        with pytest.raises(SimulationError):
            detector.ingest(_report(2, 4))

    def test_close_out_of_order_rejected(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        detector.observe(5, [])
        with pytest.raises(SimulationError):
            detector.close_period(5)

    def test_close_wrong_open_period_rejected(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        detector.ingest(_report(1, 2))
        with pytest.raises(SimulationError):
            detector.close_period(3)

    def test_observe_rejects_misstamped_reports(self):
        detector = SlidingWindowDetector(window=3, threshold=2)
        with pytest.raises(SimulationError):
            detector.observe(1, [_report(1, 2)])


class TestOfflineEquivalence:
    def test_matches_group_detector_on_a_dense_stream(self):
        online = SlidingWindowDetector(window=4, threshold=3, min_nodes=2)
        offline = GroupDetector(window=4, threshold=3, min_nodes=2)
        stream = [
            (1, [_report(1, 1)]),
            (2, [_report(1, 2), _report(2, 2)]),
            (3, []),
            (4, [_report(3, 4)]),
            (6, [_report(1, 6), _report(1, 6)]),
            (7, [_report(4, 7)]),
            (9, []),
        ]
        for period, reports in stream:
            event = online.observe(period, reports)
            assert event.fired == offline.observe(period, reports)
        assert online.detection_periods == offline.detection_periods

    def test_matches_group_detector_with_track_filter(self):
        gate = SpeedGateTrackFilter(
            max_speed=1.0, sensing_range=0.0, period_length=1.0
        )
        online = SlidingWindowDetector(3, 2, track_filter=gate)
        offline = GroupDetector(3, 2, track_filter=gate)
        stream = [
            (1, [_report(1, 1, 0.0, 0.0)]),
            (2, [_report(2, 2, 100.0, 100.0)]),  # infeasibly far
            (3, [_report(3, 3, 0.5, 0.5)]),
        ]
        for period, reports in stream:
            event = online.observe(period, reports)
            assert event.fired == offline.observe(period, reports)
        assert online.detection_periods == offline.detection_periods


class TestEventsAndDigests:
    def test_one_event_per_closed_period_in_order(self):
        detector = SlidingWindowDetector(window=3, threshold=1)
        for period in (1, 2, 4, 7):
            detector.observe(period, [])
        assert [e.period for e in detector.events] == [1, 2, 4, 7]
        assert detector.last_period == 7

    def test_event_to_dict_field_order_is_canonical(self):
        event = DetectionEvent(1, False, False, 0, 0, 0)
        assert list(event.to_dict()) == [
            "period",
            "fired",
            "new_detection",
            "windowed_reports",
            "distinct_nodes",
            "new_reports",
        ]

    def test_digest_depends_on_decisions(self):
        a = SlidingWindowDetector(window=3, threshold=1)
        b = SlidingWindowDetector(window=3, threshold=1)
        a.observe(1, [_report(1, 1)])
        b.observe(1, [])
        assert a.digest() != b.digest()
        assert event_digest([]) == event_digest([])

    def test_reset_forgets_everything(self):
        detector = SlidingWindowDetector(window=3, threshold=1)
        detector.observe(1, [_report(1, 1)])
        detector.reset()
        assert detector.windowed_count == 0
        assert detector.events == []
        assert detector.last_period == 0
        # A fresh period 1 is acceptable again after reset.
        assert detector.observe(1, [_report(1, 1)]).fired
