"""Unit tests for repro.simulation.stats."""

import pytest

from repro.errors import SimulationError
from repro.simulation.stats import standard_error, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(600, 1000)
        assert low < 0.6 < high

    def test_bounded_in_unit_interval(self):
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12) and 0.0 < high < 0.2
        low, high = wilson_interval(50, 50)
        assert 0.8 < low < 1.0 and high == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(6000, 10_000)
        wide = wilson_interval(60, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_widens_with_confidence(self):
        i90 = wilson_interval(600, 1000, confidence=0.90)
        i99 = wilson_interval(600, 1000, confidence=0.99)
        assert (i99[1] - i99[0]) > (i90[1] - i90[0])

    def test_known_value(self):
        # Classic example: 7/10 successes, 95% -> approx (0.397, 0.892).
        low, high = wilson_interval(7, 10)
        assert low == pytest.approx(0.3968, abs=0.001)
        assert high == pytest.approx(0.8922, abs=0.001)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            wilson_interval(1, 0)
        with pytest.raises(SimulationError):
            wilson_interval(-1, 10)
        with pytest.raises(SimulationError):
            wilson_interval(11, 10)
        with pytest.raises(SimulationError):
            wilson_interval(5, 10, confidence=1.0)


class TestStandardError:
    def test_formula(self):
        assert standard_error(250, 1000) == pytest.approx(
            (0.25 * 0.75 / 1000) ** 0.5
        )

    def test_zero_at_extremes(self):
        assert standard_error(0, 100) == 0.0
        assert standard_error(100, 100) == 0.0

    def test_maximal_at_half(self):
        assert standard_error(50, 100) >= standard_error(20, 100)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            standard_error(5, 0)


class TestTwoProportionZTest:
    def test_identical_arms_high_p_value(self):
        from repro.simulation.stats import two_proportion_z_test

        z, p = two_proportion_z_test(500, 1000, 500, 1000)
        assert z == pytest.approx(0.0)
        assert p == pytest.approx(1.0)

    def test_clearly_different_arms(self):
        from repro.simulation.stats import two_proportion_z_test

        z, p = two_proportion_z_test(800, 1000, 500, 1000)
        assert z > 5.0
        assert p < 1e-6

    def test_sign_convention(self):
        from repro.simulation.stats import two_proportion_z_test

        z_ab, _ = two_proportion_z_test(700, 1000, 500, 1000)
        z_ba, _ = two_proportion_z_test(500, 1000, 700, 1000)
        assert z_ab == pytest.approx(-z_ba)

    def test_degenerate_pooled_rate(self):
        from repro.simulation.stats import two_proportion_z_test

        assert two_proportion_z_test(0, 100, 0, 200) == (0.0, 1.0)
        assert two_proportion_z_test(100, 100, 200, 200) == (0.0, 1.0)

    def test_simulated_arms_from_same_scenario_agree(self):
        """Two independent runs of the same scenario pass the test at
        alpha = 0.001 (sanity of the whole simulation pipeline)."""
        from repro.experiments.presets import small_scenario
        from repro.simulation.runner import MonteCarloSimulator
        from repro.simulation.stats import two_proportion_z_test

        scenario = small_scenario()
        a = MonteCarloSimulator(scenario, trials=3000, seed=101).run()
        b = MonteCarloSimulator(scenario, trials=3000, seed=202).run()
        _, p = two_proportion_z_test(
            a.detections, a.trials, b.detections, b.trials
        )
        assert p > 0.001

    def test_invalid_counts_rejected(self):
        from repro.simulation.stats import two_proportion_z_test

        with pytest.raises(SimulationError):
            two_proportion_z_test(-1, 10, 1, 10)
        with pytest.raises(SimulationError):
            two_proportion_z_test(1, 10, 11, 10)
