"""Unit tests for repro.markov.chain."""

import numpy as np
import pytest

from repro.errors import MarkovChainError
from repro.markov.chain import MarkovChain


@pytest.fixture
def two_state() -> MarkovChain:
    return MarkovChain([[0.9, 0.1], [0.4, 0.6]])


class TestConstruction:
    def test_valid_stochastic(self, two_state):
        assert two_state.num_states == 2
        assert not two_state.is_substochastic

    def test_non_square_rejected(self):
        with pytest.raises(MarkovChainError):
            MarkovChain([[0.5, 0.5]])

    def test_empty_rejected(self):
        with pytest.raises(MarkovChainError):
            MarkovChain(np.empty((0, 0)))

    def test_negative_entries_rejected(self):
        with pytest.raises(MarkovChainError):
            MarkovChain([[1.1, -0.1], [0.5, 0.5]])

    def test_row_sum_above_one_rejected(self):
        with pytest.raises(MarkovChainError):
            MarkovChain([[0.9, 0.3], [0.5, 0.5]])

    def test_substochastic_requires_flag(self):
        with pytest.raises(MarkovChainError):
            MarkovChain([[0.5, 0.3], [0.5, 0.5]])
        chain = MarkovChain([[0.5, 0.3], [0.5, 0.5]], substochastic=True)
        assert chain.is_substochastic

    def test_matrix_copy_is_defensive(self, two_state):
        matrix = two_state.transition_matrix
        matrix[0, 0] = 0.0
        assert two_state.transition_matrix[0, 0] == 0.9


class TestPropagation:
    def test_step(self, two_state):
        dist = two_state.step([1.0, 0.0])
        np.testing.assert_allclose(dist, [0.9, 0.1])

    def test_run_matches_power(self, two_state):
        dist = two_state.run([0.3, 0.7], steps=5)
        expected = np.array([0.3, 0.7]) @ two_state.power(5)
        np.testing.assert_allclose(dist, expected)

    def test_run_zero_steps_identity(self, two_state):
        np.testing.assert_allclose(two_state.run([0.2, 0.8], 0), [0.2, 0.8])

    def test_negative_steps_rejected(self, two_state):
        with pytest.raises(MarkovChainError):
            two_state.run([1.0, 0.0], -1)

    def test_stationary_limit(self, two_state):
        # Stationary distribution of [[.9,.1],[.4,.6]] is [0.8, 0.2].
        dist = two_state.run([1.0, 0.0], 200)
        np.testing.assert_allclose(dist, [0.8, 0.2], atol=1e-9)

    def test_bad_distribution_shape_rejected(self, two_state):
        with pytest.raises(MarkovChainError):
            two_state.step([1.0, 0.0, 0.0])

    def test_negative_distribution_rejected(self, two_state):
        with pytest.raises(MarkovChainError):
            two_state.step([1.5, -0.5])

    def test_overweight_distribution_rejected(self, two_state):
        with pytest.raises(MarkovChainError):
            two_state.step([0.9, 0.9])

    def test_substochastic_mass_leaks(self):
        chain = MarkovChain([[0.5, 0.25], [0.0, 0.5]], substochastic=True)
        dist = chain.run([1.0, 0.0], 3)
        assert dist.sum() < 1.0


class TestAbsorption:
    def test_absorbing_states_detected(self):
        chain = MarkovChain([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [0.0, 0.0, 1.0]])
        assert list(chain.absorbing_states()) == [2]

    def test_expected_steps_gamblers_walk(self):
        # From state 0: each step moves forward w.p. 1/2 or stays.
        chain = MarkovChain([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [0.0, 0.0, 1.0]])
        times = chain.expected_steps_to_absorption()
        np.testing.assert_allclose(times, [4.0, 2.0])

    def test_no_absorbing_state_rejected(self):
        chain = MarkovChain([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(MarkovChainError):
            chain.expected_steps_to_absorption()

    def test_substochastic_rejected(self):
        chain = MarkovChain([[0.5, 0.1], [0.0, 1.0]], substochastic=True)
        with pytest.raises(MarkovChainError):
            chain.expected_steps_to_absorption()

    def test_unreachable_absorption_rejected(self):
        chain = MarkovChain(
            [[1.0, 0.0, 0.0], [0.0, 0.5, 0.5], [0.0, 0.0, 1.0]]
        )
        # State 0 is itself absorbing; restrict to state 2 only so state 0
        # becomes a transient state that can never reach it.
        with pytest.raises(MarkovChainError):
            chain.expected_steps_to_absorption(absorbing=[2])
