"""Unit tests for repro.experiments.fieldmap."""

import numpy as np
import pytest

from repro.deployment.field import SensorField
from repro.errors import SimulationError
from repro.experiments.fieldmap import render_field


@pytest.fixture
def field() -> SensorField:
    return SensorField(1000.0, 500.0)


class TestRenderField:
    def test_sensors_drawn(self, field):
        positions = np.array([[100.0, 100.0], [900.0, 400.0]])
        art = render_field(field, positions)
        assert art.count(".") >= 2
        assert "sensor" in art

    def test_track_overlay(self, field):
        positions = np.array([[500.0, 250.0]])
        waypoints = np.array([[100.0, 250.0], [500.0, 250.0], [900.0, 250.0]])
        art = render_field(field, positions, waypoints=waypoints)
        assert "S" in art and "E" in art and "-" in art
        assert "track" in art

    def test_reporters_highlighted(self, field):
        positions = np.array([[100.0, 100.0], [900.0, 400.0]])
        art = render_field(field, positions, reporter_ids=[1])
        assert "o" in art

    def test_aspect_ratio(self, field):
        positions = np.array([[0.0, 0.0]])
        art = render_field(field, positions, width=64)
        body = [line for line in art.splitlines() if line.startswith("|")]
        # Height ~ width * (500/1000) / 2 = 16 rows.
        assert 12 <= len(body) <= 20

    def test_out_of_field_track_clipped(self, field):
        positions = np.array([[500.0, 250.0]])
        waypoints = np.array([[-5000.0, 250.0], [6000.0, 250.0]])
        art = render_field(field, positions, waypoints=waypoints)
        # Start/end markers fall outside the field and are not drawn in
        # the grid (the legend still mentions them); the in-field part of
        # the track is.
        grid_rows = [line for line in art.splitlines() if line.startswith("|")]
        grid = "\n".join(grid_rows)
        assert "S" not in grid and "E" not in grid
        assert "-" in grid

    def test_corner_positions_stay_inside_grid(self, field):
        positions = np.array(
            [[0.0, 0.0], [1000.0, 500.0], [1000.0, 0.0], [0.0, 500.0]]
        )
        art = render_field(field, positions)
        lines = art.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines[:-1])

    def test_invalid_inputs_rejected(self, field):
        with pytest.raises(SimulationError):
            render_field(field, np.zeros((2, 3)))
        with pytest.raises(SimulationError):
            render_field(field, np.zeros((1, 2)), width=4)
        with pytest.raises(SimulationError):
            render_field(
                field, np.zeros((1, 2)), waypoints=np.zeros((1, 2))
            )
        with pytest.raises(SimulationError):
            render_field(field, np.zeros((1, 2)), reporter_ids=[5])
