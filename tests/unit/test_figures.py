"""Unit tests for repro.experiments.figures (down-scaled runs).

Each experiment function must produce a well-formed record with the
advertised columns and the coarse qualitative shape; the full-scale
assertions live in benchmarks/.
"""

import pytest

from repro.experiments import figures

TRIALS = 300
SEED = 11


class TestFig8:
    def test_columns_and_shape(self):
        record = figures.fig8_required_truncation(node_counts=(60, 140, 240))
        assert record.experiment_id == "FIG8"
        assert record.columns == ["num_sensors", "g", "gh", "G"]
        assert len(record.rows) == 3
        for row in record.rows:
            assert row["g"] <= row["gh"] < row["G"]


class TestFig9Family:
    @pytest.mark.parametrize(
        "fn,experiment_id",
        [
            (figures.fig9a_straight_line, "FIG9A"),
            (figures.fig9b_unnormalized, "FIG9B"),
            (figures.fig9c_random_walk, "FIG9C"),
        ],
    )
    def test_record_structure(self, fn, experiment_id):
        record = fn(node_counts=(60, 240), speeds=(10.0,), trials=TRIALS, seed=SEED)
        assert record.experiment_id == experiment_id
        assert len(record.rows) == 2
        for row in record.rows:
            assert 0.0 <= row["analysis"] <= 1.0
            assert row["ci_low"] <= row["simulation"] <= row["ci_high"]

    def test_fig9b_unnormalised_below_fig9a(self):
        a = figures.fig9a_straight_line(
            node_counts=(240,), speeds=(10.0,), trials=TRIALS, seed=SEED
        )
        b = figures.fig9b_unnormalized(
            node_counts=(240,), speeds=(10.0,), trials=TRIALS, seed=SEED
        )
        assert b.rows[0]["analysis"] < a.rows[0]["analysis"]


class TestRuntime:
    def test_contains_all_methods(self):
        record = figures.runtime_comparison(naive_truncations=(1, 2))
        methods = {row["method"] for row in record.rows}
        assert "M-S-approach" in methods
        assert any(m.startswith("S-approach") for m in methods)
        assert any(m.startswith("T-approach") for m in methods)


class TestExtensionExperiments:
    def test_multinode(self):
        record = figures.multinode_experiment(
            min_nodes_values=(1, 3), trials=TRIALS, seed=SEED
        )
        assert [row["min_nodes"] for row in record.rows] == [1, 3]
        assert record.rows[0]["analysis"] >= record.rows[1]["analysis"]

    def test_false_alarm_table(self):
        record = figures.false_alarm_table(false_alarm_probs=(1e-4, 1e-3))
        thresholds = record.column("min_threshold")
        assert thresholds == sorted(thresholds)

    def test_network_latency(self):
        record = figures.network_latency_experiment(
            node_counts=(120,), deployments=3, seed=SEED
        )
        assert record.rows[0]["connected_fraction"] > 0.9

    def test_boundary(self):
        record = figures.boundary_ablation(
            node_counts=(120,), trials=TRIALS, seed=SEED
        )
        row = record.rows[0]
        assert {"analysis", "torus", "clip", "interior"} <= set(row)

    def test_truncation(self):
        record = figures.truncation_ablation(truncations=(1, 3))
        errors = record.column("unnormalized_error")
        assert errors[0] > errors[1]

    def test_latency(self):
        record = figures.detection_latency_experiment(
            node_counts=(240,), trials=TRIALS, seed=SEED
        )
        row = record.rows[0]
        assert 1.0 <= row["mean_latency_analysis"] <= 20.0

    def test_deployment(self):
        record = figures.deployment_ablation(
            trials=TRIALS, seed=SEED, grid_jitters=(0.0,)
        )
        names = record.column("deployment")
        assert "uniform" in names

    def test_varying_speed(self):
        record = figures.varying_speed_experiment(
            spread_fractions=(0.0, 0.5), trials=TRIALS, seed=SEED
        )
        assert len(record.rows) == 2

    def test_sliding_window(self):
        record = figures.sliding_window_experiment(
            horizons=(20, 30), trials=TRIALS, seed=SEED
        )
        rows = sorted(record.rows, key=lambda r: r["presence_periods"])
        assert rows[1]["sliding_simulation"] >= rows[0]["sliding_simulation"] - 0.1

    def test_network_loss(self):
        record = figures.network_loss_experiment(
            node_counts=(240,), trials=200, seed=SEED
        )
        row = record.rows[0]
        assert row["lossy_delivery"] <= row["ideal_delivery"] + 0.05

    def test_duty_cycle(self):
        record = figures.duty_cycle_experiment(
            duty_cycles=(1.0, 0.5), trials=TRIALS, seed=SEED
        )
        assert record.rows[0]["analysis"] > record.rows[1]["analysis"]

    def test_tracking(self):
        record = figures.tracking_experiment(
            node_counts=(240,), episodes=40, seed=SEED
        )
        row = record.rows[0]
        assert 0.0 < row["estimable_fraction"] <= 1.0
        assert row["median_cross_track_m"] < 1500.0

    def test_records_serialise(self):
        record = figures.fig8_required_truncation(node_counts=(60,))
        from repro.experiments.records import ExperimentRecord

        restored = ExperimentRecord.from_json(record.to_json())
        assert restored.rows == record.rows


class TestNewerExperiments:
    def test_network_loss(self):
        record = figures.network_loss_experiment(
            node_counts=(240,), trials=150, seed=SEED
        )
        assert record.rows[0]["lossy_delivery"] <= record.rows[0][
            "ideal_delivery"
        ] + 0.1

    def test_multi_target(self):
        record = figures.multi_target_experiment(
            separations=(24_000.0,), episodes=30, seed=SEED
        )
        row = record.rows[0]
        assert 0.0 <= row["both_detected"] <= row["per_target_detection"] <= 1.0

    def test_heterogeneous(self):
        record = figures.heterogeneous_experiment(
            range_spreads=(0.0, 400.0), trials=TRIALS, seed=SEED
        )
        assert record.rows[1]["analysis"] >= record.rows[0]["analysis"]

    def test_sensitivity(self):
        record = figures.sensitivity_experiment(node_counts=(150,))
        row = record.rows[0]
        assert row["e_sensing_range"] > 0.0

    def test_rule_design(self):
        record = figures.rule_design_experiment(
            windows=(10, 20), thresholds=(3, 5)
        )
        assert len(record.rows) == 4

    def test_deployment_design(self):
        record = figures.deployment_design_experiment(
            requirements=(0.5, 0.9), max_sensors=300
        )
        assert len(record.rows) == 2
        for row in record.rows:
            # The joint design trades threshold slack for sensors, so it
            # never needs more nodes than the fixed-rule inversion.
            assert row["joint_sensors"] <= row["min_sensors_fixed_rule"]
            assert row["joint_detection"] >= row["required_probability"]
        assert (
            record.rows[0]["joint_sensors"] <= record.rows[1]["joint_sensors"]
        )

    def test_instantaneous_vs_group(self):
        record = figures.instantaneous_vs_group_experiment(node_counts=(150,))
        row = record.rows[0]
        assert row["instant_detection"] >= row["group_detection"]
        assert row["instant_false_alarm"] > row["group_false_alarm"]

    def test_drift(self):
        record = figures.drift_experiment(
            drift_sigmas=(0.0, 4_000.0), trials=TRIALS, seed=SEED
        )
        assert len(record.rows) == 2
        for row in record.rows:
            assert 0.0 <= row["torus"] <= 1.0
            assert 0.0 <= row["reflect"] <= 1.0

    def test_multi_base(self):
        record = figures.multi_base_experiment(
            base_counts=(1, 4), deployments=3, seed=SEED
        )
        rows = sorted(record.rows, key=lambda r: r["base_stations"])
        assert rows[0]["mean_hops"] >= rows[1]["mean_hops"]
