"""Unit tests for repro.tracking."""

import math

import numpy as np
import pytest

from repro.detection.reports import DetectionReport
from repro.errors import AnalysisError
from repro.geometry.shapes import Point
from repro.tracking import (
    cross_track_rmse,
    estimate_track,
    heading_error,
    position_rmse,
    speed_error,
)


def report(node_id, period, x, y) -> DetectionReport:
    return DetectionReport(node_id, period, Point(x, y))


def straight_track_reports(speed=10.0, period_length=60.0, periods=8, noise=0.0, rng=None):
    """Reports from sensors sitting exactly on (or near) a horizontal track."""
    reports = []
    for p in range(1, periods + 1):
        # Sensor near the midpoint of period p's segment.
        x_mid = (p - 0.5) * speed * period_length
        dx = dy = 0.0
        if noise and rng is not None:
            dx, dy = rng.normal(0.0, noise, size=2)
        reports.append(report(p, p, x_mid + dx, dy))
    return reports


class TestEstimateTrackExact:
    def test_perfect_reports_recover_track(self):
        reports = straight_track_reports()
        estimate = estimate_track(reports, 60.0)
        assert estimate.speed == pytest.approx(10.0, rel=1e-9)
        assert abs(estimate.heading) == pytest.approx(0.0, abs=1e-9)
        predicted = estimate.position_at(3)
        assert predicted[0] == pytest.approx(2.5 * 600.0, rel=1e-9)
        assert predicted[1] == pytest.approx(0.0, abs=1e-6)

    def test_direction_follows_motion(self):
        # Track moving in -x: direction must point along motion, speed > 0.
        reports = [report(p, p, -600.0 * p, 0.0) for p in range(1, 6)]
        estimate = estimate_track(reports, 60.0)
        assert estimate.direction[0] == pytest.approx(-1.0, abs=1e-9)
        assert estimate.speed > 0.0

    def test_diagonal_track(self):
        reports = [
            report(p, p, 100.0 * p, 100.0 * p) for p in range(1, 6)
        ]
        estimate = estimate_track(reports, 10.0)
        assert estimate.heading == pytest.approx(math.pi / 4.0, abs=1e-9)
        assert estimate.speed == pytest.approx(math.hypot(100, 100) / 10.0, rel=1e-9)

    def test_multiple_reports_per_period_averaged(self):
        reports = [
            report(0, 1, 0.0, 50.0),
            report(1, 1, 0.0, -50.0),  # centroid (0, 0)
            report(2, 2, 600.0, 80.0),
            report(3, 2, 600.0, -80.0),  # centroid (600, 0)
        ]
        estimate = estimate_track(reports, 60.0)
        assert estimate.speed == pytest.approx(10.0, rel=1e-9)

    def test_report_order_irrelevant(self, rng):
        reports = straight_track_reports(noise=30.0, rng=rng)
        shuffled = list(reports)
        rng.shuffle(shuffled)
        a = estimate_track(reports, 60.0)
        b = estimate_track(shuffled, 60.0)
        np.testing.assert_allclose(a.position_at(4), b.position_at(4))


class TestEstimateTrackValidation:
    def test_single_period_rejected(self):
        reports = [report(0, 1, 0.0, 0.0), report(1, 1, 10.0, 0.0)]
        with pytest.raises(AnalysisError):
            estimate_track(reports, 60.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            estimate_track([], 60.0)

    def test_coincident_centroids_rejected(self):
        reports = [report(0, p, 5.0, 5.0) for p in range(1, 5)]
        with pytest.raises(AnalysisError):
            estimate_track(reports, 60.0)

    def test_invalid_period_length_rejected(self):
        with pytest.raises(AnalysisError):
            estimate_track(straight_track_reports(), 0.0)


class TestMetrics:
    @pytest.fixture
    def truth(self):
        # Horizontal track: waypoints every 600 m, 8 periods.
        return np.array([[600.0 * p, 0.0] for p in range(9)])

    def test_perfect_estimate_has_zero_errors(self, truth):
        estimate = estimate_track(straight_track_reports(), 60.0)
        assert position_rmse(estimate, truth) == pytest.approx(0.0, abs=1e-6)
        assert cross_track_rmse(estimate, truth) == pytest.approx(0.0, abs=1e-6)
        assert heading_error(estimate, truth) == pytest.approx(0.0, abs=1e-9)
        assert speed_error(estimate, truth) == pytest.approx(0.0, abs=1e-9)

    def test_noisy_estimate_bounded_errors(self, truth, rng):
        estimate = estimate_track(
            straight_track_reports(noise=100.0, rng=rng), 60.0
        )
        assert position_rmse(estimate, truth) < 300.0
        assert cross_track_rmse(estimate, truth) <= position_rmse(estimate, truth) + 1e-9
        assert heading_error(estimate, truth) < math.radians(20.0)

    def test_offset_track_cross_track_error(self, truth):
        # Reports shifted 200 m off the true track line.
        reports = [report(p, p, (p - 0.5) * 600.0, 200.0) for p in range(1, 9)]
        estimate = estimate_track(reports, 60.0)
        assert cross_track_rmse(estimate, truth) == pytest.approx(200.0, rel=0.01)

    def test_period_outside_truth_rejected(self, truth):
        reports = [report(p, p, (p - 0.5) * 600.0, 0.0) for p in range(1, 12)]
        estimate = estimate_track(reports, 60.0)
        with pytest.raises(AnalysisError):
            position_rmse(estimate, truth)  # truth only has 8 periods

    def test_degenerate_truth_rejected(self):
        estimate = estimate_track(straight_track_reports(), 60.0)
        with pytest.raises(AnalysisError):
            heading_error(estimate, np.array([[0.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(AnalysisError):
            position_rmse(estimate, np.array([[0.0, 0.0]]))


class TestEndToEndTracking:
    def test_simulated_episode_tracking(self, rng):
        """Full pipeline: simulate reports, estimate, verify against truth."""
        from repro.experiments.presets import onr_scenario
        from repro.simulation.streams import simulate_report_stream

        scenario = onr_scenario(num_sensors=240, speed=10.0)
        successes = 0
        for _ in range(20):
            episode = simulate_report_stream(scenario, rng=rng)
            reports = [r for _, rs in episode.stream() for r in rs]
            try:
                estimate = estimate_track(reports, scenario.sensing_period)
            except AnalysisError:
                continue
            successes += 1
            # Reports localise to within Rs, so the fitted track cannot
            # stray many sensing ranges from the truth.
            assert cross_track_rmse(estimate, episode.waypoints) < 3 * 1000.0
        assert successes >= 10
