"""Unit tests for repro.core.temporal (the state-explosion argument)."""

import pytest

from repro.core.temporal import (
    t_approach_state_count,
    t_approach_state_count_detailed,
)
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


class TestStateCount:
    def test_formula(self, onr):
        # (M*Z + 1) * (g+1)^ms with Z = (ms+1)*g = 15, ms = 4, g = 3.
        expected = (20 * 15 + 1) * 4**4
        assert t_approach_state_count(onr, 3) == expected

    def test_explodes_for_slow_targets(self, onr, onr_slow):
        # ms jumps from 4 to 9; the occupancy factor goes 4^4 -> 4^9.
        assert t_approach_state_count(onr_slow, 3) > 100 * t_approach_state_count(
            onr, 3
        )

    def test_paper_claim_millions_of_states(self, onr_slow):
        # "the Markov chain needs to use millions or more states" (Sec. 3.2).
        assert t_approach_state_count(onr_slow, 3) > 1_000_000

    def test_detailed_count_dominates(self, onr):
        assert t_approach_state_count_detailed(onr, 3) >= t_approach_state_count(
            onr, 3
        )

    def test_ms_approach_is_exponentially_smaller(self, onr):
        from repro.core.markov_spatial import MarkovSpatialAnalysis

        msa_states = MarkovSpatialAnalysis(onr, 3).num_states()
        assert t_approach_state_count(onr, 3) > 200 * msa_states

    def test_invalid_truncation_rejected(self, onr):
        with pytest.raises(AnalysisError):
            t_approach_state_count(onr, 0)
        with pytest.raises(AnalysisError):
            t_approach_state_count_detailed(onr, 0)
