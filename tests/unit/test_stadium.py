"""Unit tests for repro.geometry.stadium."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.shapes import Point, Segment
from repro.geometry.stadium import Stadium


@pytest.fixture
def stadium() -> Stadium:
    return Stadium(Segment(Point(0, 0), Point(10, 0)), radius=2.0)


class TestStadium:
    def test_area_formula(self, stadium):
        assert stadium.area == pytest.approx(2 * 2.0 * 10.0 + math.pi * 4.0)

    def test_degenerate_segment_is_circle(self):
        dot = Stadium(Segment(Point(1, 1), Point(1, 1)), radius=3.0)
        assert dot.area == pytest.approx(math.pi * 9.0)

    def test_contains_on_core(self, stadium):
        assert stadium.contains(Point(5, 0))

    def test_contains_side(self, stadium):
        assert stadium.contains(Point(5, 2.0))
        assert not stadium.contains(Point(5, 2.0001))

    def test_contains_end_cap(self, stadium):
        assert stadium.contains(Point(11.9, 0))
        assert stadium.contains(Point(-1.4, 1.4))
        assert not stadium.contains(Point(12.1, 0))

    def test_distance_inside_is_zero(self, stadium):
        assert stadium.distance_to(Point(3, 1)) == 0.0

    def test_distance_outside(self, stadium):
        assert stadium.distance_to(Point(5, 5)) == pytest.approx(3.0)

    def test_bounding_box(self, stadium):
        assert stadium.bounding_box() == (-2.0, -2.0, 12.0, 2.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Stadium(Segment(Point(0, 0), Point(1, 0)), radius=-1.0)


class TestAggregateArea:
    def test_matches_paper_formula(self):
        # 2*M*Rs*V*t + pi*Rs^2 with Rs=1000, V*t=600, M=20.
        area = Stadium.aggregate_area(1000.0, 600.0, 20)
        assert area == pytest.approx(2 * 20 * 1000 * 600 + math.pi * 1000.0**2)

    def test_single_period_equals_dr(self):
        assert Stadium.aggregate_area(2.0, 10.0, 1) == pytest.approx(
            Stadium(Segment(Point(0, 0), Point(10, 0)), 2.0).area
        )

    def test_invalid_periods_rejected(self):
        with pytest.raises(GeometryError):
            Stadium.aggregate_area(1.0, 1.0, 0)

    def test_negative_lengths_rejected(self):
        with pytest.raises(GeometryError):
            Stadium.aggregate_area(-1.0, 1.0, 1)
        with pytest.raises(GeometryError):
            Stadium.aggregate_area(1.0, -1.0, 1)
