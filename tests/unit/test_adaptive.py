"""Unit tests for repro.adaptive (ledger, evaluators, search policies)."""

import json

import numpy as np
import pytest

from repro import obs
from repro.adaptive import (
    BudgetExceededError,
    CachedEvaluator,
    EvaluationLedger,
    Evaluator,
    InProcessEvaluator,
    MonotoneOracle,
    adaptive_design_slice,
    adaptive_maximum_threshold,
    adaptive_minimum_sensors,
    adaptive_rule_frontier,
    bisect_first_meeting,
    bisect_last_meeting,
    dense_design_slice,
    dense_rule_frontier,
)
from repro.cache import analysis_cache, clear_analysis_cache
from repro.core.design import maximum_threshold, minimum_sensors
from repro.errors import AnalysisError


def oracle_from(values, direction, counter=None):
    """A MonotoneOracle over a list, optionally counting evaluations."""

    def batch(indexes):
        if counter is not None:
            counter[0] += len(indexes)
        return [values[i] for i in indexes]

    return MonotoneOracle(batch, direction)


class ExplodingEvaluator(Evaluator):
    """An evaluator whose every dispatch fails (a lost fleet round).

    Subclasses the seam base directly so both ``evaluate`` and ``grid``
    route through the failing ``_compute_points`` hook.
    """

    def _compute_points(self, scenario, points):
        raise RuntimeError("dispatch lost")


class TestLedger:
    def test_counters_accumulate_and_snapshot(self):
        ledger = EvaluationLedger()
        ledger.charge(3)
        ledger.charge(2)
        ledger.record_cache_hits(4)
        ledger.note_bisection()
        ledger.note_fallback()
        ledger.note_skipped(10)
        assert ledger.stats() == {
            "budget": None,
            "evaluations": 5,
            "batches": 2,
            "cache_hits": 4,
            "bisections": 1,
            "fallbacks": 1,
            "skipped": 10,
        }

    def test_budget_blocks_before_spending(self):
        ledger = EvaluationLedger(budget=5)
        ledger.charge(4)
        with pytest.raises(BudgetExceededError):
            ledger.charge(2)
        # The refused charge spent nothing.
        assert ledger.evaluations == 4
        assert ledger.remaining() == 1
        ledger.charge(1)
        assert ledger.remaining() == 0

    def test_skipped_clamped_at_zero(self):
        ledger = EvaluationLedger()
        ledger.note_skipped(-3)
        assert ledger.skipped == 0

    def test_invalid_budget_and_charge_rejected(self):
        with pytest.raises(AnalysisError):
            EvaluationLedger(budget=0)
        with pytest.raises(AnalysisError):
            EvaluationLedger().charge(-1)

    def test_counters_mirror_into_obs(self, small):
        instrumentation = obs.Instrumentation()
        with obs.activate(instrumentation):
            evaluator = InProcessEvaluator()
            adaptive_minimum_sensors(
                small, 0.5, max_sensors=32, evaluator=evaluator
            )
        counters = instrumentation.manifest()["counters"]
        assert counters["adaptive.evaluations"] == evaluator.ledger.evaluations
        assert counters["adaptive.bisections"] == 1
        assert counters["adaptive.skipped"] == evaluator.ledger.skipped
        assert "adaptive.fallbacks" not in counters


class TestBisectionCores:
    def test_first_meeting_matches_linear_scan(self):
        values = [0.0, 0.1, 0.2, 0.5, 0.5, 0.8, 0.9, 1.0]
        for target in (0.05, 0.2, 0.5, 0.85, 0.99):
            ledger = EvaluationLedger()
            got = bisect_first_meeting(
                oracle_from(values, +1), 0, len(values) - 1, target, ledger
            )
            expected = next(
                (i for i, v in enumerate(values) if v >= target), None
            )
            assert got == expected
            assert ledger.fallbacks == 0

    def test_first_meeting_endpoints(self):
        ledger = EvaluationLedger()
        assert (
            bisect_first_meeting(oracle_from([0.9], +1), 0, 0, 0.5, ledger)
            == 0
        )
        assert (
            bisect_first_meeting(oracle_from([0.1], +1), 0, 0, 0.5, ledger)
            is None
        )

    def test_last_meeting_matches_dense_rule(self):
        values = [1.0, 0.9, 0.7, 0.7, 0.4, 0.2]
        for target in (0.95, 0.7, 0.5, 0.1):
            ledger = EvaluationLedger()
            got = bisect_last_meeting(
                oracle_from(values, -1), 0, len(values) - 1, target, ledger
            )
            failing = next(
                (i for i, v in enumerate(values) if v < target), None
            )
            if failing is None:
                expected = len(values) - 1
            elif failing == 0:
                expected = None
            else:
                expected = failing - 1
            assert got == expected
            assert ledger.fallbacks == 0

    def test_violation_at_endpoints_falls_back(self):
        # Decreasing values under an "increasing" claim: caught on the
        # very first (endpoint) round, answered by the dense rule.
        values = [0.9, 0.4, 0.6, 0.1]
        ledger = EvaluationLedger()
        got = bisect_first_meeting(
            oracle_from(values, +1), 0, 3, 0.5, ledger
        )
        assert ledger.fallbacks == 1
        assert got == 0  # dense scan: first index with value >= 0.5

    def test_late_violation_fallback_scans_original_range(self):
        # Regression: with lo=0, hi=7 the rounds sample 0, 7, then 3
        # (consistent: 0.1 <= 0.2 <= 0.8, so lo advances to 3), then 5
        # where v=0.05 < v[3] finally reveals the violation.  The dense
        # answer is index 1 (0.9, never sampled by bisection) — outside
        # the narrowed bracket [3, 7], so a fallback scanning the
        # shrunken bracket would wrongly return 6.
        values = [0.1, 0.9, 0.15, 0.2, 0.25, 0.05, 0.6, 0.8]
        ledger = EvaluationLedger()
        got = bisect_first_meeting(
            oracle_from(values, +1), 0, len(values) - 1, 0.5, ledger
        )
        assert ledger.fallbacks == 1
        assert got == 1

    def test_late_violation_last_meeting_scans_original_range(self):
        # Mirror case for the non-increasing search: rounds sample 0, 7,
        # then 3 (consistent: 0.9 >= 0.7 >= 0.1, lo advances to 3), then
        # 5 where v=0.95 > v[3] reveals the violation.  The dense rule's
        # first failing index is 1 (0.05), so the answer is 0 — outside
        # the narrowed bracket [3, 7].
        values = [0.9, 0.05, 0.8, 0.7, 0.6, 0.95, 0.3, 0.1]
        ledger = EvaluationLedger()
        got = bisect_last_meeting(
            oracle_from(values, -1), 0, len(values) - 1, 0.5, ledger
        )
        assert ledger.fallbacks == 1
        assert got == 0

    def test_round_points_sections_cut_rounds(self):
        values = list(np.linspace(0.0, 1.0, 82))
        counter = [0]
        ledger = EvaluationLedger()
        got = bisect_first_meeting(
            oracle_from(values, +1, counter), 0, 81, 0.5, ledger,
            round_points=3,
        )
        assert got == next(i for i, v in enumerate(values) if v >= 0.5)
        # log_4(81) = ~3.2 rounds of 3 points + 2 endpoints.
        assert counter[0] <= 3 * 5 + 2

    def test_empty_range_rejected(self):
        with pytest.raises(AnalysisError):
            bisect_first_meeting(
                oracle_from([0.5], +1), 1, 0, 0.5, EvaluationLedger()
            )


class TestEvaluators:
    def test_point_values_bitwise_equal_grid(self, small):
        evaluator = InProcessEvaluator()
        counts = [10, 20, 30]
        ks = [2, 3]
        grid = evaluator.grid(small, num_sensors=counts, thresholds=ks)
        points = [
            {"num_sensors": n, "threshold": k} for n in counts for k in ks
        ]
        values = evaluator.evaluate(small, points)
        assert values == list(grid.reshape(-1))

    def test_grid_charges_dense_count(self, small):
        evaluator = InProcessEvaluator()
        evaluator.grid(small, num_sensors=[10, 20], thresholds=[2, 3, 4])
        assert evaluator.ledger.evaluations == 6
        evaluator.grid(small)  # default axes: the template point
        assert evaluator.ledger.evaluations == 7

    def test_cached_evaluator_charges_only_misses(self, small):
        clear_analysis_cache()
        evaluator = CachedEvaluator()
        points = [{"threshold": k} for k in (2, 3, 2)]
        first = evaluator.evaluate(small, points)
        assert evaluator.ledger.evaluations == 2  # duplicate k=2 folded
        assert evaluator.ledger.cache_hits == 0
        second = evaluator.evaluate(small, points)
        assert second == first
        assert evaluator.ledger.evaluations == 2
        assert evaluator.ledger.cache_hits == 3

    def test_cached_matches_uncached_bitwise(self, small):
        clear_analysis_cache()
        plain = InProcessEvaluator()
        cached = CachedEvaluator()
        points = [{"num_sensors": 25}, {"threshold": 4}]
        assert cached.evaluate(small, points) == plain.evaluate(small, points)
        # Warm reads return the identical bytes.
        assert cached.evaluate(small, points) == plain.evaluate(small, points)

    def test_cached_grid_is_free_when_warm(self, small):
        clear_analysis_cache()
        evaluator = CachedEvaluator()
        first = evaluator.grid(small, thresholds=[1, 2, 3])
        spent = evaluator.ledger.evaluations
        second = evaluator.grid(small, thresholds=[1, 2, 3])
        assert evaluator.ledger.evaluations == spent
        assert np.array_equal(first, second)

    def test_budget_stops_search(self, small):
        evaluator = InProcessEvaluator(ledger=EvaluationLedger(budget=1))
        with pytest.raises(BudgetExceededError):
            adaptive_minimum_sensors(
                small, 0.5, max_sensors=64, evaluator=evaluator
            )

    def test_inner_param_conflict_rejected(self):
        # An explicit engine kwarg that disagrees with a provided inner
        # evaluator must raise, not be silently overwritten.
        inner = InProcessEvaluator(truncation=2, substeps=2)
        with pytest.raises(AnalysisError, match="truncation"):
            CachedEvaluator(inner=inner, truncation=3)
        with pytest.raises(AnalysisError, match="normalize"):
            CachedEvaluator(inner=inner, normalize=False)
        # Matching explicit kwargs are fine, and the inner evaluator's
        # parameters are adopted wholesale either way.
        cached = CachedEvaluator(inner=inner, truncation=2)
        assert cached.truncation == 2
        assert cached.substeps == 2

    def test_failed_dispatch_charges_nothing(self, small):
        # A dispatch that raises must not consume budget or inflate the
        # evaluation counters — neither on the ledger nor in obs.
        ledger = EvaluationLedger(budget=10)
        evaluator = ExplodingEvaluator(ledger=ledger)
        instrumentation = obs.Instrumentation()
        with obs.activate(instrumentation):
            with pytest.raises(RuntimeError):
                evaluator.evaluate(small, [{"threshold": 2}])
            with pytest.raises(RuntimeError):
                evaluator.grid(small, thresholds=[1, 2])
        assert ledger.evaluations == 0
        assert ledger.batches == 0
        assert ledger.remaining() == 10
        counters = instrumentation.manifest()["counters"]
        assert "adaptive.evaluations" not in counters

    def test_failed_inner_dispatch_charges_nothing_when_cached(self, small):
        clear_analysis_cache()
        cached = CachedEvaluator(inner=ExplodingEvaluator())
        with pytest.raises(RuntimeError):
            cached.evaluate(small, [{"threshold": 2}])
        assert cached.ledger.evaluations == 0
        # The failed point was never stored: a retry is a miss, not a hit.
        assert cached.ledger.cache_hits == 0

    def test_budget_still_refuses_before_dispatch(self, small):
        # The budget check runs before the batch is dispatched: an
        # unaffordable batch raises BudgetExceededError, not the
        # evaluator's own dispatch error.
        evaluator = ExplodingEvaluator(ledger=EvaluationLedger(budget=1))
        with pytest.raises(BudgetExceededError):
            evaluator.evaluate(small, [{"threshold": 1}, {"threshold": 2}])


class TestAdaptiveQueries:
    def test_minimum_sensors_matches_dense(self, small):
        evaluator = InProcessEvaluator()
        adaptive = adaptive_minimum_sensors(
            small, 0.3, max_sensors=64, evaluator=evaluator
        )
        dense = minimum_sensors(small, 0.3, max_sensors=64)
        assert adaptive == dense
        assert evaluator.ledger.evaluations <= 10
        assert evaluator.ledger.fallbacks == 0

    def test_maximum_threshold_matches_dense(self, small):
        evaluator = InProcessEvaluator()
        adaptive = adaptive_maximum_threshold(small, 0.2, evaluator=evaluator)
        dense = maximum_threshold(small, 0.2)
        assert adaptive == dense
        ceiling = small.num_sensors * (small.ms + 1)
        assert evaluator.ledger.evaluations < ceiling / 4

    def test_rule_frontier_rows_byte_identical(self, small):
        targets = [0.05, 0.2, 0.3]
        adaptive = adaptive_rule_frontier(
            small, targets, evaluator=InProcessEvaluator()
        )
        dense = dense_rule_frontier(
            small, targets, evaluator=InProcessEvaluator()
        )
        assert json.dumps(adaptive, sort_keys=True) == json.dumps(
            dense, sort_keys=True
        )

    def test_frontier_threshold_agrees_with_maximum_threshold(self, small):
        [row] = adaptive_rule_frontier(
            small, [0.2], evaluator=InProcessEvaluator()
        )
        assert row["threshold"] == maximum_threshold(small, 0.2)

    def test_design_slice_matches_dense(self, small):
        speeds = [6.0, 9.0, 12.0]
        ranges = [150.0, 200.0, 250.0, 300.0, 350.0]
        evaluator = InProcessEvaluator()
        adaptive = adaptive_design_slice(
            small, speeds, ranges, 0.3, evaluator=evaluator
        )
        dense = dense_design_slice(
            small, speeds, ranges, 0.3, evaluator=InProcessEvaluator()
        )
        assert json.dumps(adaptive, sort_keys=True) == json.dumps(
            dense, sort_keys=True
        )
        assert evaluator.ledger.evaluations < len(speeds) * len(ranges)

    def test_design_slice_rejects_unsorted_ranges(self, small):
        with pytest.raises(AnalysisError):
            adaptive_design_slice(small, [10.0], [300.0, 200.0], 0.5)

    def test_repeated_frontier_queries_hit_cache(self, small):
        # The point-level memo: a repeated multi-target frontier query on
        # a cached evaluator re-buys nothing.
        clear_analysis_cache()
        evaluator = CachedEvaluator()
        targets = [0.05, 0.2, 0.3]
        first = adaptive_rule_frontier(small, targets, evaluator=evaluator)
        spent = evaluator.ledger.evaluations
        again = adaptive_rule_frontier(small, targets, evaluator=evaluator)
        assert again == first
        assert evaluator.ledger.evaluations == spent
        assert evaluator.ledger.cache_hits >= spent

    def test_invalid_targets_rejected(self, small):
        with pytest.raises(AnalysisError):
            adaptive_minimum_sensors(small, 1.5)
        with pytest.raises(AnalysisError):
            adaptive_minimum_sensors(small, 0.5, max_sensors=0)
        with pytest.raises(AnalysisError):
            adaptive_maximum_threshold(small, 0.0)
        with pytest.raises(AnalysisError):
            adaptive_rule_frontier(small, [0.5, 1.0])


class TestFrontierCacheRouting:
    def test_second_frontier_range_adds_hits_not_misses(self, small):
        # Regression: the survival stack is memoised under grid_key with
        # k excluded, so a frontier re-query over a *different* threshold
        # range must be answered from the cached stack.
        from repro.core.design import rule_frontier

        clear_analysis_cache()
        rule_frontier(small, range(1, 9))
        before = analysis_cache().stats()
        rule_frontier(small, range(1, 13))
        after = analysis_cache().stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]
