"""Unit tests for repro.deployment.field."""

import numpy as np
import pytest

from repro.deployment.field import SensorField
from repro.errors import GeometryError
from repro.geometry.shapes import Point


class TestSensorField:
    def test_area(self):
        assert SensorField(100.0, 50.0).area == 5000.0

    def test_square_constructor(self):
        field = SensorField.square(32000.0)
        assert field.width == field.height == 32000.0

    def test_center(self):
        assert SensorField(10.0, 20.0).center == Point(5.0, 10.0)

    def test_contains(self):
        field = SensorField(10.0, 10.0)
        assert field.contains(Point(0.0, 0.0))
        assert field.contains(Point(10.0, 10.0))
        assert not field.contains(Point(10.1, 5.0))
        assert not field.contains(Point(5.0, -0.1))

    def test_contains_xy_vectorised(self):
        field = SensorField(10.0, 10.0)
        xs = np.array([0.0, 5.0, 11.0])
        ys = np.array([0.0, -1.0, 5.0])
        assert list(field.contains_xy(xs, ys)) == [True, False, False]

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            SensorField(0.0, 10.0)
        with pytest.raises(GeometryError):
            SensorField(10.0, -1.0)


class TestTorusOperations:
    def test_wrap_xy(self):
        field = SensorField(10.0, 10.0)
        xs, ys = field.wrap_xy(np.array([12.0, -3.0]), np.array([5.0, 25.0]))
        assert list(xs) == [2.0, 7.0]
        assert list(ys) == [5.0, 5.0]

    def test_wrapped_delta_short_way(self):
        field = SensorField(10.0, 10.0)
        dx, dy = field.wrapped_delta(np.array([9.0]), np.array([-9.0]))
        assert dx[0] == pytest.approx(-1.0)
        assert dy[0] == pytest.approx(1.0)

    def test_wrapped_delta_identity_for_small_offsets(self):
        field = SensorField(10.0, 10.0)
        dx, dy = field.wrapped_delta(np.array([2.0]), np.array([-3.0]))
        assert dx[0] == pytest.approx(2.0)
        assert dy[0] == pytest.approx(-3.0)

    def test_wrapped_delta_bounded(self, rng):
        field = SensorField(7.0, 13.0)
        raw = rng.uniform(-100, 100, size=(500, 2))
        dx, dy = field.wrapped_delta(raw[:, 0], raw[:, 1])
        assert np.all(np.abs(dx) <= 3.5 + 1e-9)
        assert np.all(np.abs(dy) <= 6.5 + 1e-9)

    def test_torus_distance_crosses_boundary(self):
        field = SensorField(10.0, 10.0)
        assert field.torus_distance(Point(0.5, 5.0), Point(9.5, 5.0)) == pytest.approx(
            1.0
        )

    def test_torus_distance_interior_matches_euclidean(self):
        field = SensorField(100.0, 100.0)
        a, b = Point(10.0, 10.0), Point(13.0, 14.0)
        assert field.torus_distance(a, b) == pytest.approx(a.distance_to(b))
