"""Unit tests for repro.core.report_dist."""

import numpy as np
import pytest
from scipy import stats

from repro.core.report_dist import (
    binomial_pmf,
    conditional_report_pmf,
    convolution_power,
    exact_report_pmf,
    occupancy_pmf,
    per_sensor_field_pmf,
    stage_report_pmf,
    stage_report_pmf_naive,
)
from repro.errors import DistributionError


class TestBinomialPmf:
    def test_matches_scipy(self):
        for n, p in [(0, 0.5), (1, 0.3), (10, 0.9), (240, 0.004)]:
            np.testing.assert_allclose(
                binomial_pmf(n, p),
                stats.binom.pmf(np.arange(n + 1), n, p),
                atol=1e-12,
            )

    def test_degenerate_probabilities(self):
        np.testing.assert_allclose(binomial_pmf(3, 0.0), [1, 0, 0, 0])
        np.testing.assert_allclose(binomial_pmf(3, 1.0), [0, 0, 0, 1])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DistributionError):
            binomial_pmf(-1, 0.5)
        with pytest.raises(DistributionError):
            binomial_pmf(3, 1.5)


class TestConditionalReportPmf:
    def test_single_region_is_binomial(self):
        areas = np.array([0.0, 0.0, 10.0])  # all coverage-2
        pmf = conditional_report_pmf(areas, 0.9)
        np.testing.assert_allclose(pmf, binomial_pmf(2, 0.9))

    def test_mixture_weights(self):
        areas = np.array([0.0, 3.0, 1.0])
        pmf = conditional_report_pmf(areas, 0.5)
        expected = 0.75 * np.array([0.5, 0.5, 0.0]) + 0.25 * np.array(
            [0.25, 0.5, 0.25]
        )
        np.testing.assert_allclose(pmf, expected)

    def test_sums_to_one(self):
        areas = np.array([0.0, 5.0, 2.0, 1.0, 0.5])
        assert conditional_report_pmf(areas, 0.7).sum() == pytest.approx(1.0)

    def test_padding_must_be_zero(self):
        with pytest.raises(DistributionError):
            conditional_report_pmf(np.array([1.0, 1.0]), 0.5)

    def test_zero_total_area_rejected(self):
        with pytest.raises(DistributionError):
            conditional_report_pmf(np.array([0.0, 0.0]), 0.5)

    def test_negative_area_rejected(self):
        with pytest.raises(DistributionError):
            conditional_report_pmf(np.array([0.0, -1.0, 2.0]), 0.5)


class TestOccupancyPmf:
    def test_total_is_stage_accuracy(self):
        pmf = occupancy_pmf(100.0, 10_000.0, 50, max_sensors=3)
        assert pmf.sum() == pytest.approx(
            float(stats.binom.cdf(3, 50, 0.01))
        )

    def test_truncation_limits_support(self):
        pmf = occupancy_pmf(100.0, 1000.0, 50, max_sensors=2)
        assert pmf.size == 3

    def test_max_above_n_keeps_everything(self):
        pmf = occupancy_pmf(100.0, 1000.0, 5, max_sensors=10)
        assert pmf.sum() == pytest.approx(1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DistributionError):
            occupancy_pmf(10.0, 0.0, 5, 2)
        with pytest.raises(DistributionError):
            occupancy_pmf(-1.0, 10.0, 5, 2)
        with pytest.raises(DistributionError):
            occupancy_pmf(20.0, 10.0, 5, 2)


class TestConvolutionPower:
    def test_power_zero_is_unit(self):
        np.testing.assert_allclose(convolution_power([0.3, 0.7], 0), [1.0])

    def test_power_one_is_identity(self):
        np.testing.assert_allclose(convolution_power([0.3, 0.7], 1), [0.3, 0.7])

    def test_bernoulli_power_is_binomial(self):
        out = convolution_power([0.25, 0.75], 8)
        np.testing.assert_allclose(out, binomial_pmf(8, 0.75), atol=1e-12)

    def test_binary_exponentiation_matches_iteration(self):
        pmf = np.array([0.2, 0.5, 0.3])
        iterative = np.array([1.0])
        for _ in range(7):
            iterative = np.convolve(iterative, pmf)
        np.testing.assert_allclose(convolution_power(pmf, 7), iterative, atol=1e-12)

    def test_negative_power_rejected(self):
        with pytest.raises(DistributionError):
            convolution_power([1.0], -1)


class TestStageReportPmf:
    @pytest.fixture
    def areas(self):
        return np.array([0.0, 60.0, 25.0, 15.0])

    def test_naive_matches_fast(self, areas):
        fast = stage_report_pmf(areas, 10_000.0, 30, 0.8, max_sensors=3)
        naive = stage_report_pmf_naive(areas, 10_000.0, 30, 0.8, max_sensors=3)
        np.testing.assert_allclose(fast, naive, atol=1e-12)

    def test_naive_matches_fast_single_sensor(self, areas):
        fast = stage_report_pmf(areas, 10_000.0, 30, 0.8, max_sensors=1)
        naive = stage_report_pmf_naive(areas, 10_000.0, 30, 0.8, max_sensors=1)
        np.testing.assert_allclose(fast, naive, atol=1e-12)

    def test_mass_is_occupancy_cdf(self, areas):
        pmf = stage_report_pmf(areas, 10_000.0, 30, 0.8, max_sensors=2)
        expected = float(stats.binom.cdf(2, 30, areas.sum() / 10_000.0))
        assert pmf.sum() == pytest.approx(expected)

    def test_support_size(self, areas):
        pmf = stage_report_pmf(areas, 10_000.0, 30, 0.8, max_sensors=2)
        assert pmf.size == 2 * 3 + 1  # g * i_max + 1


class TestExactReportPmf:
    def test_per_sensor_includes_outside_mass(self):
        areas = np.array([0.0, 100.0])
        pmf = per_sensor_field_pmf(areas, 1000.0, 0.9)
        assert pmf[0] == pytest.approx(0.9 + 0.1 * 0.1)
        assert pmf[1] == pytest.approx(0.1 * 0.9)

    def test_region_exceeding_field_rejected(self):
        with pytest.raises(DistributionError):
            per_sensor_field_pmf(np.array([0.0, 2000.0]), 1000.0, 0.9)

    def test_exact_pmf_sums_to_one(self):
        areas = np.array([0.0, 50.0, 25.0])
        pmf = exact_report_pmf(areas, 1000.0, 40, 0.9)
        assert pmf.sum() == pytest.approx(1.0)

    def test_zero_sensors_gives_unit_mass_at_zero(self):
        areas = np.array([0.0, 50.0])
        np.testing.assert_allclose(exact_report_pmf(areas, 1000.0, 0, 0.9), [1.0])

    def test_mean_matches_expectation(self):
        # E[reports] = N * sum_i (area_i / S) * i * Pd.
        areas = np.array([0.0, 50.0, 25.0])
        n, s, pd = 40, 1000.0, 0.9
        pmf = exact_report_pmf(areas, s, n, pd)
        mean = float(np.arange(pmf.size) @ pmf)
        expected = n * pd * (areas[1] * 1 + areas[2] * 2) / s
        assert mean == pytest.approx(expected)

    def test_negative_sensor_count_rejected(self):
        with pytest.raises(DistributionError):
            exact_report_pmf(np.array([0.0, 1.0]), 10.0, -1, 0.5)
