"""Unit tests for repro.detection.instantaneous."""

import pytest

from repro.detection.instantaneous import InstantaneousDetector
from repro.detection.reports import DetectionReport
from repro.errors import SimulationError
from repro.geometry.shapes import Point


def report(node_id, period) -> DetectionReport:
    return DetectionReport(node_id, period, Point(0, 0))


class TestInstantaneousDetector:
    def test_fires_on_any_report_with_default_threshold(self):
        detector = InstantaneousDetector()
        assert not detector.observe(1, [])
        assert detector.observe(2, [report(0, 2)])
        assert detector.detection_periods == [2]

    def test_threshold_respected(self):
        detector = InstantaneousDetector(threshold=2)
        assert not detector.observe(1, [report(0, 1)])
        assert detector.observe(2, [report(0, 2), report(1, 2)])

    def test_no_memory_across_periods(self):
        # Unlike the group detector, reports never accumulate.
        detector = InstantaneousDetector(threshold=2)
        detector.observe(1, [report(0, 1)])
        assert not detector.observe(2, [report(1, 2)])

    def test_reset(self):
        detector = InstantaneousDetector()
        detector.observe(1, [report(0, 1)])
        detector.reset()
        assert detector.detection_periods == []
        detector.observe(1, [])  # period counter reset too

    def test_out_of_order_rejected(self):
        detector = InstantaneousDetector()
        detector.observe(2, [])
        with pytest.raises(SimulationError):
            detector.observe(1, [])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(SimulationError):
            InstantaneousDetector(threshold=0)

    def test_every_false_alarm_becomes_system_alarm(self):
        # The failure mode motivating group detection: with k=1 every noisy
        # period fires.
        detector = InstantaneousDetector()
        fired = [detector.observe(p, [report(0, p)]) for p in range(1, 6)]
        assert all(fired)
