"""Unit tests for repro.geometry.shapes."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.shapes import Circle, Point, Segment


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 7.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_iterable_unpacking(self):
        x, y = Point(2.0, 5.0)
        assert (x, y) == (2.0, 5.0)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5.0)

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(4, 2)).midpoint == Point(2, 1)

    def test_point_at_endpoints(self):
        seg = Segment(Point(1, 1), Point(5, 3))
        assert seg.point_at(0.0) == Point(1, 1)
        assert seg.point_at(1.0) == Point(5, 3)

    def test_point_at_middle(self):
        seg = Segment(Point(0, 0), Point(2, 2))
        assert seg.point_at(0.5) == Point(1, 1)

    def test_distance_to_point_on_segment(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.distance_to_point(Point(5, 0)) == pytest.approx(0.0)

    def test_distance_to_point_perpendicular(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.distance_to_point(Point(5, 3)) == pytest.approx(3.0)

    def test_distance_to_point_beyond_endpoint(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.distance_to_point(Point(13, 4)) == pytest.approx(5.0)

    def test_distance_degenerate_segment(self):
        seg = Segment(Point(2, 2), Point(2, 2))
        assert seg.distance_to_point(Point(5, 6)) == pytest.approx(5.0)


class TestCircle:
    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area == pytest.approx(4.0 * math.pi)

    def test_contains_boundary(self):
        circle = Circle(Point(0, 0), 1.0)
        assert circle.contains(Point(1.0, 0.0))
        assert not circle.contains(Point(1.0001, 0.0))

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -1.0)

    def test_intersects(self):
        a = Circle(Point(0, 0), 1.0)
        assert a.intersects(Circle(Point(1.5, 0), 1.0))
        assert not a.intersects(Circle(Point(3.0, 0), 1.0))

    def test_intersection_area_disjoint(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(5, 0), 1.0)
        assert a.intersection_area(b) == 0.0

    def test_intersection_area_contained(self):
        big = Circle(Point(0, 0), 5.0)
        small = Circle(Point(1, 0), 1.0)
        assert big.intersection_area(small) == pytest.approx(small.area)

    def test_intersection_area_equal_radii_matches_lens(self):
        from repro.geometry.circle_math import circle_lens_area

        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(1.7, 0), 2.0)
        assert a.intersection_area(b) == pytest.approx(circle_lens_area(1.7, 2.0))

    def test_intersection_area_symmetric(self):
        a = Circle(Point(0, 0), 2.0)
        b = Circle(Point(1.2, 0.8), 3.0)
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))
