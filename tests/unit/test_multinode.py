"""Unit tests for repro.core.multinode (the >= h nodes extension)."""

import numpy as np
import pytest

from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.core.multinode import MultiNodeAnalysis
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


class TestConstruction:
    def test_invalid_parameters_rejected(self, onr):
        with pytest.raises(AnalysisError):
            MultiNodeAnalysis(onr, min_nodes=0)
        with pytest.raises(AnalysisError):
            MultiNodeAnalysis(onr, body_truncation=0)
        with pytest.raises(AnalysisError):
            MultiNodeAnalysis(onr, head_truncation=0)

    def test_small_window_rejected(self):
        with pytest.raises(AnalysisError):
            MultiNodeAnalysis(onr_scenario(window=3, threshold=1))


class TestJointDistribution:
    def test_mass_matches_ms_accuracy(self, onr):
        multi = MultiNodeAnalysis(onr, min_nodes=2)
        single = MarkovSpatialAnalysis(onr, body_truncation=3)
        assert multi.joint_distribution().sum() == pytest.approx(
            single.analysis_accuracy()
        )

    def test_report_marginal_matches_single_node_analysis(self, onr):
        multi = MultiNodeAnalysis(onr, min_nodes=3)
        single = MarkovSpatialAnalysis(onr, body_truncation=3)
        marginal = multi.joint_distribution().sum(axis=0)
        reference = single.report_count_distribution()
        np.testing.assert_allclose(
            marginal[: reference.size], reference, atol=1e-10
        )

    def test_zero_reports_means_zero_nodes(self, onr):
        joint = MultiNodeAnalysis(onr, min_nodes=2).joint_distribution()
        assert joint[1:, 0].sum() == pytest.approx(0.0, abs=1e-15)

    def test_nodes_cannot_exceed_reports(self, onr):
        joint = MultiNodeAnalysis(onr, min_nodes=3).joint_distribution()
        for nodes in range(1, joint.shape[0]):
            assert joint[nodes, :nodes].sum() == pytest.approx(0.0, abs=1e-15)


class TestDetectionProbability:
    def test_h_one_matches_base_analysis(self, onr):
        multi = MultiNodeAnalysis(onr, min_nodes=1).detection_probability()
        base = MarkovSpatialAnalysis(onr, 3).detection_probability()
        assert multi == pytest.approx(base, abs=1e-10)

    def test_monotone_decreasing_in_h(self, onr):
        values = [
            MultiNodeAnalysis(onr, min_nodes=h).detection_probability()
            for h in (1, 2, 3, 4)
        ]
        assert values == sorted(values, reverse=True)

    def test_h_larger_than_k_rule_still_valid(self, onr):
        # Requiring more nodes than reports is impossible to satisfy with
        # k reports exactly, but the probability P[X >= k, nodes >= h]
        # remains well-defined and small.
        p = MultiNodeAnalysis(onr, min_nodes=6).detection_probability(threshold=5)
        assert 0.0 <= p < 1.0

    def test_unnormalized_below_normalized(self, onr):
        multi = MultiNodeAnalysis(onr, min_nodes=2)
        assert multi.detection_probability(
            normalize=False
        ) < multi.detection_probability(normalize=True)

    def test_negative_threshold_rejected(self, onr):
        with pytest.raises(AnalysisError):
            MultiNodeAnalysis(onr).detection_probability(threshold=-1)
