"""Unit tests for repro.core.accuracy (Fig. 8 machinery)."""

import pytest
from scipy import stats

from repro.core.accuracy import (
    required_body_truncation,
    required_head_truncation,
    required_s_approach_truncation,
    required_truncation,
    stage_accuracy,
)
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


class TestStageAccuracy:
    def test_matches_binomial_cdf(self):
        assert stage_accuracy(100, 50.0, 1000.0, 3) == pytest.approx(
            float(stats.binom.cdf(3, 100, 0.05))
        )

    def test_full_truncation_is_one(self):
        assert stage_accuracy(10, 50.0, 1000.0, 10) == pytest.approx(1.0)

    def test_monotone_in_truncation(self):
        values = [stage_accuracy(100, 100.0, 1000.0, g) for g in range(6)]
        assert values == sorted(values)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            stage_accuracy(10, 1.0, 0.0, 1)
        with pytest.raises(AnalysisError):
            stage_accuracy(10, -1.0, 10.0, 1)
        with pytest.raises(AnalysisError):
            stage_accuracy(10, 20.0, 10.0, 1)
        with pytest.raises(AnalysisError):
            stage_accuracy(-1, 1.0, 10.0, 1)


class TestRequiredTruncation:
    def test_smallest_satisfying_value(self):
        target = 0.99
        g = required_truncation(100, 50.0, 1000.0, target)
        assert stage_accuracy(100, 50.0, 1000.0, g) >= target
        if g > 0:
            assert stage_accuracy(100, 50.0, 1000.0, g - 1) < target

    def test_trivial_target(self):
        assert required_truncation(100, 50.0, 1000.0, 1e-9) == 0

    def test_invalid_target_rejected(self):
        with pytest.raises(AnalysisError):
            required_truncation(10, 1.0, 10.0, 0.0)
        with pytest.raises(AnalysisError):
            required_truncation(10, 1.0, 10.0, 1.5)


class TestScenarioTruncations:
    def test_paper_working_point(self):
        # The paper runs everything at gh = g = 3; at N = 240 that yields
        # ~95.6% accuracy, so the 99% requirement must demand more than
        # plain g=3 in the head and G >> g overall (Fig. 8).
        scenario = onr_scenario(num_sensors=240, speed=10.0)
        g = required_body_truncation(scenario, 0.99)
        gh = required_head_truncation(scenario, 0.99)
        big_g = required_s_approach_truncation(scenario, 0.99)
        assert g <= gh < big_g
        assert big_g >= 6  # "when G is large, such as 6 or more" (Sec. 3.4.5)

    def test_monotone_in_node_count(self):
        counts = (60, 140, 240)
        for fn in (
            required_body_truncation,
            required_head_truncation,
            required_s_approach_truncation,
        ):
            values = [fn(onr_scenario(num_sensors=n), 0.99) for n in counts]
            assert values == sorted(values), fn.__name__

    def test_monotone_in_target(self):
        scenario = onr_scenario(num_sensors=240)
        values = [
            required_s_approach_truncation(scenario, eta)
            for eta in (0.9, 0.99, 0.999)
        ]
        assert values == sorted(values)
