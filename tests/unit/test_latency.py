"""Unit tests for repro.core.latency (exact first-passage analysis)."""

import numpy as np
import pytest

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.latency import DetectionLatencyAnalysis
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


@pytest.fixture
def latency(onr) -> DetectionLatencyAnalysis:
    return DetectionLatencyAnalysis(onr)


class TestDetectionCdf:
    def test_monotone_from_zero(self, latency):
        cdf = latency.detection_cdf()
        assert cdf[0] == 0.0
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] <= 1.0

    def test_final_value_is_window_detection_probability(self, latency, onr):
        cdf = latency.detection_cdf()
        exact = ExactSpatialAnalysis(onr).detection_probability()
        assert cdf[-1] == pytest.approx(exact, abs=1e-10)

    def test_threshold_one_rises_fast(self, onr):
        lat = DetectionLatencyAnalysis(onr)
        cdf_k1 = lat.detection_cdf(threshold=1)
        cdf_k5 = lat.detection_cdf(threshold=5)
        assert np.all(cdf_k1 >= cdf_k5 - 1e-12)

    def test_invalid_threshold_rejected(self, latency):
        with pytest.raises(AnalysisError):
            latency.detection_cdf(threshold=0)

    def test_small_window_supported(self):
        # M <= ms works (unlike the paper's decomposition).
        scenario = onr_scenario(window=3, threshold=1)
        cdf = DetectionLatencyAnalysis(scenario).detection_cdf()
        assert cdf.size == 4
        assert 0.0 < cdf[-1] < 1.0


class TestLatencyPmf:
    def test_sums_to_detection_probability(self, latency):
        pmf = latency.latency_pmf()
        cdf = latency.detection_cdf()
        assert pmf.sum() == pytest.approx(cdf[-1], abs=1e-10)
        assert pmf[0] == 0.0
        assert (pmf >= -1e-12).all()

    def test_cdf_pmf_consistency(self, latency):
        pmf = latency.latency_pmf()
        cdf = latency.detection_cdf()
        np.testing.assert_allclose(np.cumsum(pmf), cdf, atol=1e-12)


class TestExpectedLatency:
    def test_within_window(self, latency, onr):
        expected = latency.expected_latency()
        assert 1.0 <= expected <= onr.window

    def test_decreases_with_node_count(self):
        values = [
            DetectionLatencyAnalysis(
                onr_scenario(num_sensors=n)
            ).expected_latency()
            for n in (120, 180, 240)
        ]
        assert values == sorted(values, reverse=True)

    def test_increases_with_threshold(self, latency):
        assert latency.expected_latency(threshold=2) < latency.expected_latency(
            threshold=8
        )

    def test_undetectable_raises(self):
        scenario = onr_scenario(num_sensors=1, window=6, threshold=5)
        lat = DetectionLatencyAnalysis(scenario)
        # A single sensor cannot produce 5 reports in 6 periods unless it
        # covers the target for 5 periods (possible: ms + 1 = 5), so use an
        # impossible threshold instead.
        with pytest.raises(AnalysisError):
            lat.expected_latency(threshold=500)


class TestLatencyQuantile:
    def test_median_before_ninetieth(self, latency):
        median = latency.latency_quantile(0.5)
        q90 = latency.latency_quantile(0.9)
        assert median is not None and q90 is not None
        assert median <= q90

    def test_unreachable_quantile_returns_none(self):
        scenario = onr_scenario(num_sensors=60)
        lat = DetectionLatencyAnalysis(scenario)
        # At N = 60 the window detection probability is ~0.43.
        assert lat.latency_quantile(0.99) is None

    def test_invalid_quantile_rejected(self, latency):
        with pytest.raises(AnalysisError):
            latency.latency_quantile(0.0)
        with pytest.raises(AnalysisError):
            latency.latency_quantile(1.0)


class TestWindowRegionsPrefix:
    def test_prefix_regions_monotone_total(self, onr):
        from repro.core.regions import window_regions

        totals = [window_regions(onr, p).sum() for p in range(1, onr.window + 1)]
        assert totals == sorted(totals)

    def test_prefix_one_is_single_dr(self, onr):
        from repro.core.regions import window_regions

        regions = window_regions(onr, 1)
        assert regions.sum() == pytest.approx(onr.dr_area)
        # With one period, every covering sensor covers exactly 1 period.
        assert regions[1] == pytest.approx(onr.dr_area)
        assert (regions[2:] == 0.0).all()

    def test_out_of_range_rejected(self, onr):
        from repro.core.regions import window_regions

        with pytest.raises(AnalysisError):
            window_regions(onr, 0)
        with pytest.raises(AnalysisError):
            window_regions(onr, onr.window + 1)

    def test_small_window_matches_monte_carlo(self, rng):
        from repro.core.regions import window_regions
        from repro.geometry.coverage import estimate_coverage_count_areas

        scenario = onr_scenario(window=3, threshold=1)  # M = 3 < ms = 4
        regions = window_regions(scenario, 3)
        sampled = estimate_coverage_count_areas(
            scenario.sensing_range,
            scenario.step_length,
            3,
            samples=400_000,
            rng=rng,
        )
        total = regions.sum()
        for coverage, area in sampled.items():
            assert regions[coverage] / total == pytest.approx(
                area / total, abs=0.02
            ), coverage

class TestMultiBaseDelivery:
    """Multiple base stations (network substrate, not target latency)."""

    @staticmethod
    def chain_graph():
        import numpy as np

        from repro.network.graph import add_base_stations, build_connectivity_graph

        positions = np.array([[float(x), 0.0] for x in (10, 20, 30, 40, 50)])
        graph = build_connectivity_graph(positions, 11.0)
        bases = add_base_stations(graph, [(0.0, 0.0), (60.0, 0.0)], 11.0)
        return graph, bases

    def test_nearest_base_hop_counts(self):
        from repro.network.latency import hop_counts_to_nearest

        graph, bases = self.chain_graph()
        hops = hop_counts_to_nearest(graph, bases)
        # Chain 10..50 between bases at 0 and 60: hops 1,2,3,2,1.
        assert [hops[i] for i in range(5)] == [1, 2, 3, 2, 1]

    def test_more_bases_never_increase_hops(self):
        from repro.network.latency import hop_counts, hop_counts_to_nearest

        graph, bases = self.chain_graph()
        single = hop_counts(graph, bases[0])
        multi = hop_counts_to_nearest(graph, bases)
        for node, hops in multi.items():
            if node in single:
                assert hops <= single[node]

    def test_delivery_report_with_multiple_bases(self):
        from repro.network.latency import delivery_report

        graph, bases = self.chain_graph()
        report = delivery_report(
            graph, period_length=60.0, per_hop_latency=25.0, bases=bases
        )
        # Budget 2 hops: only the middle node (3 hops) misses.
        assert report.total_nodes == 5
        assert report.deliverable_nodes == 4
        assert report.max_hops == 3

    def test_empty_bases_rejected(self):
        from repro.errors import RoutingError
        from repro.network.latency import hop_counts_to_nearest

        graph, _ = self.chain_graph()
        with pytest.raises(RoutingError):
            hop_counts_to_nearest(graph, [])

    def test_unknown_base_rejected(self):
        from repro.errors import RoutingError
        from repro.network.latency import hop_counts_to_nearest

        graph, _ = self.chain_graph()
        with pytest.raises(RoutingError):
            hop_counts_to_nearest(graph, ["nope"])

    def test_add_base_stations_validation(self):
        import numpy as np

        from repro.errors import DeploymentError
        from repro.network.graph import add_base_stations, build_connectivity_graph

        graph = build_connectivity_graph(np.array([[0.0, 0.0]]), 5.0)
        with pytest.raises(DeploymentError):
            add_base_stations(graph, [], 5.0)
        with pytest.raises(DeploymentError):
            add_base_stations(graph, [(0.0, 0.0)], 0.0)
