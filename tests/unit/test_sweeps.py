"""Unit tests for repro.experiments.sweeps."""

import json

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.experiments.sweeps import grid_sweep, sweep


def _square(value):
    return {"value": value, "square": value * value}


def _pair(a, b):
    return {"a": a, "b": b}


class TestSweep:
    def test_applies_in_order(self):
        rows = sweep([1, 2, 3], lambda v: {"value": v, "square": v * v})
        assert rows == [
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
            {"value": 3, "square": 9},
        ]

    def test_empty(self):
        assert sweep([], lambda v: {}) == []

    def test_parallel_matches_serial(self):
        values = list(range(6))
        assert sweep(values, _square, workers=2) == sweep(values, _square)


class TestGridSweep:
    def test_cartesian_product_row_major(self):
        rows = grid_sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: {"a": a, "b": b},
        )
        assert rows == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_single_axis(self):
        rows = grid_sweep({"n": [10, 20]}, lambda n: {"n2": n * 2})
        assert rows == [{"n2": 20}, {"n2": 40}]

    def test_empty_grid_runs_once(self):
        rows = grid_sweep({}, lambda: {"ok": True})
        assert rows == [{"ok": True}]

    def test_parallel_preserves_row_major_order(self):
        grids = {"a": [1, 2], "b": ["x", "y"]}
        assert grid_sweep(grids, _pair, workers=2) == grid_sweep(grids, _pair)


class TestCheckpointing:
    def test_checkpoint_written_and_rows_unchanged(self, tmp_path):
        path = tmp_path / "ck.json"
        rows = sweep([1, 2, 3], _square, checkpoint=str(path))
        assert rows == sweep([1, 2, 3], _square)
        state = json.loads(path.read_text())
        assert state["version"] == 1
        assert len(state["completed"]) == 3

    def test_resume_skips_completed_points(self, tmp_path):
        path = tmp_path / "ck.json"
        calls = []

        def compute(value):
            calls.append(value)
            return {"value": value}

        sweep([1, 2, 3], compute, checkpoint=str(path))
        assert calls == [1, 2, 3]
        rows = sweep([1, 2, 3], compute, checkpoint=str(path))
        assert calls == [1, 2, 3]  # nothing recomputed
        assert rows == [{"value": 1}, {"value": 2}, {"value": 3}]

    def test_partial_checkpoint_computes_only_missing(self, tmp_path):
        path = tmp_path / "ck.json"
        calls = []

        def compute(value):
            calls.append(value)
            return {"value": value}

        sweep([1, 2, 3], compute, checkpoint=str(path))
        state = json.loads(path.read_text())
        del state["completed"]["1"]
        path.write_text(json.dumps(state))
        rows = sweep([1, 2, 3], compute, checkpoint=str(path))
        assert calls == [1, 2, 3, 2]
        assert rows == [{"value": 1}, {"value": 2}, {"value": 3}]

    def test_mismatched_sweep_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        sweep([1, 2], _square, checkpoint=str(path))
        with pytest.raises(SimulationError):
            sweep([3, 4], _square, checkpoint=str(path))

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError):
            sweep([1], _square, checkpoint=str(path))

    def test_grid_sweep_checkpoint_resume(self, tmp_path):
        path = tmp_path / "grid.json"
        grids = {"a": [1, 2], "b": [10, 20]}
        first = grid_sweep(grids, _pair, checkpoint=str(path))
        resumed = grid_sweep(grids, _pair, checkpoint=str(path))
        assert first == resumed == grid_sweep(grids, _pair)

    def test_numpy_scalar_rows_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "ck.json"

        def compute(value):
            return {
                "value": np.int64(value),
                "mean": np.float32(value) / 2,
                "hit": np.bool_(value > 1),
                "counts": np.arange(value),
            }

        rows = sweep([1, 2], compute, checkpoint=str(path))
        assert rows[1]["value"] == 2 and rows[1]["hit"]
        state = json.loads(path.read_text())
        assert state["completed"]["0"]["counts"] == [0]
        resumed = sweep([1, 2], compute, checkpoint=str(path))
        assert resumed[0]["mean"] == 0.5
        assert [row["value"] for row in resumed] == [1, 2]

    def test_unserialisable_rows_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        with pytest.raises(TypeError, match="JSON-serialisable"):
            sweep([1], lambda value: {"bad": object()}, checkpoint=str(path))

    def test_checkpoint_with_workers(self, tmp_path):
        path = tmp_path / "ck.json"
        rows = sweep(list(range(5)), _square, workers=2, checkpoint=str(path))
        assert rows == sweep(list(range(5)), _square)
        assert len(json.loads(path.read_text())["completed"]) == 5
