"""Unit tests for repro.experiments.sweeps."""

from repro.experiments.sweeps import grid_sweep, sweep


def _square(value):
    return {"value": value, "square": value * value}


def _pair(a, b):
    return {"a": a, "b": b}


class TestSweep:
    def test_applies_in_order(self):
        rows = sweep([1, 2, 3], lambda v: {"value": v, "square": v * v})
        assert rows == [
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
            {"value": 3, "square": 9},
        ]

    def test_empty(self):
        assert sweep([], lambda v: {}) == []

    def test_parallel_matches_serial(self):
        values = list(range(6))
        assert sweep(values, _square, workers=2) == sweep(values, _square)


class TestGridSweep:
    def test_cartesian_product_row_major(self):
        rows = grid_sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: {"a": a, "b": b},
        )
        assert rows == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_single_axis(self):
        rows = grid_sweep({"n": [10, 20]}, lambda n: {"n2": n * 2})
        assert rows == [{"n2": 20}, {"n2": 40}]

    def test_empty_grid_runs_once(self):
        rows = grid_sweep({}, lambda: {"ok": True})
        assert rows == [{"ok": True}]

    def test_parallel_preserves_row_major_order(self):
        grids = {"a": [1, 2], "b": ["x", "y"]}
        assert grid_sweep(grids, _pair, workers=2) == grid_sweep(grids, _pair)
