"""Unit tests for repro.experiments.sweeps."""

import json

import numpy as np
import pytest

from repro.errors import AnalysisError, SimulationError
from repro.experiments.sweeps import analytical_grid_sweep, grid_sweep, sweep


def _square(value):
    return {"value": value, "square": value * value}


def _pair(a, b):
    return {"a": a, "b": b}


class TestSweep:
    def test_applies_in_order(self):
        rows = sweep([1, 2, 3], lambda v: {"value": v, "square": v * v})
        assert rows == [
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
            {"value": 3, "square": 9},
        ]

    def test_empty(self):
        assert sweep([], lambda v: {}) == []

    def test_parallel_matches_serial(self):
        values = list(range(6))
        assert sweep(values, _square, workers=2) == sweep(values, _square)


class TestGridSweep:
    def test_cartesian_product_row_major(self):
        rows = grid_sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: {"a": a, "b": b},
        )
        assert rows == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_single_axis(self):
        rows = grid_sweep({"n": [10, 20]}, lambda n: {"n2": n * 2})
        assert rows == [{"n2": 20}, {"n2": 40}]

    def test_empty_grid_runs_once(self):
        rows = grid_sweep({}, lambda: {"ok": True})
        assert rows == [{"ok": True}]

    def test_parallel_preserves_row_major_order(self):
        grids = {"a": [1, 2], "b": ["x", "y"]}
        assert grid_sweep(grids, _pair, workers=2) == grid_sweep(grids, _pair)


class TestCheckpointing:
    def test_checkpoint_written_and_rows_unchanged(self, tmp_path):
        path = tmp_path / "ck.json"
        rows = sweep([1, 2, 3], _square, checkpoint=str(path))
        assert rows == sweep([1, 2, 3], _square)
        state = json.loads(path.read_text())
        assert state["version"] == 1
        assert len(state["completed"]) == 3

    def test_resume_skips_completed_points(self, tmp_path):
        path = tmp_path / "ck.json"
        calls = []

        def compute(value):
            calls.append(value)
            return {"value": value}

        sweep([1, 2, 3], compute, checkpoint=str(path))
        assert calls == [1, 2, 3]
        rows = sweep([1, 2, 3], compute, checkpoint=str(path))
        assert calls == [1, 2, 3]  # nothing recomputed
        assert rows == [{"value": 1}, {"value": 2}, {"value": 3}]

    def test_partial_checkpoint_computes_only_missing(self, tmp_path):
        path = tmp_path / "ck.json"
        calls = []

        def compute(value):
            calls.append(value)
            return {"value": value}

        sweep([1, 2, 3], compute, checkpoint=str(path))
        state = json.loads(path.read_text())
        del state["completed"]["1"]
        path.write_text(json.dumps(state))
        rows = sweep([1, 2, 3], compute, checkpoint=str(path))
        assert calls == [1, 2, 3, 2]
        assert rows == [{"value": 1}, {"value": 2}, {"value": 3}]

    def test_mismatched_sweep_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        sweep([1, 2], _square, checkpoint=str(path))
        with pytest.raises(SimulationError):
            sweep([3, 4], _square, checkpoint=str(path))

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError):
            sweep([1], _square, checkpoint=str(path))

    def test_grid_sweep_checkpoint_resume(self, tmp_path):
        path = tmp_path / "grid.json"
        grids = {"a": [1, 2], "b": [10, 20]}
        first = grid_sweep(grids, _pair, checkpoint=str(path))
        resumed = grid_sweep(grids, _pair, checkpoint=str(path))
        assert first == resumed == grid_sweep(grids, _pair)

    def test_numpy_scalar_rows_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "ck.json"

        def compute(value):
            return {
                "value": np.int64(value),
                "mean": np.float32(value) / 2,
                "hit": np.bool_(value > 1),
                "counts": np.arange(value),
            }

        rows = sweep([1, 2], compute, checkpoint=str(path))
        assert rows[1]["value"] == 2 and rows[1]["hit"]
        state = json.loads(path.read_text())
        assert state["completed"]["0"]["counts"] == [0]
        resumed = sweep([1, 2], compute, checkpoint=str(path))
        assert resumed[0]["mean"] == 0.5
        assert [row["value"] for row in resumed] == [1, 2]

    def test_unserialisable_rows_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        with pytest.raises(TypeError, match="JSON-serialisable"):
            sweep([1], lambda value: {"bad": object()}, checkpoint=str(path))

    def test_checkpoint_with_workers(self, tmp_path):
        path = tmp_path / "ck.json"
        rows = sweep(list(range(5)), _square, workers=2, checkpoint=str(path))
        assert rows == sweep(list(range(5)), _square)
        assert len(json.loads(path.read_text())["completed"]) == 5


class TestCanonicalisation:
    """Regression tests for checkpoint-resume type drift.

    Rows that pass through a checkpoint used to come back as plain JSON
    types while freshly-computed rows kept their numpy scalars — the
    same sweep produced different bytes depending on where the resume
    boundary fell.  ``canonical_row`` now runs on every write path, so
    fresh, resumed, and wire-delivered rows are byte-identical.
    """

    @staticmethod
    def _numpy_compute(value):
        return {
            "value": np.int64(value),
            "mean": np.float32(value) / 2,
            "hit": np.bool_(value > 1),
            "counts": np.arange(value),
        }

    def test_fresh_and_resumed_rows_byte_identical(self, tmp_path):
        path = tmp_path / "ck.json"
        fresh = sweep([1, 2, 3], self._numpy_compute, checkpoint=str(path))
        state = json.loads(path.read_text())
        del state["completed"]["1"]
        path.write_text(json.dumps(state))
        resumed = sweep([1, 2, 3], self._numpy_compute, checkpoint=str(path))
        assert json.dumps(fresh) == json.dumps(resumed)

    def test_checkpointed_rows_are_plain_json_types(self, tmp_path):
        rows = sweep(
            [2], self._numpy_compute, checkpoint=str(tmp_path / "ck.json")
        )
        assert type(rows[0]["value"]) is int
        assert type(rows[0]["mean"]) is float
        assert type(rows[0]["hit"]) is bool
        assert type(rows[0]["counts"]) is list

    def test_canonical_row_sorts_keys_and_preserves_floats(self):
        from repro.experiments.sweeps import canonical_row

        row = {"b": np.float64(0.1), "a": np.int32(7)}
        canonical = canonical_row(row)
        assert list(canonical) == ["a", "b"]
        # repr round-trip: the float value is bit-exact, not rounded.
        assert canonical["b"] == 0.1 and type(canonical["b"]) is float
        assert canonical == canonical_row(canonical)

    def test_checkpoint_bytes_independent_of_completion_order(self, tmp_path):
        from repro.experiments.sweeps import _write_checkpoint

        forward = tmp_path / "fwd.json"
        backward = tmp_path / "bwd.json"
        rows = {index: {"value": index} for index in range(4)}
        reversed_rows = dict(sorted(rows.items(), reverse=True))
        _write_checkpoint(str(forward), "f" * 64, rows)
        _write_checkpoint(str(backward), "f" * 64, reversed_rows)
        assert forward.read_bytes() == backward.read_bytes()

    def test_resumed_checkpoint_file_byte_identical_to_fresh(self, tmp_path):
        fresh_path = tmp_path / "fresh.json"
        resumed_path = tmp_path / "resumed.json"
        sweep([1, 2, 3], self._numpy_compute, checkpoint=str(fresh_path))
        state = json.loads(fresh_path.read_text())
        del state["completed"]["2"]
        resumed_path.write_text(json.dumps(state))
        sweep([1, 2, 3], self._numpy_compute, checkpoint=str(resumed_path))
        assert fresh_path.read_bytes() == resumed_path.read_bytes()


class TestAnalyticalGridSweep:
    """Batched dispatch vs per-point fallback of analytical_grid_sweep."""

    @pytest.fixture
    def scenario(self, small):
        return small

    def test_rows_row_major_with_detection_column(self, scenario):
        rows = analytical_grid_sweep(
            scenario, {"num_sensors": [20, 40], "threshold": [1, 2]}
        )
        assert [(r["num_sensors"], r["threshold"]) for r in rows] == [
            (20, 1), (20, 2), (40, 1), (40, 2),
        ]
        assert all(0.0 <= r["detection_probability"] <= 1.0 for r in rows)

    def test_batched_and_per_point_rows_byte_identical(self, scenario):
        grids = {"num_sensors": [20, 40, 60], "threshold": [1, 3]}
        batched = analytical_grid_sweep(scenario, grids)
        per_point = analytical_grid_sweep(scenario, grids, batch=False)
        assert json.dumps(batched) == json.dumps(per_point)

    def test_checkpoints_byte_identical_across_paths(self, scenario, tmp_path):
        grids = {"num_sensors": [20, 40], "threshold": [1, 2, 3]}
        batched_path = tmp_path / "batched.json"
        per_point_path = tmp_path / "per_point.json"
        analytical_grid_sweep(scenario, grids, checkpoint=str(batched_path))
        analytical_grid_sweep(
            scenario, grids, batch=False, checkpoint=str(per_point_path)
        )
        assert batched_path.read_bytes() == per_point_path.read_bytes()

    def test_resume_from_per_point_checkpoint_into_batched(
        self, scenario, tmp_path
    ):
        """The checkpoint format is path-independent, so a sweep may resume
        under the other dispatch mode."""
        grids = {"num_sensors": [20, 40], "threshold": [1, 2]}
        path = tmp_path / "ck.json"
        rows = analytical_grid_sweep(
            scenario, grids, batch=False, checkpoint=str(path)
        )
        resumed = analytical_grid_sweep(scenario, grids, checkpoint=str(path))
        assert resumed == rows

    def test_fallback_on_non_batchable_axis(self, scenario):
        rows = analytical_grid_sweep(
            scenario, {"detect_prob": [0.5, 0.9], "threshold": [2]}
        )
        assert len(rows) == 2
        assert (
            rows[0]["detection_probability"] < rows[1]["detection_probability"]
        )

    def test_batch_true_rejects_non_batchable_axis(self, scenario):
        with pytest.raises(AnalysisError, match="not batchable"):
            analytical_grid_sweep(
                scenario, {"detect_prob": [0.5]}, batch=True
            )

    def test_unknown_field_rejected(self, scenario):
        with pytest.raises(AnalysisError, match="unknown scenario field"):
            analytical_grid_sweep(scenario, {"bogus": [1]})
        with pytest.raises(AnalysisError, match="at least one"):
            analytical_grid_sweep(scenario, {})

    def test_per_point_path_supports_workers(self, scenario):
        grids = {"num_sensors": [20, 40], "threshold": [1, 2]}
        serial = analytical_grid_sweep(scenario, grids, batch=False)
        parallel = analytical_grid_sweep(
            scenario, grids, batch=False, workers=2
        )
        assert serial == parallel

    def test_normalize_false_matches_scalar(self, scenario):
        from repro.core.markov_spatial import MarkovSpatialAnalysis

        rows = analytical_grid_sweep(
            scenario, {"threshold": [2]}, normalize=False
        )
        reference = MarkovSpatialAnalysis(scenario).detection_probability(
            threshold=2, normalize=False
        )
        assert rows[0]["detection_probability"] == pytest.approx(
            reference, abs=1e-12
        )

    def test_obs_counters_for_both_paths(self, scenario):
        from repro import obs

        instrumentation = obs.Instrumentation()
        with obs.activate(instrumentation):
            analytical_grid_sweep(
                scenario, {"num_sensors": [20, 40], "threshold": [1, 2]}
            )
            analytical_grid_sweep(scenario, {"detect_prob": [0.5, 0.9]})
        counters = instrumentation.counters
        # Every point is answered by the kernel (4 from the one grid call,
        # 2 from the fallback's singleton evaluations); only the latter
        # are also counted as fallbacks.
        assert counters["batch.points"] == 6
        assert counters["batch.fallbacks"] == 2
        assert counters["sweep.points"] == 6
