"""Unit tests for the fused trials×grid Monte Carlo engine.

Pins the contracts ``repro.simulation.fused`` documents:

* the ``N = max(num_sensors)`` column is **bitwise** equal to a plain
  :class:`MonteCarloSimulator` run with the same ``(seed, batch_size)``;
* common random numbers make the grid *exactly* monotone per trial
  (non-decreasing in ``N``, non-increasing in ``k``);
* determinism, parallel sharding/merging, ``result_at`` views,
  validation errors, and the ``mc.*`` counters;
* :func:`simulated_grid_sweep` dispatch — fused vs per-point agreement
  at ``N_max``, ``mc.fallbacks`` on non-fusable axes, the ``fused=True``
  error, and checkpoint round-trips.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.errors import SimulationError
from repro.experiments.sweeps import simulated_grid_sweep
from repro.parallel import merge_fused_results
from repro.simulation import (
    FusedMonteCarloEngine,
    FusedSweepResult,
    MonteCarloSimulator,
)

TRIALS = 300
SEED = 42


@pytest.fixture
def fused_result(small):
    return FusedMonteCarloEngine(
        small,
        num_sensors=[10, 25, 50],
        thresholds=[1, 2, 4],
        trials=TRIALS,
        seed=SEED,
    ).run()


class TestFusedEngine:
    def test_axes_and_defaults(self, small):
        engine = FusedMonteCarloEngine(small, trials=TRIALS, seed=SEED)
        assert engine.num_sensors == (small.num_sensors,)
        assert engine.thresholds == (small.threshold,)
        assert engine.max_sensors == small.num_sensors
        assert engine.trials == TRIALS
        assert engine.scenario is small

    def test_grid_shapes(self, fused_result):
        assert fused_result.report_counts.shape == (TRIALS, 3)
        assert fused_result.node_counts.shape == (TRIALS, 3)
        assert fused_result.trials == TRIALS
        assert fused_result.detections_grid().shape == (3, 3)
        assert fused_result.detection_probability_grid().shape == (3, 3)
        assert fused_result.confidence_interval_grid().shape == (3, 3, 2)

    def test_max_column_bitwise_equals_plain_simulator(self, small):
        fused = FusedMonteCarloEngine(
            small,
            num_sensors=[10, 50],
            thresholds=[2],
            trials=TRIALS,
            seed=SEED,
        ).run()
        plain = MonteCarloSimulator(
            small.replace(num_sensors=50), trials=TRIALS, seed=SEED
        ).run()
        assert (fused.report_counts[:, -1] == plain.report_counts).all()
        assert (fused.node_counts[:, -1] == plain.node_counts).all()
        k = 2
        assert fused.detections_grid()[1, 0] == int(
            np.count_nonzero(plain.report_counts >= k)
        )

    def test_exact_monotonicity_per_trial(self, fused_result):
        # A prefix deployment can only lose sensors: trial by trial, not
        # merely in expectation.
        reports = fused_result.report_counts
        nodes = fused_result.node_counts
        assert (np.diff(reports, axis=1) >= 0).all()
        assert (np.diff(nodes, axis=1) >= 0).all()
        grid = fused_result.detection_probability_grid()
        assert (np.diff(grid, axis=0) >= 0).all()  # non-decreasing in N
        assert (np.diff(grid, axis=1) <= 0).all()  # non-increasing in k

    def test_deterministic_for_seed(self, small):
        runs = [
            FusedMonteCarloEngine(
                small, num_sensors=[8, 16], trials=TRIALS, seed=7
            ).run()
            for _ in range(2)
        ]
        assert (runs[0].report_counts == runs[1].report_counts).all()
        assert (runs[0].node_counts == runs[1].node_counts).all()

    def test_batch_size_changes_stream_not_statistics(self, small):
        # As on the plain runner: batching consumes the generator in a
        # different order, so only the statistics are comparable.
        a = FusedMonteCarloEngine(
            small, num_sensors=[8, 16], trials=250, seed=9, batch_size=250
        ).run()
        b = FusedMonteCarloEngine(
            small, num_sensors=[8, 16], trials=250, seed=9, batch_size=64
        ).run()
        np.testing.assert_allclose(
            a.detection_probability_grid(),
            b.detection_probability_grid(),
            atol=0.1,
        )

    def test_parallel_matches_itself(self, small):
        a = FusedMonteCarloEngine(
            small, num_sensors=[8, 16], trials=200, seed=3, workers=2
        ).run()
        b = FusedMonteCarloEngine(
            small, num_sensors=[8, 16], trials=200, seed=3
        ).run(workers=2)
        assert (a.report_counts == b.report_counts).all()
        assert a.trials == 200

    def test_result_at_views(self, small, fused_result):
        view = fused_result.result_at(1)
        assert view.scenario.num_sensors == 25
        assert (view.report_counts == fused_result.report_counts[:, 1]).all()
        assert view.detection_probability_at(2) == pytest.approx(
            fused_result.detection_probability_grid()[1, 1]
        )
        with pytest.raises(SimulationError, match="index must be in"):
            fused_result.result_at(3)

    def test_confidence_intervals_bracket_estimates(self, fused_result):
        grid = fused_result.detection_probability_grid()
        ci = fused_result.confidence_interval_grid()
        assert (ci[:, :, 0] <= grid).all()
        assert (grid <= ci[:, :, 1]).all()

    def test_counters(self, small):
        with obs.instrument() as ob:
            FusedMonteCarloEngine(
                small,
                num_sensors=[8, 16],
                thresholds=[1, 2, 3],
                trials=TRIALS,
                seed=SEED,
            ).run()
            counters = ob.manifest()["counters"]
        assert counters["mc.fused_runs"] == 1
        assert counters["mc.fused_trials"] == TRIALS
        assert counters["mc.fused_points"] == 6

    def test_validation_errors(self, small):
        with pytest.raises(SimulationError, match="must be integers"):
            FusedMonteCarloEngine(small, num_sensors=[10.5])
        with pytest.raises(SimulationError, match="must be integers"):
            FusedMonteCarloEngine(small, num_sensors=[True])
        with pytest.raises(SimulationError, match=">= 1"):
            FusedMonteCarloEngine(small, num_sensors=[0])
        with pytest.raises(SimulationError, match=">= 0"):
            FusedMonteCarloEngine(small, thresholds=[-1])
        with pytest.raises(SimulationError, match="non-empty"):
            FusedMonteCarloEngine(small, num_sensors=[])
        with pytest.raises(SimulationError, match="workers"):
            FusedMonteCarloEngine(small, workers=0)
        with pytest.raises(SimulationError, match="workers"):
            FusedMonteCarloEngine(small, trials=TRIALS).run(workers=1.5)


class TestFusedSweepResult:
    def test_shape_validation(self, small):
        good = np.zeros((5, 2), dtype=np.int64)
        with pytest.raises(SimulationError, match="report/node counts"):
            FusedSweepResult(small, (10, 20), (1,), good, np.zeros((5, 3)))
        with pytest.raises(SimulationError, match="report/node counts"):
            FusedSweepResult(
                small, (10,), (1,), np.zeros((0, 1)), np.zeros((0, 1))
            )


class TestMergeFusedResults:
    def test_concatenates_in_shard_order(self, small, fused_result):
        merged = merge_fused_results([fused_result, fused_result])
        assert merged.trials == 2 * TRIALS
        assert (
            merged.report_counts
            == np.concatenate(
                [fused_result.report_counts, fused_result.report_counts]
            )
        ).all()
        assert merged.num_sensors == fused_result.num_sensors

    def test_rejects_empty_and_mismatched(self, small, fused_result):
        with pytest.raises(SimulationError):
            merge_fused_results([])
        other = FusedMonteCarloEngine(
            small, num_sensors=[10, 25], trials=50, seed=1
        ).run()
        with pytest.raises(SimulationError):
            merge_fused_results([fused_result, other])


class TestSimulatedGridSweep:
    def test_fused_rows_row_major_with_probabilities(self, small):
        rows = simulated_grid_sweep(
            small,
            {"num_sensors": [10, 30], "threshold": [1, 3]},
            trials=TRIALS,
            seed=SEED,
        )
        assert [
            (row["num_sensors"], row["threshold"]) for row in rows
        ] == [(10, 1), (10, 3), (30, 1), (30, 3)]
        for row in rows:
            assert row["trials"] == TRIALS
            assert row["detection_probability"] == row["detections"] / TRIALS

    def test_fused_matches_per_point_at_max_n(self, small):
        grids = {"num_sensors": [10, 30], "threshold": [2]}
        fused = simulated_grid_sweep(
            small, grids, trials=TRIALS, seed=SEED, fused=True
        )
        plain = simulated_grid_sweep(
            small, grids, trials=TRIALS, seed=SEED, fused=False
        )
        assert fused[-1] == plain[-1]  # the bitwise anchor at N_max

    def test_fused_true_raises_on_nonfusable_axis(self, small):
        with pytest.raises(SimulationError, match="not fusable"):
            simulated_grid_sweep(
                small,
                {"num_sensors": [10], "detect_prob": [0.5, 0.9]},
                trials=10,
                fused=True,
            )

    def test_auto_falls_back_and_counts(self, small):
        with obs.instrument() as ob:
            rows = simulated_grid_sweep(
                small,
                {"detect_prob": [0.5, 0.9]},
                trials=50,
                seed=SEED,
            )
            counters = ob.manifest()["counters"]
        assert counters["mc.fallbacks"] == 2
        assert "mc.fused_runs" not in counters
        assert len(rows) == 2

    def test_checkpoint_roundtrip(self, small, tmp_path):
        path = tmp_path / "fused.json"
        grids = {"num_sensors": [10, 20], "threshold": [2]}
        first = simulated_grid_sweep(
            small, grids, trials=TRIALS, seed=SEED,
            fused=True, checkpoint=str(path),
        )
        assert json.loads(path.read_text())
        again = simulated_grid_sweep(
            small, grids, trials=TRIALS, seed=SEED,
            fused=True, checkpoint=str(path),
        )
        assert first == again
