"""Unit tests for stream recording and replaying."""

import json

import numpy as np
import pytest

from repro.errors import ProtocolError, StreamError
from repro.experiments.presets import small_scenario
from repro.detection.reports import DetectionReport
from repro.geometry.shapes import Point
from repro.simulation.streams import simulate_report_stream
from repro.streaming.recorder import (
    MANIFEST_SUFFIX,
    StreamRecorder,
    StreamReplayer,
    record_episode,
)


def _report(node, period, x=0.0, y=0.0):
    return DetectionReport(node, period, Point(x, y))


@pytest.fixture
def scenario():
    return small_scenario()


@pytest.fixture
def recording(tmp_path, scenario):
    path = tmp_path / "episode.jsonl"
    with StreamRecorder(path, scenario, seed=5, meta={"tag": "unit"}) as rec:
        rec.write_period(1, [_report(1, 1), _report(2, 1, 1.0, 1.0)])
        rec.write_period(2, [])
        rec.write_period(4, [_report(3, 4, 2.0, 2.0)])
    manifest = rec.close()
    return path, manifest


class TestRecorder:
    def test_manifest_contents(self, recording, scenario):
        path, manifest = recording
        assert manifest["periods"] == 4
        assert manifest["total_reports"] == 3
        assert manifest["seed"] == 5
        assert manifest["meta"] == {"tag": "unit"}
        assert manifest["scenario"] == scenario.to_dict()
        assert len(manifest["event_digest"]) == 64
        assert len(manifest["frame_digest"]) == 64
        sidecar = path.with_name(path.name + MANIFEST_SUFFIX)
        assert json.loads(sidecar.read_text()) == manifest

    def test_close_is_idempotent(self, recording):
        _, manifest = recording

        # The fixture closed once via the context manager and once
        # explicitly; a recorder must return the same manifest both times.
        assert manifest["periods"] == 4

    def test_write_after_close_raises(self, recording, scenario, tmp_path):
        path = tmp_path / "again.jsonl"
        recorder = StreamRecorder(path, scenario)
        recorder.close()
        with pytest.raises(StreamError):
            recorder.write_period(1, [])

    def test_out_of_order_periods_rejected_at_write(self, tmp_path, scenario):
        recorder = StreamRecorder(tmp_path / "bad.jsonl", scenario)
        recorder.write_period(3, [])
        with pytest.raises(ProtocolError):
            recorder.write_period(2, [])

    def test_same_inputs_produce_byte_identical_recordings(
        self, tmp_path, scenario
    ):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            with StreamRecorder(path, scenario, seed=9) as rec:
                rec.write_period(1, [_report(1, 1)])
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestReplayer:
    def test_replay_exposes_the_recorded_stream(self, recording):
        path, manifest = recording
        replayer = StreamReplayer(path)
        recorded = replayer.recorded
        assert [p for p, _ in recorded.periods] == [1, 2, 4]
        assert recorded.total_reports == 3
        assert recorded.seed == 5
        assert recorded.meta == {"tag": "unit"}
        assert replayer.frame_digest == manifest["frame_digest"]

    def test_corrupted_bytes_fail_the_manifest_check(self, recording):
        path, _ = recording
        data = path.read_bytes()
        path.write_bytes(data.replace(b'"seq":1', b'"seq":1 ', 1))
        with pytest.raises(StreamError):
            StreamReplayer(path)

    def test_tampered_event_digest_fails(self, recording):
        path, manifest = recording
        sidecar = path.with_name(path.name + MANIFEST_SUFFIX)
        tampered = dict(manifest, event_digest="0" * 64)
        # Keep frame_digest valid so the behavioural check is what trips.
        sidecar.write_text(json.dumps(tampered))
        with pytest.raises(StreamError) as excinfo:
            StreamReplayer(path)
        assert "event digest" in str(excinfo.value)

    def test_verify_can_be_disabled(self, recording):
        path, manifest = recording
        sidecar = path.with_name(path.name + MANIFEST_SUFFIX)
        sidecar.write_text(json.dumps(dict(manifest, frame_digest="0" * 64)))
        replayer = StreamReplayer(path, verify_manifest=False)
        assert replayer.recorded.total_reports == 3

    def test_missing_manifest_is_tolerated(self, recording):
        path, _ = recording
        path.with_name(path.name + MANIFEST_SUFFIX).unlink()
        replayer = StreamReplayer(path)
        assert replayer.manifest is None

    def test_missing_file_is_a_stream_error(self, tmp_path):
        with pytest.raises(StreamError):
            StreamReplayer(tmp_path / "nope.jsonl")

    def test_rerecord_round_trip_byte_identical(self, recording, tmp_path):
        path, _ = recording
        copy = tmp_path / "copy.jsonl"
        StreamReplayer(path).rerecord(copy)
        assert copy.read_bytes() == path.read_bytes()


class TestRecordEpisode:
    def test_simulated_episode_round_trip(self, tmp_path, scenario):
        episode = simulate_report_stream(
            scenario, rng=np.random.default_rng(5)
        )
        path = tmp_path / "sim.jsonl"
        manifest = record_episode(episode, path, seed=5)
        assert manifest["total_reports"] == episode.total_report_count
        meta = manifest["meta"]
        assert meta["true_report_count"] == episode.true_report_count
        assert meta["false_report_count"] == episode.false_report_count
        replayed = StreamReplayer(path).recorded
        assert replayed.total_reports == episode.total_report_count
        assert replayed.scenario == scenario
