"""Unit tests for repro.experiments.plotting."""

import pytest

from repro.experiments.plotting import ascii_plot, plot_record
from repro.experiments.records import ExperimentRecord


class TestAsciiPlot:
    def test_single_series_renders(self):
        chart = ascii_plot({"line": [(0, 0), (1, 1), (2, 4)]})
        assert "o line" in chart
        assert "|" in chart and "+" in chart

    def test_extremes_labelled(self):
        chart = ascii_plot({"s": [(0, 0.25), (10, 0.75)]})
        assert "0.75" in chart
        assert "0.25" in chart
        assert "10" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}
        )
        assert "o a" in chart and "x b" in chart

    def test_marker_positions_monotone_series(self):
        chart = ascii_plot({"up": [(0, 0), (1, 1)]}, width=10, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_row_with_marker = next(i for i, r in enumerate(rows) if "o" in r)
        last_row_with_marker = max(i for i, r in enumerate(rows) if "o" in r)
        # Higher y values appear in earlier (upper) rows.
        assert first_row_with_marker < last_row_with_marker

    def test_constant_series_supported(self):
        chart = ascii_plot({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "o" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"empty": []})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [(0, i)] for i in range(9)}
        with pytest.raises(ValueError):
            ascii_plot(series)

    def test_too_small_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 0)]}, width=2, height=2)


class TestPlotRecord:
    @pytest.fixture
    def record(self) -> ExperimentRecord:
        record = ExperimentRecord("X", "demo title")
        record.add_row(n=60, analysis=0.4, simulation=0.41, speed=4.0)
        record.add_row(n=120, analysis=0.6, simulation=0.62, speed=4.0)
        record.add_row(n=60, analysis=0.5, simulation=0.51, speed=10.0)
        record.add_row(n=120, analysis=0.8, simulation=0.79, speed=10.0)
        return record

    def test_grouped_series(self, record):
        chart = plot_record(
            record, "n", ["analysis", "simulation"], group_by="speed"
        )
        assert "analysis (speed=4.0)" in chart
        assert "simulation (speed=10.0)" in chart
        assert "demo title" in chart

    def test_ungrouped(self, record):
        chart = plot_record(record, "n", ["analysis"])
        assert "analysis" in chart

    def test_non_numeric_cells_skipped(self):
        record = ExperimentRecord("X", "t")
        record.add_row(n=1, value=0.5)
        record.add_row(n=2, value="-")
        chart = plot_record(record, "n", ["value"])
        assert "value" in chart
