"""Unit tests for repro.core.sensitivity."""

import pytest

from repro.core.sensitivity import SensitivityReport, parameter_elasticities
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


@pytest.fixture(scope="module")
def report() -> SensitivityReport:
    return parameter_elasticities(onr_scenario(num_sensors=150))


class TestParameterElasticities:
    def test_all_continuous_parameters_present(self, report):
        assert set(report.elasticities) == {
            "num_sensors",
            "sensing_range",
            "target_speed",
            "detect_prob",
        }

    def test_all_positive_in_unsaturated_regime(self, report):
        for name, value in report.elasticities.items():
            assert value > 0.0, name

    def test_range_is_strongest_knob(self, report):
        assert report.ranked_parameters()[0] == "sensing_range"

    def test_window_helps_threshold_hurts(self, report):
        assert report.window_step_effect > 0.0
        assert report.threshold_step_effect < 0.0

    def test_elasticity_predicts_small_changes(self, report):
        """The elasticity linearises the model: a 5% bump in N should move
        P by about e_N * 5%."""
        from repro.core.markov_spatial import MarkovSpatialAnalysis

        scenario = report.scenario
        bumped = scenario.replace(
            num_sensors=round(scenario.num_sensors * 1.05)
        )
        actual = MarkovSpatialAnalysis(bumped, 3).detection_probability()
        predicted = report.detection_probability * (
            1.05 ** report.elasticities["num_sensors"]
        )
        assert actual == pytest.approx(predicted, rel=0.01)

    def test_saturation_shrinks_elasticities(self):
        sparse = parameter_elasticities(onr_scenario(num_sensors=90))
        saturated = parameter_elasticities(onr_scenario(num_sensors=240))
        for name in sparse.elasticities:
            assert saturated.elasticities[name] < sparse.elasticities[name], name

    def test_invalid_rel_step_rejected(self):
        with pytest.raises(AnalysisError):
            parameter_elasticities(onr_scenario(), rel_step=0.0)
        with pytest.raises(AnalysisError):
            parameter_elasticities(onr_scenario(), rel_step=0.9)

    def test_integer_perturbation_always_moves(self):
        # Small fleets: 5% of 20 rounds to 1 sensor; must still perturb.
        scenario = onr_scenario(num_sensors=20, threshold=1)
        report = parameter_elasticities(scenario)
        assert report.elasticities["num_sensors"] > 0.0
