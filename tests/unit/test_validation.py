"""Unit tests for repro.experiments.validation."""

import pytest

from repro.experiments.validation import (
    ValidationCheck,
    ValidationSummary,
    run_validation,
)


class TestValidationSummary:
    def test_passed_requires_all_checks(self):
        summary = ValidationSummary(
            checks=[
                ValidationCheck("a", True, "ok"),
                ValidationCheck("b", True, "ok"),
            ]
        )
        assert summary.passed
        summary.checks.append(ValidationCheck("c", False, "broken"))
        assert not summary.passed

    def test_render_contains_verdict_and_details(self):
        summary = ValidationSummary(
            checks=[ValidationCheck("thing", False, "went wrong")],
            elapsed_seconds=1.5,
        )
        text = summary.render()
        assert "[FAIL] thing: went wrong" in text
        assert "REPRODUCTION BROKEN" in text
        assert "0/1 checks" in text

    def test_render_ok_verdict(self):
        summary = ValidationSummary(
            checks=[ValidationCheck("thing", True, "fine")]
        )
        assert "REPRODUCTION OK" in summary.render()


class TestRunValidation:
    @pytest.fixture(scope="class")
    def summary(self) -> ValidationSummary:
        return run_validation(trials=800, seed=3)

    def test_all_checks_pass(self, summary):
        assert summary.passed, summary.render()

    def test_covers_the_headline_claims(self, summary):
        names = " ".join(check.name for check in summary.checks)
        assert "engines" in names
        assert "oracle" in names
        assert "Fig. 9a" in names
        assert "Fig. 8" in names
        assert "runtime" in names

    def test_reports_elapsed_time(self, summary):
        assert summary.elapsed_seconds > 0.0


class TestValidateCli:
    def test_cli_exit_code_and_output(self, capsys):
        from repro.experiments.cli import main

        assert main(["validate", "--trials", "500", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCTION OK" in out
