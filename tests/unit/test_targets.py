"""Unit tests for repro.simulation.targets."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.targets import (
    RandomWalkTarget,
    StraightLineTarget,
    WaypointTarget,
)


@pytest.fixture
def starts() -> np.ndarray:
    return np.array([[0.0, 0.0], [100.0, 50.0], [10.0, 10.0]])


class TestStraightLineTarget:
    def test_shapes(self, starts, rng):
        waypoints = StraightLineTarget(5.0).sample_waypoints(starts, 8, 10.0, rng)
        assert waypoints.shape == (3, 9, 2)

    def test_step_length_constant(self, starts, rng):
        waypoints = StraightLineTarget(5.0).sample_waypoints(starts, 8, 10.0, rng)
        steps = np.linalg.norm(np.diff(waypoints, axis=1), axis=2)
        np.testing.assert_allclose(steps, 50.0)

    def test_collinear(self, starts, rng):
        waypoints = StraightLineTarget(5.0).sample_waypoints(starts, 6, 10.0, rng)
        # Cross product of successive steps is zero for straight motion.
        deltas = np.diff(waypoints, axis=1)
        cross = (
            deltas[:, :-1, 0] * deltas[:, 1:, 1]
            - deltas[:, :-1, 1] * deltas[:, 1:, 0]
        )
        np.testing.assert_allclose(cross, 0.0, atol=1e-6)

    def test_fixed_heading(self, starts, rng):
        waypoints = StraightLineTarget(2.0, heading=0.0).sample_waypoints(
            starts, 4, 5.0, rng
        )
        np.testing.assert_allclose(
            waypoints[:, :, 1], np.repeat(starts[:, 1:2], 5, axis=1)
        )
        np.testing.assert_allclose(
            waypoints[0, :, 0], [0.0, 10.0, 20.0, 30.0, 40.0]
        )

    def test_starts_preserved(self, starts, rng):
        waypoints = StraightLineTarget(5.0).sample_waypoints(starts, 3, 10.0, rng)
        np.testing.assert_allclose(waypoints[:, 0, :], starts)

    def test_invalid_speed_rejected(self):
        with pytest.raises(SimulationError):
            StraightLineTarget(0.0)

    def test_invalid_batch_rejected(self, rng):
        target = StraightLineTarget(5.0)
        with pytest.raises(SimulationError):
            target.sample_waypoints(np.zeros((3, 3)), 4, 10.0, rng)
        with pytest.raises(SimulationError):
            target.sample_waypoints(np.zeros((3, 2)), 0, 10.0, rng)
        with pytest.raises(SimulationError):
            target.sample_waypoints(np.zeros((3, 2)), 4, 0.0, rng)


class TestRandomWalkTarget:
    def test_step_length_constant(self, starts, rng):
        waypoints = RandomWalkTarget(5.0).sample_waypoints(starts, 10, 10.0, rng)
        steps = np.linalg.norm(np.diff(waypoints, axis=1), axis=2)
        np.testing.assert_allclose(steps, 50.0)

    def test_turns_bounded(self, starts, rng):
        max_turn = np.pi / 4.0
        waypoints = RandomWalkTarget(5.0, max_turn=max_turn).sample_waypoints(
            starts, 20, 10.0, rng
        )
        deltas = np.diff(waypoints, axis=1)
        headings = np.arctan2(deltas[..., 1], deltas[..., 0])
        turns = np.diff(headings, axis=1)
        turns = (turns + np.pi) % (2 * np.pi) - np.pi
        assert np.abs(turns).max() <= max_turn + 1e-9

    def test_zero_turn_is_straight(self, starts, rng):
        walk = RandomWalkTarget(5.0, max_turn=0.0, initial_heading=0.3)
        line = StraightLineTarget(5.0, heading=0.3)
        np.testing.assert_allclose(
            walk.sample_waypoints(starts, 5, 10.0, rng),
            line.sample_waypoints(starts, 5, 10.0, rng),
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            RandomWalkTarget(0.0)
        with pytest.raises(SimulationError):
            RandomWalkTarget(1.0, max_turn=-0.1)


class TestWaypointTarget:
    def test_tiles_fixed_path(self, starts, rng):
        path = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        waypoints = WaypointTarget(path).sample_waypoints(starts, 2, 10.0, rng)
        assert waypoints.shape == (3, 3, 2)
        for b in range(3):
            np.testing.assert_allclose(waypoints[b], path)

    def test_wrong_length_rejected(self, starts, rng):
        path = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(SimulationError):
            WaypointTarget(path).sample_waypoints(starts, 5, 10.0, rng)

    def test_bad_path_rejected(self):
        with pytest.raises(SimulationError):
            WaypointTarget(np.array([[0.0, 0.0]]))
        with pytest.raises(SimulationError):
            WaypointTarget(np.zeros((3, 3)))

    def test_result_is_writable_copy(self, starts, rng):
        path = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        target = WaypointTarget(path)
        waypoints = target.sample_waypoints(starts, 2, 10.0, rng)
        waypoints[0, 0, 0] = 99.0
        assert target.waypoints[0, 0] == 0.0


class TestVaryingSpeedTarget:
    def test_speeds_within_range(self, starts, rng):
        from repro.simulation.targets import VaryingSpeedTarget

        target = VaryingSpeedTarget(4.0, 16.0)
        waypoints = target.sample_waypoints(starts, 12, 10.0, rng)
        steps = np.linalg.norm(np.diff(waypoints, axis=1), axis=2) / 10.0
        assert steps.min() >= 4.0
        assert steps.max() <= 16.0

    def test_zero_spread_matches_straight_line(self, starts, rng):
        from repro.simulation.targets import StraightLineTarget, VaryingSpeedTarget

        varying = VaryingSpeedTarget(5.0, 5.0, initial_heading=0.7)
        straight = StraightLineTarget(5.0, heading=0.7)
        np.testing.assert_allclose(
            varying.sample_waypoints(starts, 6, 10.0, rng),
            straight.sample_waypoints(starts, 6, 10.0, rng),
        )

    def test_straight_when_no_turning(self, starts, rng):
        from repro.simulation.targets import VaryingSpeedTarget

        target = VaryingSpeedTarget(2.0, 8.0)
        waypoints = target.sample_waypoints(starts, 8, 10.0, rng)
        deltas = np.diff(waypoints, axis=1)
        cross = (
            deltas[:, :-1, 0] * deltas[:, 1:, 1]
            - deltas[:, :-1, 1] * deltas[:, 1:, 0]
        )
        np.testing.assert_allclose(cross, 0.0, atol=1e-6)

    def test_turning_bounded(self, starts, rng):
        from repro.simulation.targets import VaryingSpeedTarget

        target = VaryingSpeedTarget(2.0, 8.0, max_turn=0.3)
        waypoints = target.sample_waypoints(starts, 15, 10.0, rng)
        deltas = np.diff(waypoints, axis=1)
        headings = np.arctan2(deltas[..., 1], deltas[..., 0])
        turns = np.diff(headings, axis=1)
        turns = (turns + np.pi) % (2 * np.pi) - np.pi
        assert np.abs(turns).max() <= 0.3 + 1e-9

    def test_mean_speed(self):
        from repro.simulation.targets import VaryingSpeedTarget

        assert VaryingSpeedTarget(4.0, 16.0).mean_speed == 10.0

    def test_invalid_parameters_rejected(self):
        from repro.errors import SimulationError
        from repro.simulation.targets import VaryingSpeedTarget

        with pytest.raises(SimulationError):
            VaryingSpeedTarget(0.0, 5.0)
        with pytest.raises(SimulationError):
            VaryingSpeedTarget(5.0, 4.0)
        with pytest.raises(SimulationError):
            VaryingSpeedTarget(2.0, 5.0, max_turn=-1.0)
