"""Unit tests for the report-stream wire protocol."""

import json

import pytest

from repro.errors import ProtocolError, StreamError
from repro.experiments.presets import small_scenario
from repro.streaming import protocol


def _session_frames(scenario=None, seed=3):
    scenario = scenario or small_scenario()
    hello = protocol.hello_frame(scenario, seed=seed)
    reports = protocol.reports_frame(1, 1, [])
    end = protocol.end_frame(2, periods=1, total_reports=0)
    return hello, reports, end


class TestEncoding:
    def test_encode_frame_is_canonical_one_line_json(self):
        encoded = protocol.encode_frame({"b": 1, "a": 2, "type": "x"})
        assert encoded == b'{"a":2,"b":1,"type":"x"}\n'

    def test_session_id_is_deterministic_and_seed_sensitive(self):
        assert protocol.session_id("abc", 1) == protocol.session_id("abc", 1)
        assert protocol.session_id("abc", 1) != protocol.session_id("abc", 2)
        assert len(protocol.session_id("abc", 1)) == 12

    def test_reports_wire_round_trip(self):
        from repro.detection.reports import DetectionReport
        from repro.geometry.shapes import Point

        reports = [
            DetectionReport(4, 7, Point(1.5, -2.0)),
            DetectionReport(9, 7, Point(0.0, 3.25)),
        ]
        wire = protocol.reports_to_wire(reports)
        assert wire == [[4, 1.5, -2.0], [9, 0.0, 3.25]]
        back = protocol.reports_from_wire(wire, 7)
        assert back == reports

    @pytest.mark.parametrize(
        "wire",
        [
            "nope",
            [[1, 2]],
            [[1, 2, 3, 4]],
            [["a", 1.0, 2.0]],
            [[True, 1.0, 2.0]],
            [[1.5, 1.0, 2.0]],
            [[1, "x", 2.0]],
        ],
    )
    def test_malformed_wire_reports_raise_typed_error(self, wire):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.reports_from_wire(wire, 1)
        assert excinfo.value.code == "reports"


class TestFrameDecoder:
    def test_frames_split_across_arbitrary_boundaries(self):
        frames = [{"type": "a", "n": i} for i in range(5)]
        data = b"".join(protocol.encode_frame(f) for f in frames)
        for chunk_size in (1, 2, 3, 7, len(data)):
            decoder = protocol.FrameDecoder()
            out = []
            for i in range(0, len(data), chunk_size):
                out.extend(decoder.feed(data[i : i + chunk_size]))
            assert out == frames
            assert decoder.buffered_bytes == 0

    def test_oversized_line_with_newline_is_rejected(self):
        decoder = protocol.FrameDecoder(max_frame_bytes=64)
        with pytest.raises(ProtocolError) as excinfo:
            decoder.feed(b'{"pad":"' + b"x" * 100 + b'"}\n')
        assert excinfo.value.code == "oversized"

    def test_oversized_line_without_newline_does_not_buffer_forever(self):
        decoder = protocol.FrameDecoder(max_frame_bytes=64)
        decoder.feed(b"x" * 64)  # at the cap: still waiting
        with pytest.raises(ProtocolError) as excinfo:
            decoder.feed(b"y")  # one byte over, still no newline
        assert excinfo.value.code == "oversized"

    def test_non_json_line_is_a_typed_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.FrameDecoder().feed(b"not json\n")
        assert excinfo.value.code == "json"

    def test_non_object_json_is_a_typed_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.FrameDecoder().feed(b"[1,2,3]\n")
        assert excinfo.value.code == "json"

    def test_blank_lines_are_ignored(self):
        decoder = protocol.FrameDecoder()
        assert decoder.feed(b"\n  \n" + protocol.encode_frame({"a": 1})) == [
            {"a": 1}
        ]


class TestSessionValidator:
    def test_valid_session_passes(self):
        validator = protocol.SessionValidator()
        for frame in _session_frames():
            assert validator.validate(frame) is frame
        assert validator.ended
        assert validator.total_reports == 0

    def test_first_frame_must_be_hello(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.SessionValidator().validate(protocol.heartbeat_frame(1))
        assert excinfo.value.code == "handshake"

    def test_duplicate_hello_rejected(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate(dict(hello))
        assert excinfo.value.code == "handshake"

    def test_unsupported_protocol_version(self):
        hello, _, _ = _session_frames()
        hello = dict(hello, protocol=99)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.SessionValidator().validate(hello)
        assert excinfo.value.code == "version"

    def test_fingerprint_must_match_scenario(self):
        hello, _, _ = _session_frames()
        hello = dict(hello, fingerprint="0" * 64)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.SessionValidator().validate(hello)
        assert excinfo.value.code == "fingerprint"

    def test_seq_must_increment_by_exactly_one(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        validator.validate(protocol.reports_frame(1, 1, []))
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate(protocol.reports_frame(3, 2, []))
        assert excinfo.value.code == "seq"

    def test_duplicated_seq_rejected(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        validator.validate(protocol.reports_frame(1, 1, []))
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate(protocol.reports_frame(1, 2, []))
        assert excinfo.value.code == "seq"

    def test_periods_strictly_increasing(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        validator.validate(protocol.reports_frame(1, 5, []))
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate(protocol.reports_frame(2, 5, []))
        assert excinfo.value.code == "period"

    def test_unknown_frame_type(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate({"type": "mystery", "seq": 1})
        assert excinfo.value.code == "type"

    def test_end_report_count_cross_check(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        validator.validate(protocol.reports_frame(1, 1, []))
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate(
                protocol.end_frame(2, periods=1, total_reports=5)
            )
        assert excinfo.value.code == "end"

    def test_nothing_after_end(self):
        validator = protocol.SessionValidator()
        for frame in _session_frames():
            validator.validate(frame)
        with pytest.raises(ProtocolError) as excinfo:
            validator.validate(protocol.heartbeat_frame(3))
        assert excinfo.value.code == "trailing"

    def test_heartbeats_advance_seq_but_not_period(self):
        validator = protocol.SessionValidator()
        hello, _, _ = _session_frames()
        validator.validate(hello)
        validator.validate(protocol.reports_frame(1, 1, []))
        validator.validate(protocol.heartbeat_frame(2))
        validator.validate(protocol.reports_frame(3, 2, []))
        assert validator.last_period == 2


class TestDecodeSession:
    def test_round_trip(self):
        scenario = small_scenario()
        frames = _session_frames(scenario)
        data = b"".join(protocol.encode_frame(f) for f in frames)
        hello, rest = protocol.decode_session(data)
        assert hello["fingerprint"] == frames[0]["fingerprint"]
        assert [f["type"] for f in rest] == ["reports", "end"]

    def test_missing_end_is_an_error(self):
        hello, reports, _ = _session_frames()
        data = protocol.encode_frame(hello) + protocol.encode_frame(reports)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_session(data)
        assert excinfo.value.code == "end"

    def test_trailing_bytes_are_an_error(self):
        frames = _session_frames()
        data = b"".join(protocol.encode_frame(f) for f in frames)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_session(data + b"garbage-without-newline")
        assert excinfo.value.code == "trailing"

    def test_empty_session_is_an_error(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_session(b"")
        assert excinfo.value.code == "handshake"

    def test_protocol_error_is_stream_error(self):
        with pytest.raises(StreamError):
            protocol.decode_session(b"")
