"""Unit tests for repro.geometry.circle_math."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.circle_math import (
    chord_half_length,
    circle_area,
    circle_lens_area,
    circular_segment_area,
)


class TestCircleArea:
    def test_unit_circle(self):
        assert circle_area(1.0) == pytest.approx(math.pi)

    def test_zero_radius(self):
        assert circle_area(0.0) == 0.0

    def test_scales_quadratically(self):
        assert circle_area(2.0) == pytest.approx(4.0 * circle_area(1.0))

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            circle_area(-1.0)


class TestLensArea:
    def test_coincident_circles_give_full_disc(self):
        assert circle_lens_area(0.0, 3.0) == pytest.approx(math.pi * 9.0)

    def test_disjoint_circles_give_zero(self):
        assert circle_lens_area(6.0, 3.0) == 0.0
        assert circle_lens_area(100.0, 3.0) == 0.0

    def test_touching_circles_give_zero(self):
        assert circle_lens_area(2.0, 1.0) == 0.0

    def test_monotone_decreasing_in_distance(self):
        radius = 5.0
        values = [circle_lens_area(d, radius) for d in (0.0, 1.0, 3.0, 7.0, 9.9)]
        assert values == sorted(values, reverse=True)

    def test_known_value_half_radius_apart(self):
        # d = r: A = 2 r^2 acos(1/2) - r * sqrt(3)/2 * r = r^2 (2*pi/3 - sqrt(3)/2)
        r = 2.0
        expected = r * r * (2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0)
        assert circle_lens_area(r, r) == pytest.approx(expected)

    def test_zero_radius(self):
        assert circle_lens_area(0.0, 0.0) == 0.0

    def test_negative_arguments_rejected(self):
        with pytest.raises(GeometryError):
            circle_lens_area(-1.0, 2.0)
        with pytest.raises(GeometryError):
            circle_lens_area(1.0, -2.0)

    def test_matches_two_segment_decomposition(self):
        # The lens is two equal circular segments with chord distance d/2.
        d, r = 3.0, 2.5
        assert circle_lens_area(d, r) == pytest.approx(
            2.0 * circular_segment_area(r, d / 2.0)
        )


class TestCircularSegmentArea:
    def test_chord_through_center_is_half_disc(self):
        assert circular_segment_area(2.0, 0.0) == pytest.approx(math.pi * 2.0)

    def test_chord_at_radius_is_zero(self):
        assert circular_segment_area(2.0, 2.0) == pytest.approx(0.0)

    def test_monotone_decreasing_in_chord_distance(self):
        values = [circular_segment_area(1.0, c) for c in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_chord_outside_circle_rejected(self):
        with pytest.raises(GeometryError):
            circular_segment_area(1.0, 1.5)

    def test_negative_arguments_rejected(self):
        with pytest.raises(GeometryError):
            circular_segment_area(-1.0, 0.0)
        with pytest.raises(GeometryError):
            circular_segment_area(1.0, -0.5)

    def test_zero_radius(self):
        assert circular_segment_area(0.0, 0.0) == 0.0


class TestChordHalfLength:
    def test_through_center(self):
        assert chord_half_length(5.0, 0.0) == pytest.approx(5.0)

    def test_at_edge(self):
        assert chord_half_length(5.0, 5.0) == pytest.approx(0.0)

    def test_pythagoras(self):
        assert chord_half_length(5.0, 3.0) == pytest.approx(4.0)

    def test_outside_rejected(self):
        with pytest.raises(GeometryError):
            chord_half_length(1.0, 2.0)

    def test_negative_rejected(self):
        with pytest.raises(GeometryError):
            chord_half_length(-1.0, 0.0)
        with pytest.raises(GeometryError):
            chord_half_length(1.0, -0.1)
