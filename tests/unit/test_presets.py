"""Unit tests for repro.experiments.presets."""

import pytest

from repro.experiments.presets import (
    ONR_COMMUNICATION_RANGE,
    onr_scenario,
    small_scenario,
)


class TestOnrScenario:
    def test_paper_parameters(self):
        scenario = onr_scenario()
        assert scenario.field.width == scenario.field.height == 32_000.0
        assert scenario.num_sensors == 240
        assert scenario.sensing_range == 1_000.0
        assert scenario.target_speed == 10.0
        assert scenario.sensing_period == 60.0
        assert scenario.detect_prob == 0.9
        assert scenario.window == 20
        assert scenario.threshold == 5

    def test_communication_exceeds_twice_sensing(self):
        # The sparse-deployment condition from Section 1.
        assert ONR_COMMUNICATION_RANGE > 2 * onr_scenario().sensing_range

    def test_overridable(self):
        scenario = onr_scenario(num_sensors=60, speed=4.0, detect_prob=0.8)
        assert scenario.num_sensors == 60
        assert scenario.target_speed == 4.0
        assert scenario.detect_prob == 0.8

    def test_extra_override_kwargs(self):
        scenario = onr_scenario(sensing_range=500.0)
        assert scenario.sensing_range == 500.0


class TestSmallScenario:
    def test_same_ms_as_onr(self):
        assert small_scenario().ms == onr_scenario().ms

    def test_is_fast(self):
        scenario = small_scenario()
        assert scenario.num_sensors <= 50
        assert scenario.field.area < onr_scenario().field.area

    def test_sparse(self):
        scenario = small_scenario()
        assert scenario.aregion_area < 0.2 * scenario.field.area

    def test_overridable(self):
        assert small_scenario(threshold=4).threshold == 4
