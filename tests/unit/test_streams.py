"""Unit tests for repro.simulation.streams."""

import numpy as np
import pytest

from repro.detection.group import GroupDetector
from repro.errors import SimulationError
from repro.simulation.streams import ReportStreamEpisode, simulate_report_stream


class TestSimulateReportStream:
    def test_episode_shape(self, small):
        episode = simulate_report_stream(small, rng=1)
        assert episode.sensor_positions.shape == (small.num_sensors, 2)
        assert episode.waypoints.shape == (small.window + 1, 2)
        assert len(episode.periods) == small.window

    def test_reports_carry_matching_periods(self, small):
        episode = simulate_report_stream(small, rng=2)
        for period, reports in episode.stream():
            for report in reports:
                assert report.period == period
                assert 0 <= report.node_id < small.num_sensors

    def test_report_positions_match_sensors(self, small):
        episode = simulate_report_stream(small, rng=3)
        for _, reports in episode.stream():
            for report in reports:
                sensor = episode.sensor_positions[report.node_id]
                assert report.position.x == pytest.approx(sensor[0])
                assert report.position.y == pytest.approx(sensor[1])

    def test_counts_consistent(self, small):
        episode = simulate_report_stream(small, rng=4, false_alarm_prob=0.01)
        total = sum(len(reports) for _, reports in episode.stream())
        assert total == episode.total_report_count
        assert episode.false_report_count > 0

    def test_quiet_episode_has_no_true_reports(self, small):
        episode = simulate_report_stream(
            small, rng=5, target_present=False, false_alarm_prob=0.01
        )
        assert episode.true_report_count == 0
        assert episode.waypoints is None

    def test_quiet_episode_without_noise_is_silent(self, small):
        episode = simulate_report_stream(small, rng=6, target_present=False)
        assert episode.total_report_count == 0

    def test_fixed_start(self, small):
        start = np.array([100.0, 200.0])
        episode = simulate_report_stream(small, rng=7, start=start)
        np.testing.assert_allclose(episode.waypoints[0], start)

    def test_seed_reproducibility(self, small):
        a = simulate_report_stream(small, rng=8)
        b = simulate_report_stream(small, rng=8)
        np.testing.assert_array_equal(a.sensor_positions, b.sensor_positions)
        assert a.true_report_count == b.true_report_count

    def test_invalid_false_alarm_prob_rejected(self, small):
        with pytest.raises(SimulationError):
            simulate_report_stream(small, false_alarm_prob=1.0)


class TestStreamFeedsDetector:
    def test_detector_consumes_episode(self, small):
        episode = simulate_report_stream(small, rng=9)
        detector = GroupDetector(small.window, small.threshold)
        fired = detector.process_stream(episode.stream())
        expected = episode.true_report_count >= small.threshold
        assert fired == expected

    def test_detection_rate_matches_runner(self, small):
        """Stream-based episodes reproduce the runner's detection rate."""
        from repro.simulation.runner import MonteCarloSimulator

        episodes = 400
        rng = np.random.default_rng(77)
        hits = sum(
            simulate_report_stream(small, rng=rng).true_report_count
            >= small.threshold
            for _ in range(episodes)
        )
        stream_rate = hits / episodes
        runner_rate = (
            MonteCarloSimulator(small, trials=4000, seed=78, boundary="clip")
            .run()
            .detection_probability
        )
        assert stream_rate == pytest.approx(runner_rate, abs=0.06)
