"""Unit tests for repro.core.regions (Eqs. 6, 8, 10)."""

import math

import numpy as np
import pytest

from repro.core.regions import (
    area_b,
    area_h_closed_form,
    area_h_literal,
    area_t,
    body_subareas,
    head_subareas,
    s_approach_regions,
    tail_subareas,
)
from repro.errors import AnalysisError, GeometryError
from repro.experiments.presets import onr_scenario


class TestAreaH:
    def test_literal_matches_closed_form_fast_target(self):
        literal = area_h_literal(1000.0, 600.0, 4)
        closed = area_h_closed_form(1000.0, 600.0, 4)
        np.testing.assert_allclose(literal, closed, rtol=1e-12)

    def test_literal_matches_closed_form_slow_target(self):
        literal = area_h_literal(1000.0, 240.0, 9)
        closed = area_h_closed_form(1000.0, 240.0, 9)
        np.testing.assert_allclose(literal, closed, rtol=1e-12)

    def test_sum_is_dr_area(self):
        areas = area_h_closed_form(1000.0, 600.0, 4)
        assert areas.sum() == pytest.approx(2 * 1000 * 600 + math.pi * 1000**2)

    def test_first_entry_is_rectangle(self):
        areas = area_h_closed_form(1000.0, 600.0, 4)
        assert areas[1] == pytest.approx(2 * 1000 * 600)

    def test_padding_zero(self):
        assert area_h_closed_form(1000.0, 600.0, 4)[0] == 0.0

    def test_all_non_negative(self):
        for step in (240.0, 600.0, 1999.0, 2000.0, 2300.0):
            ms = math.ceil(2000.0 / step)
            areas = area_h_closed_form(1000.0, step, ms)
            assert (areas >= -1e-9).all(), f"step={step}"

    def test_ms_one_fast_target(self):
        # Step >= sensing diameter: only the boundary disc overlaps.
        areas = area_h_closed_form(1000.0, 2500.0, 1)
        assert areas[1] == pytest.approx(2 * 1000 * 2500)
        assert areas[2] == pytest.approx(math.pi * 1000**2)

    def test_inconsistent_ms_rejected(self):
        with pytest.raises(GeometryError):
            area_h_closed_form(1000.0, 600.0, 7)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(GeometryError):
            area_h_closed_form(0.0, 600.0, 4)
        with pytest.raises(GeometryError):
            area_h_closed_form(1000.0, 0.0, 4)


class TestAreaB:
    def test_sum_is_body_nedr(self):
        head = area_h_closed_form(1000.0, 600.0, 4)
        body = area_b(head)
        assert body.sum() == pytest.approx(2 * 1000 * 600)

    def test_eq8_structure(self):
        head = area_h_closed_form(1000.0, 600.0, 4)
        body = area_b(head)
        for i in range(1, 5):
            assert body[i] == pytest.approx(head[i] - head[i + 1])
        assert body[5] == pytest.approx(head[5])

    def test_non_negative(self):
        for step in (240.0, 600.0, 1100.0):
            ms = math.ceil(2000.0 / step)
            body = area_b(area_h_closed_form(1000.0, step, ms))
            assert (body >= -1e-9).all()

    def test_too_short_input_rejected(self):
        with pytest.raises(GeometryError):
            area_b(np.array([0.0, 1.0]))


class TestAreaT:
    @pytest.fixture
    def body(self):
        return area_b(area_h_closed_form(1000.0, 600.0, 4))

    def test_sum_preserved(self, body):
        for j in range(1, 5):
            assert area_t(body, j).sum() == pytest.approx(body.sum())

    def test_eq10_structure(self, body):
        ms = 4
        for j in range(1, ms + 1):
            tail = area_t(body, j)
            top = ms + 1 - j
            np.testing.assert_allclose(tail[1:top], body[1:top])
            assert tail[top] == pytest.approx(body[top:].sum())
            assert (tail[top + 1 :] == 0.0).all()

    def test_last_tail_merges_everything(self, body):
        tail = area_t(body, 4)
        assert tail[1] == pytest.approx(body.sum())
        assert (tail[2:] == 0.0).all()

    def test_invalid_index_rejected(self, body):
        with pytest.raises(GeometryError):
            area_t(body, 0)
        with pytest.raises(GeometryError):
            area_t(body, 5)


class TestScenarioWrappers:
    def test_head_subareas(self, onr):
        np.testing.assert_allclose(
            head_subareas(onr), area_h_closed_form(1000.0, 600.0, 4)
        )

    def test_body_subareas_sum(self, onr):
        assert body_subareas(onr).sum() == pytest.approx(onr.nedr_body_area)

    def test_tail_subareas_sum(self, onr):
        assert tail_subareas(onr, 2).sum() == pytest.approx(onr.nedr_body_area)


class TestSApproachRegions:
    def test_total_is_aregion(self, onr):
        regions = s_approach_regions(onr)
        assert regions.sum() == pytest.approx(onr.aregion_area)

    def test_total_is_aregion_slow_target(self, onr_slow):
        regions = s_approach_regions(onr_slow)
        assert regions.sum() == pytest.approx(onr_slow.aregion_area)

    def test_non_negative(self, onr):
        assert (s_approach_regions(onr) >= -1e-9).all()

    def test_requires_body_stage(self):
        scenario = onr_scenario(window=3, threshold=1)
        with pytest.raises(AnalysisError):
            s_approach_regions(scenario)

    def test_matches_monte_carlo_estimate(self, onr, rng):
        from repro.geometry.coverage import estimate_coverage_count_areas

        regions = s_approach_regions(onr)
        estimated = estimate_coverage_count_areas(
            onr.sensing_range,
            onr.step_length,
            onr.window,
            samples=400_000,
            rng=rng,
        )
        for coverage, area in estimated.items():
            assert regions[coverage] == pytest.approx(area, rel=0.05), coverage
