"""Unit tests for repro.experiments.tables."""

import pytest

from repro.experiments.tables import format_value, render_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.123456, precision=3) == "0.123"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_bool_and_none(self):
        assert format_value(True) == "True"
        assert format_value(None) == "None"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["n", "value"], [[1, 0.5], [100, 0.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        # All lines have equal width.
        assert len({len(line) for line in lines}) == 1

    def test_contains_cells(self):
        table = render_table(["a"], [[1.23456789]])
        assert "1.2346" in table

    def test_custom_precision(self):
        table = render_table(["a"], [[1.23456789]], precision=2)
        assert "1.23" in table
        assert "1.2346" not in table

    def test_empty_body(self):
        table = render_table(["x", "y"], [])
        assert table.splitlines()[0].split() == ["x", "y"]

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
