"""Unit tests for repro.experiments.report."""

import pathlib

import pytest

from repro.errors import ReproError
from repro.experiments.records import ExperimentRecord
from repro.experiments.report import (
    load_records,
    main,
    render_markdown_report,
)


@pytest.fixture
def results_dir(tmp_path) -> pathlib.Path:
    for experiment_id, title in [
        ("EXT-LAT", "latency"),
        ("FIG9A", "detection"),
        ("FIG8", "truncations"),
    ]:
        record = ExperimentRecord(experiment_id, title, parameters={"seed": 1})
        record.add_row(x=1, y=0.5)
        record.add_row(x=2, y=0.75)
        (tmp_path / f"{experiment_id.lower()}.json").write_text(record.to_json())
    return tmp_path


class TestLoadRecords:
    def test_loads_all(self, results_dir):
        records = load_records(results_dir)
        assert len(records) == 3

    def test_paper_figures_sorted_first(self, results_dir):
        ids = [r.experiment_id for r in load_records(results_dir)]
        assert ids == ["FIG8", "FIG9A", "EXT-LAT"]

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_records(tmp_path / "nope")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_records(tmp_path)


class TestRenderMarkdown:
    def test_contains_tables_and_headers(self, results_dir):
        markdown = render_markdown_report(load_records(results_dir))
        assert "## FIG8 — truncations" in markdown
        assert "| x | y |" in markdown
        assert "| 2 | 0.7500 |" in markdown
        assert "*Parameters*: seed=1" in markdown

    def test_custom_title(self, results_dir):
        markdown = render_markdown_report(
            load_records(results_dir), title="My run"
        )
        assert markdown.startswith("# My run")


class TestMain:
    def test_prints_report(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "FIG9A" in out

    def test_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_missing_directory(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 1
        assert "error" in capsys.readouterr().err
