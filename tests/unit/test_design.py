"""Unit tests for repro.core.design."""

import pytest

from repro.core.design import (
    DesignPoint,
    design_deployment,
    detection_probability,
    maximum_threshold,
    minimum_sensors,
    rule_frontier,
)
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.errors import AnalysisError
from repro.experiments.presets import onr_scenario


class TestDetectionProbability:
    def test_matches_ms_analysis(self, onr):
        assert detection_probability(onr) == pytest.approx(
            MarkovSpatialAnalysis(onr, 3).detection_probability()
        )


class TestMinimumSensors:
    def test_empty_feasible_set_returns_none(self, small):
        # No N in the whole range satisfies the target: every candidate
        # was evaluated and rejected, not just a short-circuit.
        assert minimum_sensors(small, 0.9, max_sensors=5) is None

    def test_target_exactly_at_grid_boundary(self, small):
        # The scan's comparison is >=: a requirement equal to a grid
        # value bit-for-bit must select exactly that N, not N + 1.
        n = minimum_sensors(small, 0.3, max_sensors=64)
        boundary = detection_probability(small.replace(num_sensors=n))
        assert minimum_sensors(small, boundary, max_sensors=64) == n

    def test_single_point_range(self, small):
        # max_sensors=1 degenerates to evaluating N=1 only.
        assert minimum_sensors(small, 0.9, max_sensors=1) is None
        low = detection_probability(small.replace(num_sensors=1)) / 2
        assert minimum_sensors(small, low, max_sensors=1) == 1

    def test_result_is_minimal(self):
        template = onr_scenario()
        n = minimum_sensors(template, 0.90, max_sensors=400)
        assert n is not None
        assert detection_probability(template.replace(num_sensors=n)) >= 0.90
        assert detection_probability(template.replace(num_sensors=n - 1)) < 0.90

    def test_matches_known_curve(self):
        # From FIG9A: P[detect] crosses 0.90 between N = 150 and N = 180
        # at V = 10.
        n = minimum_sensors(onr_scenario(), 0.90, max_sensors=400)
        assert 150 < n <= 180

    def test_unreachable_returns_none(self):
        assert minimum_sensors(onr_scenario(), 0.999999, max_sensors=100) is None

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            minimum_sensors(onr_scenario(), 1.5)
        with pytest.raises(AnalysisError):
            minimum_sensors(onr_scenario(), 0.5, max_sensors=0)


class TestMaximumThreshold:
    def test_result_is_maximal(self, onr):
        k = maximum_threshold(onr, 0.90)
        assert k is not None
        assert detection_probability(onr.replace(threshold=k)) >= 0.90
        assert detection_probability(onr.replace(threshold=k + 1)) < 0.90

    def test_strict_requirement_may_fail_entirely(self):
        scenario = onr_scenario(num_sensors=60)
        assert maximum_threshold(scenario, 0.99) is None

    def test_invalid_requirement_rejected(self, onr):
        with pytest.raises(AnalysisError):
            maximum_threshold(onr, 0.0)

    def test_target_exactly_at_grid_boundary(self, small):
        # A requirement equal (bit-for-bit) to P[detect] at some k must
        # keep that k: the first *failing* index is strictly below it.
        k = maximum_threshold(small, 0.2)
        boundary = detection_probability(small.replace(threshold=k))
        assert maximum_threshold(small, boundary) == k


class TestDesignDeployment:
    def test_feasible_design_found(self):
        template = onr_scenario()
        design = design_deployment(
            template,
            required_probability=0.85,
            node_false_alarm_prob=1e-4,
            max_window_fa_probability=1e-6,
            max_sensors=400,
        )
        assert isinstance(design, DesignPoint)
        assert design.detection_probability >= 0.85
        assert design.window_false_alarm_probability <= 1e-6
        # The chosen threshold is the FA-safe one, not the template's.
        assert design.scenario.threshold >= 1

    def test_infeasible_returns_none(self):
        design = design_deployment(
            onr_scenario(),
            required_probability=0.99,
            node_false_alarm_prob=5e-3,  # forces enormous k
            max_window_fa_probability=1e-9,
            max_sensors=300,
        )
        assert design is None

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(AnalysisError):
            design_deployment(onr_scenario(), 0.9, 1e-4, 1e-6, max_sensors=0)


class TestRuleFrontier:
    def test_monotone_decreasing_in_k(self, onr):
        points = rule_frontier(onr, range(1, 9))
        values = [p.detection_probability for p in points]
        assert values == sorted(values, reverse=True)

    def test_scenarios_carry_thresholds(self, onr):
        points = rule_frontier(onr, range(2, 5))
        assert [p.scenario.threshold for p in points] == [2, 3, 4]

    def test_invalid_threshold_rejected(self, onr):
        with pytest.raises(AnalysisError):
            rule_frontier(onr, range(0, 3))

    def test_empty_range_returns_empty_list(self, small):
        assert rule_frontier(small, range(5, 5)) == []

    def test_single_point_range(self, small):
        [point] = rule_frontier(small, range(3, 4))
        assert point.scenario.threshold == 3
        assert point.detection_probability == detection_probability(
            small.replace(threshold=3)
        )


class TestMaxSensorsCliValidation:
    def test_invalid_max_sensors_reaches_cli(self):
        # --max-sensors is forwarded unchecked to design_deployment,
        # whose validation is the single source of truth.
        from repro.experiments.cli import main

        with pytest.raises(AnalysisError):
            main(["design", "--max-sensors", "0"])
