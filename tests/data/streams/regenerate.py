"""Regenerate the golden stream corpus (deterministic).

Run from the repository root::

    PYTHONPATH=src python tests/data/streams/regenerate.py

Rewrites every recording and manifest in this directory from fixed
seeds.  The output must be byte-identical run-to-run — the corpus tests
(``tests/integration/test_stream_corpus.py``) additionally pin the
record → replay → re-record round trip, so a detector or protocol
change that alters any byte fails loudly and this script is how the
corpus is consciously re-pinned afterwards.

Episodes (all on the ``small_scenario`` preset, M=12, k=3):

* ``single_target``   — one straight-line crossing, clean delivery;
* ``multi_target``    — two simultaneous crossings plus false alarms;
* ``faulted_dropout`` — single target pushed through the delivery-fault
  path (report loss + delivery delay), the degraded-network fixture;
* ``quiet_false_alarms`` — no target at all, only node false alarms
  (the false-positive side of the rule).
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

from repro.detection.group import deliver_reports
from repro.experiments.presets import small_scenario
from repro.faults import FaultModel
from repro.simulation.streams import (
    simulate_multi_target_stream,
    simulate_report_stream,
)
from repro.streaming.recorder import StreamRecorder, record_episode

HERE = pathlib.Path(__file__).resolve().parent


def _single_target(path: pathlib.Path) -> dict:
    scenario = small_scenario()
    episode = simulate_report_stream(
        scenario, rng=np.random.default_rng(5), false_alarm_prob=0.0
    )
    return record_episode(episode, path, seed=5)


def _multi_target(path: pathlib.Path) -> dict:
    scenario = small_scenario()
    rng = np.random.default_rng(23)
    field = scenario.field
    starts = rng.uniform(
        (0.0, 0.0), (field.width, field.height), size=(2, 2)
    )
    episode = simulate_multi_target_stream(
        scenario, starts, rng=rng, false_alarm_prob=0.01
    )
    return record_episode(episode, path, seed=23)


def _faulted_dropout(path: pathlib.Path) -> dict:
    scenario = small_scenario()
    episode = simulate_report_stream(
        scenario, rng=np.random.default_rng(37), false_alarm_prob=0.01
    )
    faults = FaultModel(
        delivery_loss_prob=0.25, delay_prob=0.25, delay_periods=2
    )
    meta = {
        "true_report_count": episode.true_report_count,
        "false_report_count": episode.false_report_count,
        "faults": {
            "delivery_loss_prob": 0.25,
            "delay_prob": 0.25,
            "delay_periods": 2,
        },
    }
    with StreamRecorder(path, scenario, seed=37, meta=meta) as recorder:
        for period, reports in deliver_reports(
            episode.stream(), faults, np.random.default_rng(38)
        ):
            recorder.write_period(period, reports)
    return recorder.close()


def _quiet_false_alarms(path: pathlib.Path) -> dict:
    scenario = small_scenario()
    episode = simulate_report_stream(
        scenario,
        rng=np.random.default_rng(55),
        target_present=False,
        false_alarm_prob=0.005,
    )
    return record_episode(episode, path, seed=55)


EPISODES = {
    "single_target": _single_target,
    "multi_target": _multi_target,
    "faulted_dropout": _faulted_dropout,
    "quiet_false_alarms": _quiet_false_alarms,
}


def main() -> int:
    for name, build in EPISODES.items():
        path = HERE / f"{name}.jsonl"
        manifest = build(path)
        print(
            f"{name}: {manifest['periods']} periods, "
            f"{manifest['total_reports']} reports, detections at "
            f"{manifest['detection_periods']}, event digest "
            f"{manifest['event_digest'][:12]}..."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
