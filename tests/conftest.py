"""Shared fixtures (scenarios at several scales) and hypothesis profiles."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core.scenario import Scenario
from repro.deployment.field import SensorField
from repro.experiments.presets import onr_scenario, small_scenario

# One pinned hypothesis configuration for every property suite, so local
# runs and CI shrink/replay identically.  CI machines are slow and noisy:
# the wall-clock `deadline` check is disabled there (it flakes on loaded
# runners, not on real regressions) and the example budget is fixed so a
# green run always means the same amount of search.
settings.register_profile("ci", deadline=None, max_examples=100, print_blob=True)
settings.register_profile("dev", deadline=1000)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def onr() -> Scenario:
    """The paper's validation scenario at N=240, V=10 (ms=4)."""
    return onr_scenario(num_sensors=240, speed=10.0)


@pytest.fixture
def onr_slow() -> Scenario:
    """The paper's validation scenario at V=4 (ms=9)."""
    return onr_scenario(num_sensors=240, speed=4.0)


@pytest.fixture
def small() -> Scenario:
    """Down-scaled scenario for fast exact/simulation comparisons."""
    return small_scenario()


@pytest.fixture
def tiny() -> Scenario:
    """Minimal scenario with ms=1 (fast target) for edge-case coverage."""
    return Scenario(
        field=SensorField.square(4_000.0),
        num_sensors=12,
        sensing_range=100.0,
        target_speed=20.0,
        sensing_period=10.0,
        detect_prob=0.8,
        window=6,
        threshold=2,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests that sample."""
    return np.random.default_rng(12345)
