"""Integration: the multi-node (>= h nodes) extension vs simulation."""

import pytest

from repro.core.multinode import MultiNodeAnalysis
from repro.experiments.presets import onr_scenario
from repro.simulation.runner import MonteCarloSimulator


class TestMultiNodeAgreement:
    @pytest.fixture(scope="class")
    def simulated(self):
        scenario = onr_scenario(num_sensors=240, speed=10.0)
        return scenario, MonteCarloSimulator(scenario, trials=6000, seed=77).run()

    @pytest.mark.parametrize("min_nodes", [1, 2, 3, 4])
    def test_detection_probability_matches(self, simulated, min_nodes):
        scenario, result = simulated
        analysed = MultiNodeAnalysis(
            scenario, min_nodes=min_nodes
        ).detection_probability()
        simulated_value = result.detection_probability_at(min_nodes=min_nodes)
        assert analysed == pytest.approx(simulated_value, abs=0.02)

    def test_node_requirement_only_bites_when_strict(self, simulated):
        scenario, result = simulated
        # With k = 5 reports and ms + 1 = 5 periods max coverage, a single
        # node *can* produce all 5 reports, but it is rare; h = 2 should
        # cost almost nothing, h = 4 should cost visibly more.
        base = result.detection_probability_at(min_nodes=1)
        h2 = result.detection_probability_at(min_nodes=2)
        h4 = result.detection_probability_at(min_nodes=4)
        assert base - h2 < 0.05
        assert h2 >= h4
