"""Integration: simulator features compose correctly.

Each simulator option models a degradation (sleeping sensors, lost
delivery, shorter ranges) or a neutral re-parameterisation.  These tests
check the options *together*: the combined effect is ordered the way the
individual effects predict, and neutral options stay neutral in
combination.
"""

import numpy as np
import pytest

from repro.deployment.drift import drift_deployment_strategy
from repro.simulation.runner import MonteCarloSimulator

TRIALS = 2500


def detection(scenario, **kwargs) -> float:
    return (
        MonteCarloSimulator(scenario, trials=TRIALS, seed=71, **kwargs)
        .run()
        .detection_probability
    )


class TestDegradationsCompose:
    def test_each_degradation_only_hurts(self, small):
        baseline = detection(small)
        duty = detection(small, duty_cycle=0.5)
        short = detection(
            small, sensing_ranges=np.full(small.num_sensors, small.sensing_range * 0.7)
        )
        noise = 3.0 / TRIALS**0.5
        assert duty <= baseline + noise
        assert short <= baseline + noise

    def test_combined_degradation_below_each_single(self, small):
        duty = detection(small, duty_cycle=0.5)
        short_ranges = np.full(small.num_sensors, small.sensing_range * 0.7)
        short = detection(small, sensing_ranges=short_ranges)
        both = detection(small, duty_cycle=0.5, sensing_ranges=short_ranges)
        noise = 3.0 / TRIALS**0.5
        assert both <= duty + noise
        assert both <= short + noise

    def test_combined_duty_fold_still_exact(self, small):
        """duty_cycle + heterogeneous ranges: the Pd fold commutes with
        per-sensor ranges."""
        from repro.core.heterogeneous import HeterogeneousExactAnalysis, SensorClass

        half = small.num_sensors // 2
        classes = [
            SensorClass(half, small.sensing_range * 1.3),
            SensorClass(small.num_sensors - half, small.sensing_range * 0.7),
        ]
        duty = 0.6
        mixture = HeterogeneousExactAnalysis(
            small.replace(detect_prob=small.detect_prob * duty), classes
        )
        simulated = detection(
            small,
            duty_cycle=duty,
            sensing_ranges=HeterogeneousExactAnalysis(
                small, classes
            ).sensing_ranges(),
        )
        assert mixture.detection_probability() == pytest.approx(
            simulated, abs=0.03
        )


class TestNeutralOptionsStayNeutral:
    def test_drift_plus_duty_matches_plain_duty(self, small):
        """Drift is a no-op in distribution, even combined with other
        features."""
        plain = detection(small, duty_cycle=0.7)
        drifted = detection(
            small,
            duty_cycle=0.7,
            deployment=drift_deployment_strategy(
                small.sensing_range * 4, missions=2
            ),
        )
        assert drifted == pytest.approx(plain, abs=4.0 / TRIALS**0.5)

    def test_generous_communication_is_free(self, small):
        plain = detection(small)
        connected = detection(small, communication_range=1e6)
        assert connected == pytest.approx(plain, abs=4.0 / TRIALS**0.5)

    def test_latency_and_period_counts_do_not_change_statistics(self, small):
        lean = MonteCarloSimulator(small, trials=800, seed=72).run()
        rich = MonteCarloSimulator(
            small, trials=800, seed=72, collect_period_counts=True
        ).run()
        np.testing.assert_array_equal(lean.report_counts, rich.report_counts)
        np.testing.assert_array_equal(
            lean.detection_periods, rich.detection_periods
        )
