"""The golden stream corpus: recordings as pinned regression fixtures.

Every ``tests/data/streams/*.jsonl`` recording (regenerated only by its
``regenerate.py``) is held to four contracts:

* the manifest verifies — file bytes match ``frame_digest`` and the
  replayed event sequence matches ``event_digest``;
* record → replay → re-record is **byte-identical**;
* the online :class:`SlidingWindowDetector` and the offline
  :class:`GroupDetector` make bitwise-identical decisions on it;
* the handshake fingerprint matches the embedded scenario.

A detector behaviour change that alters any event fails here first.
"""

import pathlib

import pytest

from repro.detection.group import GroupDetector
from repro.obs.instrumentation import scenario_fingerprint
from repro.streaming.detector import SlidingWindowDetector, event_digest
from repro.streaming.recorder import MANIFEST_SUFFIX, StreamReplayer

CORPUS_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "data" / "streams"
)
CORPUS = sorted(CORPUS_DIR.glob("*.jsonl"))
CORPUS_IDS = [path.stem for path in CORPUS]


def test_corpus_is_present_and_diverse():
    """The issue pins >= 4 episodes including multi-target and faulted."""
    assert len(CORPUS) >= 4
    assert "multi_target" in CORPUS_IDS
    assert "faulted_dropout" in CORPUS_IDS


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_manifest_verifies(path):
    replayer = StreamReplayer(path)  # verify_manifest=True raises on drift
    assert replayer.manifest is not None
    manifest = replayer.manifest
    assert manifest["frame_digest"] == replayer.frame_digest
    assert manifest["periods"] == len(replayer.recorded.periods)
    assert manifest["total_reports"] == replayer.recorded.total_reports


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_record_replay_rerecord_round_trip_is_byte_identical(path, tmp_path):
    replayer = StreamReplayer(path)
    copy = tmp_path / path.name
    manifest = replayer.rerecord(copy)
    assert copy.read_bytes() == path.read_bytes()
    original_manifest = path.with_name(path.name + MANIFEST_SUFFIX)
    assert manifest["frame_digest"] == replayer.manifest["frame_digest"]
    assert manifest["event_digest"] == replayer.manifest["event_digest"]
    # ... and the re-recording itself replays clean.
    again = StreamReplayer(copy)
    assert again.frame_digest == replayer.frame_digest
    assert original_manifest.exists()


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_online_matches_offline_bitwise(path):
    recorded = StreamReplayer(path).recorded
    scenario = recorded.scenario
    online = SlidingWindowDetector(scenario.window, scenario.threshold)
    offline = GroupDetector(scenario.window, scenario.threshold)
    for period, reports in recorded.stream():
        event = online.observe(period, reports)
        fired = offline.observe(period, reports)
        assert event.fired == fired
        assert event.windowed_reports == len(offline.windowed_reports())
        assert event.distinct_nodes == len(
            {r.node_id for r in offline.windowed_reports()}
        )
    assert online.detection_periods == offline.detection_periods


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_event_digest_pins_detector_behaviour(path):
    replayer = StreamReplayer(path)
    detector = replayer.recorded.detect()
    assert detector.digest() == replayer.manifest["event_digest"]
    assert event_digest(detector.events) == replayer.manifest["event_digest"]
    assert (
        detector.detection_periods == replayer.manifest["detection_periods"]
    )


@pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
def test_handshake_fingerprint_matches_scenario(path):
    recorded = StreamReplayer(path).recorded
    assert recorded.fingerprint == scenario_fingerprint(recorded.scenario)


def test_corpus_covers_both_decisions():
    """At least one episode fires and at least one stays quiet."""
    outcomes = {
        path.stem: bool(StreamReplayer(path).manifest["detection_periods"])
        for path in CORPUS
    }
    assert any(outcomes.values())
    assert not all(outcomes.values())


def test_corpus_has_faulted_metadata():
    replayer = StreamReplayer(CORPUS_DIR / "faulted_dropout.jsonl")
    faults = replayer.recorded.meta.get("faults", {})
    assert faults.get("delivery_loss_prob", 0) > 0
    assert faults.get("delay_prob", 0) > 0


def test_multi_target_metadata():
    replayer = StreamReplayer(CORPUS_DIR / "multi_target.jsonl")
    assert replayer.recorded.meta.get("num_targets") == 2
