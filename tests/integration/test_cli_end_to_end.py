"""Integration: every CLI experiment runs end-to-end at tiny scale."""

import json

import pytest

from repro.experiments.cli import _EXPERIMENTS, main

FAST_ANALYSIS_ONLY = ["fig8", "truncation", "false-alarms", "sensitivity", "rule"]
FAST_SIMULATION = ["boundary", "duty", "sliding", "speed"]


class TestCliExperiments:
    @pytest.mark.parametrize("name", FAST_ANALYSIS_ONLY)
    def test_analysis_experiments(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert "[" in out and "]" in out  # experiment header printed

    @pytest.mark.parametrize("name", FAST_SIMULATION)
    def test_simulation_experiments_tiny(self, name, capsys):
        assert main([name, "--trials", "120", "--seed", "2"]) == 0
        assert capsys.readouterr().out.strip()

    def test_remaining_experiments_registered(self):
        # Heavier experiments are at least registered and documented; they
        # run in benchmarks/.
        assert {"fig9a", "fig9b", "fig9c", "runtime", "multinode", "network",
                "latency", "deployment", "netloss", "tracking", "multi",
                "hetero", "drift", "m1", "bases"} <= set(_EXPERIMENTS)

    def test_bases_experiment(self, capsys):
        assert main(["bases", "--seed", "5"]) == 0
        assert "EXT-BASES" in capsys.readouterr().out

    def test_multinode_with_plot_and_json(self, tmp_path, capsys):
        assert (
            main(
                [
                    "multinode",
                    "--trials",
                    "150",
                    "--seed",
                    "4",
                    "--plot",
                    "--json",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "min_nodes" in out
        payload = json.loads((tmp_path / "ext-h.json").read_text())
        assert payload["experiment_id"] == "EXT-H"

    def test_tracking_cli_small(self, capsys):
        assert main(["tracking", "--trials", "900", "--seed", "3"]) == 0
        assert "EXT-TRACK" in capsys.readouterr().out

    def test_fig9a_tiny_with_plot(self, capsys):
        assert main(["fig9a", "--trials", "120", "--seed", "5", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "FIG9A" in out
        assert "analysis (speed=4.0)" in out  # the ASCII chart legend
