"""End-to-end smoke tests: public API workflows a user would actually run."""

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_quickstart_flow(self):
        scenario = repro.onr_scenario(num_sensors=120, speed=10.0)
        analysis = repro.MarkovSpatialAnalysis(scenario, body_truncation=3)
        p_analysis = analysis.detection_probability()
        result = repro.MonteCarloSimulator(scenario, trials=1500, seed=1).run()
        assert p_analysis == pytest.approx(result.detection_probability, abs=0.05)

    def test_all_detection_probability_engines_on_one_scenario(self):
        scenario = repro.onr_scenario(num_sensors=120)
        values = {
            "ms": repro.MarkovSpatialAnalysis(scenario).detection_probability(),
            "s": repro.SApproach(scenario, max_sensors=10).detection_probability(),
            "exact": repro.ExactSpatialAnalysis(scenario).detection_probability(),
            "multinode": repro.MultiNodeAnalysis(
                scenario, min_nodes=1
            ).detection_probability(),
        }
        reference = values.pop("exact")
        for name, value in values.items():
            assert value == pytest.approx(reference, abs=0.01), name

    def test_deployment_to_network_pipeline(self):
        from repro.experiments.presets import ONR_COMMUNICATION_RANGE
        from repro.network.graph import build_connectivity_graph
        from repro.network.latency import delivery_report
        from repro.network.routing import greedy_geographic_path

        scenario = repro.onr_scenario(num_sensors=240)
        positions = repro.deploy_uniform(scenario.field, 240, rng=2)
        graph = build_connectivity_graph(
            positions,
            ONR_COMMUNICATION_RANGE,
            base_station=(16_000.0, 16_000.0),
        )
        report = delivery_report(graph, scenario.sensing_period, 8.0)
        assert report.connected_fraction > 0.9
        # Route a packet from some connected node to the base.
        import networkx as nx

        from repro.network.graph import BASE_STATION

        connected = nx.node_connected_component(graph, BASE_STATION) - {BASE_STATION}
        source = sorted(connected)[0]
        path = greedy_geographic_path(graph, source, BASE_STATION)
        assert path[-1] == BASE_STATION

    def test_errors_exported(self):
        assert issubclass(repro.ScenarioError, repro.ReproError)
        assert issubclass(repro.AnalysisError, repro.ReproError)
        with pytest.raises(repro.ScenarioError):
            repro.onr_scenario(num_sensors=-1)

    def test_version_string(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_seeded_results_are_deterministic_across_runs(self):
        scenario = repro.onr_scenario(num_sensors=60)
        a = repro.MonteCarloSimulator(scenario, trials=500, seed=42).run()
        b = repro.MonteCarloSimulator(scenario, trials=500, seed=42).run()
        np.testing.assert_array_equal(a.report_counts, b.report_counts)
