"""Chaos acceptance for distributed sweeps.

The byte-identical-merge contract under fire: a scripted
:class:`repro.chaos.SweepChaosHarness` kills a worker (or the whole
coordinator) mid-sweep, and the merged output must still be *exactly*
the serial bytes — rows and checkpoint file — with the injected faults
reconciling against the ``dist.*`` books in the obs manifest.
"""

import json
import time

import pytest

from repro import obs
from repro.chaos import (
    SweepChaosHarness,
    SweepChaosScript,
    kill_coordinator,
    kill_worker,
)
from repro.distributed import LocalFleet, distributed_sweep
from repro.errors import SimulationError
from repro.experiments.sweeps import sweep

POINTS = [{"x": value} for value in range(18)]
SPEC = {
    "kind": "callable",
    "function": "tests.integration.test_distributed_acceptance:slow_square",
    "fixed": {"delay": 0.05},
}


def slow_square(x, delay):
    """Slow enough that scripted kills land mid-lease, not after."""
    time.sleep(delay)
    return {"x": x, "square": x * x}


def _serial(checkpoint):
    return sweep(
        POINTS,
        lambda point: {"x": point["x"], "square": point["x"] ** 2},
        checkpoint=checkpoint,
    )


def test_worker_kill_mid_sweep_completes_byte_identical(tmp_path):
    script = SweepChaosScript(actions=(kill_worker(after_results=4),))
    assert script.expect_completion
    dist_ck = tmp_path / "dist.json"
    with obs.instrument() as ob:
        fleet = LocalFleet(POINTS, SPEC, workers=3, checkpoint=str(dist_ck))
        harness = SweepChaosHarness(fleet, script).attach()
        fleet.start()
        try:
            rows = fleet.join(timeout=120)
        finally:
            harness.join()
            fleet.terminate()
        manifest = ob.manifest()

    serial = _serial(str(tmp_path / "serial.json"))
    assert json.dumps(rows) == json.dumps(serial)
    assert dist_ck.read_bytes() == (tmp_path / "serial.json").read_bytes()

    # The books reconcile: one scripted kill, observed as one injected
    # action, one worker crash, and a full complement of merged rows.
    counters = manifest["counters"]
    assert counters["chaos.injected"] == 1
    assert counters["chaos.sweep_kills"] == script.worker_kills() == 1
    assert counters["dist.worker_crashes"] >= 1
    assert counters["dist.results"] == len(POINTS)
    assert counters["dist.shards"] >= 3


def test_coordinator_kill_then_resume_byte_identical(tmp_path):
    script = SweepChaosScript(actions=(kill_coordinator(after_results=5),))
    assert not script.expect_completion
    ck = tmp_path / "dist.json"

    fleet = LocalFleet(POINTS, SPEC, workers=2, checkpoint=str(ck))
    harness = SweepChaosHarness(fleet, script).attach()
    fleet.start()
    try:
        with pytest.raises(SimulationError):
            fleet.join(timeout=120)
    finally:
        harness.join()
        fleet.terminate()
    assert harness.injected() == list(script.actions)
    chaos_counters, _ = harness.metrics.snapshot()
    assert chaos_counters["coordinator_kills"] == 1

    # The host loss left a partial-but-valid checkpoint behind.
    completed = json.loads(ck.read_text())["completed"]
    assert 0 < len(completed) < len(POINTS)
    survived = len(completed)

    # A fresh fleet pointed at the same checkpoint finishes the job.
    with obs.instrument() as ob:
        rows = distributed_sweep(
            POINTS, SPEC, workers=2, checkpoint=str(ck), timeout=120
        )
        manifest = ob.manifest()

    serial = _serial(str(tmp_path / "serial.json"))
    assert json.dumps(rows) == json.dumps(serial)
    assert ck.read_bytes() == (tmp_path / "serial.json").read_bytes()

    # Resume accounting: every point is either a resumed row or a fresh
    # result — exactly once, nothing recomputed, nothing lost.
    counters = manifest["counters"]
    assert counters["dist.resumes"] == survived
    assert counters["dist.results"] == len(POINTS) - survived
