"""Integration: truncated approaches vs the exact spatial oracle.

The M-S-approach and S-approach are approximations of the same underlying
model the exact oracle evaluates in closed form; these tests pin down how
tight each approximation is at the paper's operating points.
"""

import pytest

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.core.spatial import SApproach
from repro.experiments.presets import onr_scenario


class TestMsVsOracle:
    @pytest.mark.parametrize("num_sensors", [60, 120, 240])
    @pytest.mark.parametrize("speed", [4.0, 10.0])
    def test_normalised_ms_close_to_exact(self, num_sensors, speed):
        scenario = onr_scenario(num_sensors=num_sensors, speed=speed)
        exact = ExactSpatialAnalysis(scenario).detection_probability()
        analysed = MarkovSpatialAnalysis(
            scenario, body_truncation=3
        ).detection_probability()
        # The paper reports the model is "extremely accurate"; at g = 3 the
        # normalised result lands within half a percentage point.
        assert analysed == pytest.approx(exact, abs=0.005)

    def test_error_shrinks_with_truncation(self):
        scenario = onr_scenario(num_sensors=240, speed=10.0)
        exact = ExactSpatialAnalysis(scenario).detection_probability()
        errors = [
            abs(
                MarkovSpatialAnalysis(
                    scenario, body_truncation=g, head_truncation=g
                ).detection_probability(normalize=False)
                - exact
            )
            for g in (1, 2, 3, 5)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_normalisation_always_helps_at_paper_settings(self):
        # Fig. 9(a) vs Fig. 9(b): normalised results beat raw ones.
        for num_sensors in (120, 240):
            scenario = onr_scenario(num_sensors=num_sensors, speed=10.0)
            exact = ExactSpatialAnalysis(scenario).detection_probability()
            analysis = MarkovSpatialAnalysis(scenario, 3)
            raw_error = abs(analysis.detection_probability(normalize=False) - exact)
            norm_error = abs(analysis.detection_probability(normalize=True) - exact)
            assert norm_error < raw_error

    def test_unnormalised_error_roughly_one_minus_eta(self):
        # Eq. 14 is the mass the truncation drops; the unnormalised tail is
        # low by about that much (slightly less since some dropped mass
        # lies below the threshold).
        scenario = onr_scenario(num_sensors=240, speed=10.0)
        analysis = MarkovSpatialAnalysis(scenario, 3, 3)
        exact = ExactSpatialAnalysis(scenario).detection_probability()
        raw = analysis.detection_probability(normalize=False)
        dropped = 1.0 - analysis.analysis_accuracy()
        assert exact - raw == pytest.approx(dropped, abs=0.01)


class TestSApproachVsOracle:
    @pytest.mark.parametrize("speed", [4.0, 10.0])
    def test_s_approach_converges_to_oracle(self, speed):
        scenario = onr_scenario(num_sensors=120, speed=speed)
        exact = ExactSpatialAnalysis(scenario).detection_probability()
        analysed = SApproach(scenario, max_sensors=14).detection_probability()
        assert analysed == pytest.approx(exact, abs=1e-3)

    def test_s_and_ms_agree_with_each_other(self):
        scenario = onr_scenario(num_sensors=180, speed=10.0)
        s_result = SApproach(scenario, max_sensors=12).detection_probability()
        ms_result = MarkovSpatialAnalysis(scenario, 4).detection_probability()
        assert s_result == pytest.approx(ms_result, abs=0.005)
