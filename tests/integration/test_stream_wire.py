"""Wire-level fuzz/regression tests for the stream ingest framing.

Raw sockets against a live :class:`StreamTransport` — no client-library
help — pinning the failure modes a network peer can actually produce:
oversized frames (with and without a terminating newline), frames split
across arbitrary read boundaries, non-JSON lines, and trailing garbage
after a clean end-of-stream.  Every malformed input must produce a
typed error frame and a prompt close — never a hang — and must leave
the server serving.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.experiments.presets import small_scenario
from repro.detection.reports import DetectionReport
from repro.geometry.shapes import Point
from repro.service.transport import StreamTransport
from repro.streaming import protocol
from repro.streaming.hub import StreamHub

MAX_FRAME = 4096  # small cap so the oversized cases stay cheap


class _WireServer:
    """A StreamTransport on a background event loop, for raw sockets."""

    def __init__(self, max_frame_bytes=MAX_FRAME):
        self.hub = StreamHub()
        self.transport = StreamTransport(
            self.hub.open_session, max_frame_bytes=max_frame_bytes
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._thread.start()
        self.host, self.port = asyncio.run_coroutine_threadsafe(
            self.transport.start("127.0.0.1", 0), self._loop
        ).result(timeout=10)

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.transport.stop(), self._loop
        ).result(timeout=10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


@pytest.fixture(scope="module")
def server():
    server = _WireServer()
    yield server
    server.stop()


def _exchange(server, payload, timeout=10.0):
    """Send raw bytes, shut down the write side, read frames to EOF."""
    with socket.create_connection(
        (server.host, server.port), timeout=timeout
    ) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            data += chunk
    return [
        json.loads(line) for line in data.splitlines() if line.strip()
    ]


def _session_bytes(periods=2, reports_per_period=1, seed=3):
    scenario = small_scenario()
    frames = [protocol.hello_frame(scenario, seed=seed)]
    total = 0
    for period in range(1, periods + 1):
        reports = [
            DetectionReport(node, period, Point(float(node), 0.0))
            for node in range(reports_per_period)
        ]
        frames.append(protocol.reports_frame(period, period, reports))
        total += len(reports)
    frames.append(
        protocol.end_frame(
            periods + 1, periods=periods, total_reports=total
        )
    )
    return b"".join(protocol.encode_frame(frame) for frame in frames)


class TestCleanSessions:
    def test_full_session_gets_a_summary(self, server):
        replies = _exchange(server, _session_bytes())
        assert replies[-1]["type"] == "end"
        assert replies[-1]["total_reports"] == 2

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 64])
    def test_frames_split_across_arbitrary_read_boundaries(
        self, server, chunk_size
    ):
        payload = _session_bytes(periods=3, reports_per_period=2)
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            for i in range(0, len(payload), chunk_size):
                sock.sendall(payload[i : i + chunk_size])
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                data += chunk
        replies = [json.loads(line) for line in data.splitlines()]
        assert replies[-1]["type"] == "end"
        assert replies[-1]["total_reports"] == 6


class TestMalformedInput:
    def test_oversized_frame_without_newline_is_a_clean_error_not_a_hang(
        self, server
    ):
        # More than the cap, never a newline: the server must answer
        # with a typed error and close — before EOF, so no shutdown.
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b"x" * (MAX_FRAME + 2))
            data = b""
            while True:
                chunk = sock.recv(1 << 16)
                if not chunk:
                    break
                data += chunk
        reply = json.loads(data.splitlines()[-1])
        assert reply["type"] == "error"
        assert reply["code"] == "oversized"

    def test_oversized_frame_with_newline_is_rejected(self, server):
        line = b'{"pad":"' + b"y" * MAX_FRAME + b'"}\n'
        replies = _exchange(server, line)
        assert replies[-1] == {
            "type": "error",
            "code": "oversized",
            "error": replies[-1]["error"],
        }

    def test_non_json_line_is_rejected(self, server):
        replies = _exchange(server, b"hello world\n")
        assert replies[-1]["type"] == "error"
        assert replies[-1]["code"] == "json"

    def test_first_frame_must_be_hello(self, server):
        payload = protocol.encode_frame(protocol.heartbeat_frame(1))
        replies = _exchange(server, payload)
        assert replies[-1]["code"] == "handshake"

    def test_trailing_frame_after_end_is_rejected(self, server):
        payload = _session_bytes() + protocol.encode_frame(
            protocol.heartbeat_frame(99)
        )
        replies = _exchange(server, payload)
        assert replies[-1]["type"] == "error"
        assert replies[-1]["code"] == "trailing"

    def test_trailing_garbage_without_newline_is_rejected_at_eof(
        self, server
    ):
        payload = _session_bytes() + b"garbage-no-newline"
        replies = _exchange(server, payload)
        assert replies[-1]["type"] == "error"
        assert replies[-1]["code"] == "trailing"

    def test_fingerprint_lie_is_rejected(self, server):
        scenario = small_scenario()
        hello = protocol.hello_frame(scenario, seed=1)
        hello["fingerprint"] = "0" * 64
        replies = _exchange(server, protocol.encode_frame(hello))
        assert replies[-1]["code"] == "fingerprint"

    def test_server_still_serves_after_abuse(self, server):
        for payload in (b"\xff\xfe\n", b"x" * (MAX_FRAME + 2)):
            try:
                _exchange(server, payload)
            except OSError:  # pragma: no cover - close-race tolerance
                pass
        replies = _exchange(server, _session_bytes(seed=11))
        assert replies[-1]["type"] == "end"
