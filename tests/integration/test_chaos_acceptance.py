"""Chaos acceptance: scripted faults against a live process-backed fleet.

The robustness tier's headline contract, demonstrated end to end:

* >= 99% of requests complete while replicas are killed and hung
  mid-load;
* every non-degraded response is byte-identical to the fault-free
  answer for the same request;
* the supervisor restarts every faulted replica; and
* the books balance exactly — ``fleet.evictions`` and ``fleet.restarts``
  equal the script's ``fault_count()``, with the totals mirrored into
  the obs manifest.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import obs
from repro.chaos import ChaosHarness, ChaosScript, hang, kill
from repro.service import AnalysisService, ServiceConfig
from repro.service.handlers import ENDPOINTS
from repro.service.transport import json_body

SCENARIO = {
    "field_width": 10_000.0,
    "field_height": 10_000.0,
    "num_sensors": 240,
    "sensing_range": 600.0,
    "target_speed": 10.0,
    "sensing_period": 30.0,
    "detect_prob": 0.9,
    "window": 10,
    "threshold": 3,
}

NUM_REQUESTS = 120


def _requests():
    """~120 distinct /analyze payloads (each its own fingerprint)."""
    return [
        {
            "scenario": dict(SCENARIO, num_sensors=100 + index),
            "body_truncation": 3,
        }
        for index in range(NUM_REQUESTS)
    ]


def _fault_free_bytes(payload):
    """The byte-exact body a fault-free service returns for ``payload``.

    The service stores and serves ``json_body(endpoint.compute(...))``
    verbatim, so computing it in-process is the fault-free run.
    """
    endpoint = ENDPOINTS["/analyze"]
    return json_body(endpoint.compute(endpoint.canonicalize(payload)))


@pytest.mark.slow
class TestChaosAcceptance:
    def test_scripted_kill_and_hang_mid_load(self):
        expected = {
            index: _fault_free_bytes(payload)
            for index, payload in enumerate(_requests())
        }

        config = ServiceConfig(
            port=0,
            workers=1,
            replicas=3,
            queue_limit=256,
            request_timeout=30.0,
            attempt_timeout=2.0,
            heartbeat_interval=0.1,
            probe_timeout=0.5,
            warmup_timeout=30.0,
            route_wait=2.0,
        )
        script = ChaosScript(
            actions=(
                kill(0.4, replica="r0"),
                kill(1.0, replica="r1"),
                hang(1.6, duration=4.0, replica="r2"),
            )
        )

        async def main():
            service = AnalysisService(
                config,
                executor_factory=lambda: ProcessPoolExecutor(max_workers=1),
            )
            await service.supervisor.start()
            try:
                harness = ChaosHarness(service.supervisor, script)

                async def fire(index, payload):
                    body = json.dumps(payload).encode()
                    status, headers, response = await service.dispatch(
                        "POST", "/analyze", body
                    )
                    return index, status, headers, response

                async def load():
                    tasks = []
                    for index, payload in enumerate(_requests()):
                        tasks.append(
                            asyncio.ensure_future(fire(index, payload))
                        )
                        await asyncio.sleep(0.02)  # ~2.4 s of load
                    return await asyncio.gather(*tasks)

                results, report = await asyncio.gather(
                    load(), harness.run()
                )

                # Every scripted fault was restarted before we assert.
                supervisor = service.supervisor
                deadline = time.monotonic() + 30.0
                while (
                    supervisor.metrics.counter("restarts")
                    < script.fault_count()
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.05)
                return results, report, supervisor.snapshot()
            finally:
                await service.stop()

        with obs.instrument() as ob:
            results, report, snapshot = asyncio.run(main())
            manifest = ob.manifest()

        # -- availability: >= 99% of requests complete ------------------
        completed = [r for r in results if r[1] == 200]
        assert len(completed) >= 0.99 * NUM_REQUESTS, (
            f"only {len(completed)}/{NUM_REQUESTS} requests completed; "
            f"statuses: {sorted({r[1] for r in results})}"
        )

        # -- correctness: non-degraded answers are byte-identical -------
        non_degraded = [
            r for r in completed if "X-Repro-Degraded" not in r[2]
        ]
        assert non_degraded, "the run produced no full-fidelity responses"
        for index, _status, _headers, response in non_degraded:
            assert response == expected[index], (
                f"request {index} diverged from the fault-free run"
            )

        # -- recovery: every faulted replica was restarted --------------
        counters = snapshot["counters"]
        assert counters["evictions"] == script.fault_count()
        assert counters["restarts"] == script.fault_count()
        for replica_id, state in snapshot["replicas"].items():
            assert state["state"] == "healthy", (replica_id, state)

        # -- the books: injected == detected == manifest -----------------
        assert report.counters["injected"] == len(script.actions)
        assert report.counters["kills"] == 2
        assert report.counters["hangs"] == 1
        assert manifest["counters"]["fleet.evictions"] == script.fault_count()
        assert manifest["counters"]["fleet.restarts"] == script.fault_count()
        assert manifest["counters"]["chaos.injected"] == len(script.actions)
