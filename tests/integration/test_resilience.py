"""Integration tests for crash-resilient execution and checkpointed sweeps.

The two acceptance properties of the robustness work:

* a worker process crashing mid-run is retried deterministically, so the
  merged :class:`SimulationResult` is bitwise identical to an
  uninterrupted run with the same seed;
* a checkpointed grid sweep killed partway and resumed reproduces the
  uninterrupted run's rows exactly.
"""

import functools
import hashlib
import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import obs
from repro.errors import SimulationError
from repro.experiments.figures import fault_injection_experiment
from repro.experiments.sweeps import grid_sweep
from repro.parallel import _execute_resilient, parallel_map
from repro.simulation.runner import MonteCarloSimulator, SimulationResult


def fingerprint(result: SimulationResult) -> str:
    digest = hashlib.sha256()
    for array in (
        result.report_counts,
        result.node_counts,
        result.false_report_counts,
        result.detection_periods,
    ):
        if array is not None:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _crashing_uniform(field, count, rng, batch, crash_file):
    """Batched uniform deployment that kills its worker exactly once.

    Draws the same stream as the simulator's built-in default deployment,
    so a retried run must match a default-deployment run bitwise.
    """
    if not os.path.exists(crash_file):
        with open(crash_file, "w"):
            pass
        os._exit(1)
    return rng.uniform(
        (0.0, 0.0), (field.width, field.height), size=(batch, count, 2)
    )


def _crash_once(value, crash_file):
    if not os.path.exists(crash_file):
        with open(crash_file, "w"):
            pass
        os._exit(1)
    return {"value": value, "square": value * value}


class TestCrashRecovery:
    def test_crashed_shard_retries_to_identical_result(self, small, tmp_path):
        """Acceptance: forced mid-run worker crash changes nothing."""
        crash_file = str(tmp_path / "crashed")
        uninterrupted = MonteCarloSimulator(small, trials=80, seed=77).run(
            workers=2
        )
        crashing = MonteCarloSimulator(
            small,
            trials=80,
            seed=77,
            deployment=functools.partial(
                _crashing_uniform, crash_file=crash_file
            ),
        ).run(workers=2)
        assert os.path.exists(crash_file)  # the crash really happened
        assert fingerprint(crashing) == fingerprint(uninterrupted)

    def test_parallel_map_retries_crashed_items(self, tmp_path):
        crash_file = str(tmp_path / "crashed")
        rows = parallel_map(
            functools.partial(_crash_once, crash_file=crash_file),
            [1, 2, 3],
            workers=2,
        )
        assert os.path.exists(crash_file)
        assert rows == [
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
            {"value": 3, "square": 9},
        ]

    def test_timeout_exhaustion_raises(self):
        import time as time_module

        start = time_module.monotonic()
        with pytest.raises(SimulationError, match="timeout"):
            parallel_map(
                time_module.sleep,
                [30.0, 30.0],
                workers=2,
                timeout=1.0,
                max_retries=0,
            )
        # The error must propagate without joining the hung workers:
        # anywhere near the 30 s sleep means the pool was waited on.
        assert time_module.monotonic() - start < 15.0

    def test_queue_wait_does_not_count_toward_timeout(self):
        import time as time_module

        # 12 half-second tasks on 2 workers: the last ones sit queued for
        # ~2.5 s, beyond the 2 s timeout that each task individually
        # satisfies with room to spare.  No task may be marked overdue.
        results = parallel_map(
            time_module.sleep,
            [0.5] * 12,
            workers=2,
            timeout=2.0,
            max_retries=0,
        )
        assert results == [None] * 12


def _crash_once_task(value, crash_file):
    if not os.path.exists(crash_file):
        with open(crash_file, "w"):
            pass
        os._exit(1)
    return value * value


class TestCrashManifests:
    def test_manifest_records_exact_retry_count(self, tmp_path):
        """Acceptance: one forced crash of the only in-flight task shows
        up in the manifest as exactly one pool crash and one task retry."""
        crash_file = str(tmp_path / "crashed")
        with obs.instrument() as ob:
            results = _execute_resilient(
                functools.partial(_crash_once_task, crash_file=crash_file),
                [(3,)],
                workers=1,
            )
            manifest = ob.manifest()
        assert results == [9]
        assert os.path.exists(crash_file)
        assert manifest["counters"]["parallel.pool_crashes"] == 1
        assert manifest["counters"]["parallel.task_retries"] == 1
        assert manifest["counters"]["parallel.tasks_completed"] == 1
        retry_events = [
            e for e in ob.events if e["name"] == "parallel.task_retry"
        ]
        assert len(retry_events) == 1
        assert retry_events[0]["index"] == 0
        assert retry_events[0]["reason"] == "pool_crash"

    def test_simulator_crash_retries_match_events(self, small, tmp_path):
        """The manifest's retry counter is exact: it equals the number of
        task_retry events the engine emitted for the forced crash."""
        crash_file = str(tmp_path / "crashed")
        with obs.instrument() as ob:
            result = MonteCarloSimulator(
                small,
                trials=80,
                seed=77,
                deployment=functools.partial(
                    _crashing_uniform, crash_file=crash_file
                ),
            ).run(workers=2)
            manifest = ob.manifest()
        assert os.path.exists(crash_file)
        uninterrupted = MonteCarloSimulator(small, trials=80, seed=77).run(
            workers=2
        )
        assert fingerprint(result) == fingerprint(uninterrupted)
        # Exactly one pool crash; every charged retry has its event.
        assert manifest["counters"]["parallel.pool_crashes"] == 1
        retry_events = [
            e for e in ob.events if e["name"] == "parallel.task_retry"
        ]
        assert manifest["counters"]["parallel.task_retries"] == len(
            retry_events
        )
        # The crash left 1 or 2 shards unfinished (the sibling may or may
        # not have completed first); each was charged exactly once.
        assert 1 <= manifest["counters"]["parallel.task_retries"] <= 2
        assert manifest["counters"]["parallel.tasks"] == 2
        assert manifest["counters"]["parallel.tasks_completed"] == 2


class TestCheckpointResume:
    def test_killed_grid_sweep_resumes_to_identical_rows(self, tmp_path):
        """Acceptance: kill a checkpointed sweep, rerun, rows identical."""
        checkpoint = tmp_path / "grid.json"
        script = textwrap.dedent(
            """
            import os, sys
            from repro.experiments.sweeps import grid_sweep

            def compute(a, b):
                if a == 2 and b == 20:
                    os._exit(1)  # the "power cut"
                return {"a": a, "b": b, "product": a * b}

            grid_sweep(
                {"a": [1, 2], "b": [10, 20]},
                compute,
                checkpoint=sys.argv[1],
            )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(checkpoint)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1, proc.stderr  # really died mid-sweep
        state = json.loads(checkpoint.read_text())
        completed = len(state["completed"])
        assert 0 < completed < 4  # partial progress survived the kill

        def compute(a, b):
            return {"a": a, "b": b, "product": a * b}

        resumed = grid_sweep(
            {"a": [1, 2], "b": [10, 20]}, compute, checkpoint=str(checkpoint)
        )
        uninterrupted = grid_sweep({"a": [1, 2], "b": [10, 20]}, compute)
        assert resumed == uninterrupted

    def test_resumed_sweep_manifest_marks_from_checkpoint(self, tmp_path):
        """Acceptance: after a kill/resume, the manifest counts the
        checkpoint-served points and the trace names their indexes."""
        checkpoint = tmp_path / "grid.json"

        def compute(a, b):
            return {"a": a, "b": b, "product": a * b}

        # First pass completes only half the grid (simulated kill: run
        # a sweep over a prefix-compatible point set by pre-seeding the
        # checkpoint with two completed points from a real partial run).
        partial = grid_sweep(
            {"a": [1, 2], "b": [10, 20]}, compute, checkpoint=str(checkpoint)
        )
        state = json.loads(checkpoint.read_text())
        state["completed"] = {
            k: v for k, v in state["completed"].items() if k in ("0", "2")
        }
        checkpoint.write_text(json.dumps(state))

        with obs.instrument() as ob:
            resumed = grid_sweep(
                {"a": [1, 2], "b": [10, 20]},
                compute,
                checkpoint=str(checkpoint),
            )
            manifest = ob.manifest()
        assert resumed == partial
        assert manifest["counters"]["sweep.points"] == 4
        assert manifest["counters"]["sweep.points_from_checkpoint"] == 2
        assert manifest["counters"]["sweep.points_completed"] == 2
        assert manifest["counters"]["sweep.checkpoint_writes"] == 2
        (resume_event,) = [
            e for e in ob.events if e["name"] == "sweep.resume"
        ]
        assert resume_event["from_checkpoint"] == [0, 2]
        completed_events = sorted(
            e["index"]
            for e in ob.events
            if e["name"] == "sweep.point_complete"
        )
        assert completed_events == [1, 3]

    def test_killed_subprocess_sweep_resume_manifest(self, tmp_path):
        """Same accounting on a genuinely killed sweep: the survivor's
        checkpointed points are exactly the manifest's from_checkpoint."""
        checkpoint = tmp_path / "grid.json"
        script = textwrap.dedent(
            """
            import os, sys
            from repro.experiments.sweeps import grid_sweep

            def compute(a, b):
                if a == 2 and b == 20:
                    os._exit(1)  # the "power cut"
                return {"a": a, "b": b, "product": a * b}

            grid_sweep(
                {"a": [1, 2], "b": [10, 20]},
                compute,
                checkpoint=sys.argv[1],
            )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(checkpoint)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1, proc.stderr
        survived = sorted(
            int(k)
            for k in json.loads(checkpoint.read_text())["completed"]
        )
        assert survived  # partial progress really persisted

        def compute(a, b):
            return {"a": a, "b": b, "product": a * b}

        with obs.instrument() as ob:
            grid_sweep(
                {"a": [1, 2], "b": [10, 20]},
                compute,
                checkpoint=str(checkpoint),
            )
            manifest = ob.manifest()
        assert manifest["counters"]["sweep.points_from_checkpoint"] == len(
            survived
        )
        (resume_event,) = [
            e for e in ob.events if e["name"] == "sweep.resume"
        ]
        assert resume_event["from_checkpoint"] == survived


class TestFaultExperimentSmoke:
    def test_ext_faults_runs_small(self):
        record = fault_injection_experiment(
            num_sensors=60, trials=150, seed=13
        )
        assert record.experiment_id == "EXT-FAULTS"
        regimes = [row["regime"] for row in record.rows]
        assert "fault-free" in regimes and "combined" in regimes
        by_regime = {row["regime"]: row for row in record.rows}
        # The unfiltered rule saturates under a Byzantine flood.
        assert by_regime["byzantine 10%"]["simulation"] == 1.0
        assert by_regime["byzantine 10%"]["spurious_sim"] > 0
        # Faults only ever hurt genuine detection.
        clean = by_regime["fault-free"]["simulation"]
        assert by_regime["combined"]["simulation"] <= clean
        for row in record.rows:
            assert 0.0 <= row["analysis"] <= 1.0
            assert 0.0 <= row["simulation"] <= 1.0


class TestBatchedSweepResilience:
    def test_killed_batched_sweep_resumes_to_identical_rows(self, tmp_path):
        """Acceptance: a checkpointed *batched* analytical sweep killed
        mid-write resumes to the uninterrupted run's rows — and, because
        the two dispatch paths are byte-identical, may resume on either
        path."""
        checkpoint = tmp_path / "batched.json"
        script = textwrap.dedent(
            """
            import os, sys
            from repro.experiments import sweeps
            from repro.experiments.presets import small_scenario

            original = sweeps._write_checkpoint
            state = {"writes": 0}

            def dying_write(path, fingerprint, completed):
                original(path, fingerprint, completed)
                state["writes"] += 1
                if state["writes"] == 2:
                    os._exit(1)  # the "power cut", two rows in

            sweeps._write_checkpoint = dying_write
            sweeps.analytical_grid_sweep(
                small_scenario(),
                {"num_sensors": [20, 40], "threshold": [1, 2]},
                checkpoint=sys.argv[1],
            )
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(checkpoint)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1, proc.stderr
        survived = sorted(
            int(k)
            for k in json.loads(checkpoint.read_text())["completed"]
        )
        assert survived == [0, 1]  # exactly the two persisted rows

        from repro.experiments.presets import small_scenario
        from repro.experiments.sweeps import analytical_grid_sweep

        grids = {"num_sensors": [20, 40], "threshold": [1, 2]}
        with obs.instrument() as ob:
            resumed = analytical_grid_sweep(
                small_scenario(), grids, checkpoint=str(checkpoint)
            )
            manifest = ob.manifest()
        uninterrupted = analytical_grid_sweep(small_scenario(), grids)
        assert resumed == uninterrupted
        assert manifest["counters"]["sweep.points_from_checkpoint"] == 2
        (resume_event,) = [
            e for e in ob.events if e["name"] == "sweep.resume"
        ]
        assert resume_event["from_checkpoint"] == [0, 1]
        # And the per-point path resumes from the same file byte-for-byte.
        per_point = analytical_grid_sweep(
            small_scenario(), grids, batch=False, checkpoint=str(checkpoint)
        )
        assert per_point == uninterrupted
