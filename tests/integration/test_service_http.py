"""Integration: ``repro serve`` over real sockets, in a real subprocess.

Boots the service exactly as an operator would (``python -m
repro.experiments.cli serve --port 0``), drives it with plain
``http.client`` requests, and asserts clean signal-driven shutdown —
including shutdown with a request still computing.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

SCENARIO = {
    "field_width": 10_000.0,
    "field_height": 10_000.0,
    "num_sensors": 240,
    "sensing_range": 600.0,
    "target_speed": 10.0,
    "sensing_period": 30.0,
    "detect_prob": 0.9,
    "window": 10,
    "threshold": 3,
}


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("repro-service (") and "listening on" in line:
            break
        if process.poll() is not None:
            break
    else:  # pragma: no cover - diagnostic path
        pass
    if "listening on" not in line:
        stderr = process.stderr.read()
        process.kill()
        raise AssertionError(f"server never announced itself; stderr:\n{stderr}")
    address = line.rsplit(" ", 1)[-1].strip()
    host, _, port = address.rpartition(":")
    return process, host, int(port)


def _shutdown(process):
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=30)
    finally:
        if process.poll() is None:  # pragma: no cover - hung server
            process.kill()


def _request(host, port, method, path, payload=None):
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


@pytest.mark.slow
class TestServeEndToEnd:
    def test_full_request_cycle_then_clean_sigterm(self):
        process, host, port = _spawn_server()
        try:
            status, _, body = _request(host, port, "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            # Readiness is the stricter probe: it requires warm replicas.
            status, _, body = _request(host, port, "GET", "/readyz")
            assert status == 200
            ready = json.loads(body)
            assert ready["status"] == "ready"
            assert ready["healthy_replicas"] >= ready["required_replicas"]

            analyze = {"scenario": SCENARIO, "body_truncation": 3}
            status, headers, cold = _request(host, port, "POST", "/analyze", analyze)
            assert status == 200
            assert headers["X-Repro-Cache"] == "miss"
            result = json.loads(cold)
            assert 0.0 <= result["detection_probability"] <= 1.0

            status, headers, warm = _request(host, port, "POST", "/analyze", analyze)
            assert status == 200
            assert headers["X-Repro-Cache"] == "hit"
            assert warm == cold, "cached response must be byte-identical"

            status, _, body = _request(
                host,
                port,
                "POST",
                "/simulate",
                {"scenario": SCENARIO, "trials": 200, "seed": 7},
            )
            assert status == 200
            simulated = json.loads(body)
            low, high = simulated["confidence_interval"]
            assert low <= simulated["detection_probability"] <= high

            status, _, body = _request(host, port, "GET", "/metrics")
            assert status == 200
            metrics = json.loads(body)
            assert metrics["counters"]["computations"] == 2
            assert metrics["counters"]["cache_served"] == 1
            assert metrics["response_cache"]["lookups"] == (
                metrics["response_cache"]["hits"]
                + metrics["response_cache"]["misses"]
            )

            status, _, body = _request(host, port, "POST", "/analyze", {"scenario": 3})
            assert status == 400
        finally:
            returncode = _shutdown(process)
        assert returncode == 0

    def test_sigterm_mid_request_exits_cleanly(self):
        process, host, port = _spawn_server("--request-timeout", "120")
        try:
            started = threading.Event()

            def slow_request():
                started.set()
                try:
                    _request(
                        host,
                        port,
                        "POST",
                        "/simulate",
                        {"scenario": SCENARIO, "trials": 60_000, "seed": 1},
                    )
                except Exception:
                    # The connection dying mid-shutdown is the expected
                    # outcome; the assertion is on the server's exit.
                    pass

            worker = threading.Thread(target=slow_request, daemon=True)
            worker.start()
            assert started.wait(timeout=10)
            time.sleep(1.0)  # let the request reach the worker pool
        finally:
            returncode = _shutdown(process)
        assert returncode == 0, "SIGTERM with a request in flight must exit 0"

    def test_backpressure_from_the_wire(self):
        process, host, port = _spawn_server(
            "--queue-limit", "1", "--request-timeout", "120"
        )
        try:
            results = []
            lock = threading.Lock()

            def fire(seed):
                try:
                    status, headers, _ = _request(
                        host,
                        port,
                        "POST",
                        "/simulate",
                        {"scenario": SCENARIO, "trials": 40_000, "seed": seed},
                    )
                    with lock:
                        results.append((status, headers))
                except Exception as exc:  # pragma: no cover - diagnostic
                    with lock:
                        results.append(("error", repr(exc)))

            # Distinct seeds: distinct fingerprints, so no coalescing —
            # the second concurrent request must overflow queue_limit=1.
            threads = [
                threading.Thread(target=fire, args=(seed,)) for seed in (1, 2, 3)
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.3)
            for thread in threads:
                thread.join(timeout=120)

            statuses = sorted(
                status for status, _ in results if isinstance(status, int)
            )
            assert len(statuses) == 3, f"unexpected results: {results}"
            assert statuses.count(503) >= 1, f"no backpressure seen: {results}"
            assert statuses.count(200) >= 1, f"no request admitted: {results}"
            for status, headers in results:
                if status == 503:
                    assert headers["Retry-After"] in {"1", "2", "3"}

            # The saturated server is still healthy afterwards.
            status, _, body = _request(host, port, "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            returncode = _shutdown(process)
        assert returncode == 0
