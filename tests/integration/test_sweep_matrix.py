"""Cross-path sweep equivalence matrix.

Every way the repo can run a parameter sweep must agree on the same
grid.  For the analytical model the bar is **byte identity**: the
batched kernel, the per-point path (serial and pooled), the
checkpoint-resumed path, the service ``/sweep`` endpoint, and the
distributed work-stealing path (1, 2, and 4 workers) must produce the
same ``json.dumps`` bytes for the rows, and paths that write a
checkpoint must write the same file bytes.  For Monte Carlo the bar is
**seed identity**: per-point, distributed, and resumed paths share the
common-random-numbers design, so the same root seed gives the same
rows bitwise; the fused engine is its own deterministic path and meets
the per-point rows at ``N = max(num_sensors)`` bitwise.
"""

import asyncio
import json

import pytest

from repro.experiments.presets import small_scenario
from repro.experiments.sweeps import (
    analytical_grid_sweep,
    distributed_grid_sweep,
    simulated_grid_sweep,
)

GRIDS = {"num_sensors": [8, 12, 16], "threshold": [1, 2]}
MC_GRIDS = {"num_sensors": [6, 10]}
MC_TRIALS = 300
MC_SEED = 20080619


@pytest.fixture(scope="module")
def scenario():
    return small_scenario()


@pytest.fixture(scope="module")
def serial_rows(scenario):
    """The reference: the batched serial path."""
    return analytical_grid_sweep(scenario, GRIDS)


def _bytes(rows):
    return json.dumps(rows, sort_keys=True)


class TestAnalyticalMatrix:
    def test_per_point_serial_matches_batched(self, scenario, serial_rows):
        rows = analytical_grid_sweep(scenario, GRIDS, batch=False)
        assert _bytes(rows) == _bytes(serial_rows)

    def test_per_point_pooled_matches_batched(self, scenario, serial_rows):
        rows = analytical_grid_sweep(scenario, GRIDS, batch=False, workers=2)
        assert _bytes(rows) == _bytes(serial_rows)

    def test_checkpoint_resume_matches_fresh(
        self, scenario, serial_rows, tmp_path
    ):
        fresh_ck = tmp_path / "fresh.json"
        resumed_ck = tmp_path / "resumed.json"
        fresh = analytical_grid_sweep(
            scenario, GRIDS, checkpoint=str(fresh_ck)
        )
        state = json.loads(fresh_ck.read_text())
        for lost in ("1", "4"):
            del state["completed"][lost]
        resumed_ck.write_text(json.dumps(state))
        resumed = analytical_grid_sweep(
            scenario, GRIDS, checkpoint=str(resumed_ck)
        )
        assert _bytes(fresh) == _bytes(resumed) == _bytes(serial_rows)
        assert fresh_ck.read_bytes() == resumed_ck.read_bytes()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_distributed_matches_serial(
        self, scenario, serial_rows, tmp_path, workers
    ):
        dist_ck = tmp_path / f"dist{workers}.json"
        serial_ck = tmp_path / f"serial{workers}.json"
        rows = distributed_grid_sweep(
            scenario,
            GRIDS,
            workers=workers,
            checkpoint=str(dist_ck),
            timeout=120,
        )
        assert _bytes(rows) == _bytes(serial_rows)
        analytical_grid_sweep(scenario, GRIDS, checkpoint=str(serial_ck))
        assert dist_ck.read_bytes() == serial_ck.read_bytes()

    def test_service_sweep_matches_serial_axis(self, scenario):
        from repro.service import AnalysisService, ServiceConfig

        axis = [8, 12, 16]
        reference = analytical_grid_sweep(scenario, {"num_sensors": axis})

        async def drive():
            service = AnalysisService(ServiceConfig(workers=1, replicas=1))
            try:
                body = json.dumps(
                    {
                        "scenario": scenario.to_dict(),
                        "parameter": "num_sensors",
                        "values": axis,
                    }
                ).encode()
                status, _, payload = await service.dispatch(
                    "POST", "/sweep", body
                )
                return status, json.loads(payload)
            finally:
                await service.stop()

        status, payload = asyncio.run(drive())
        assert status == 200
        assert _bytes(payload["rows"]) == _bytes(reference)


class TestMonteCarloMatrix:
    @pytest.fixture(scope="class")
    def per_point_rows(self, scenario):
        return simulated_grid_sweep(
            scenario, MC_GRIDS, trials=MC_TRIALS, seed=MC_SEED, fused=False
        )

    def test_distributed_matches_per_point_serial(
        self, scenario, per_point_rows, tmp_path
    ):
        dist_ck = tmp_path / "dist.json"
        serial_ck = tmp_path / "serial.json"
        rows = distributed_grid_sweep(
            scenario,
            MC_GRIDS,
            kind="simulated",
            trials=MC_TRIALS,
            seed=MC_SEED,
            workers=2,
            checkpoint=str(dist_ck),
            timeout=300,
        )
        assert _bytes(rows) == _bytes(per_point_rows)
        simulated_grid_sweep(
            scenario,
            MC_GRIDS,
            trials=MC_TRIALS,
            seed=MC_SEED,
            fused=False,
            checkpoint=str(serial_ck),
        )
        assert dist_ck.read_bytes() == serial_ck.read_bytes()

    def test_resumed_matches_fresh(self, scenario, per_point_rows, tmp_path):
        path = tmp_path / "ck.json"
        simulated_grid_sweep(
            scenario,
            MC_GRIDS,
            trials=MC_TRIALS,
            seed=MC_SEED,
            fused=False,
            checkpoint=str(path),
        )
        state = json.loads(path.read_text())
        del state["completed"]["0"]
        path.write_text(json.dumps(state))
        resumed = simulated_grid_sweep(
            scenario,
            MC_GRIDS,
            trials=MC_TRIALS,
            seed=MC_SEED,
            fused=False,
            checkpoint=str(path),
        )
        assert _bytes(resumed) == _bytes(per_point_rows)

    def test_fused_path_is_deterministic(self, scenario):
        first = simulated_grid_sweep(
            scenario, MC_GRIDS, trials=MC_TRIALS, seed=MC_SEED, fused=True
        )
        second = simulated_grid_sweep(
            scenario, MC_GRIDS, trials=MC_TRIALS, seed=MC_SEED, fused=True
        )
        assert _bytes(first) == _bytes(second)

    def test_fused_meets_per_point_at_full_population(
        self, scenario, per_point_rows
    ):
        """The common-random-numbers contract from the fused engine: at
        ``N = max(num_sensors)`` both paths draw the same trials."""
        fused = simulated_grid_sweep(
            scenario, MC_GRIDS, trials=MC_TRIALS, seed=MC_SEED, fused=True
        )
        n_max = max(MC_GRIDS["num_sensors"])
        fused_row = next(r for r in fused if r["num_sensors"] == n_max)
        serial_row = next(
            r for r in per_point_rows if r["num_sensors"] == n_max
        )
        assert fused_row == serial_row
