"""Acceptance: the full streaming pipeline over real sockets.

Boots ``repro serve --stream-port`` in a subprocess, attaches three
``/subscribe`` consumers — one deliberately slow (tiny receive buffer,
never reads) — and publishes two sessions into the ingest listener:

1. a flood session (20 000 empty periods) that must evict the slow
   consumer exactly once (``stream.subscriber_evictions == 1``) while
   the fast consumers keep up;
2. a golden-corpus recording published with its manifest event digest
   pinned — the server's online detector must agree (the publish fails
   otherwise) and the fast consumers' fanned-out event sequences must
   hash to the same digest.

Both fast consumers must observe byte-identical frame sequences.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.streaming.client import StreamPublisher, subscribe
from repro.streaming.detector import DetectionEvent, event_digest
from repro.streaming.recorder import StreamReplayer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "data" / "streams" / "multi_target.jsonl"

FLOOD_PERIODS = 20_000
EVENT_FIELDS = (
    "period",
    "fired",
    "new_detection",
    "windowed_reports",
    "distinct_nodes",
    "new_reports",
)


def _spawn_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--port",
            "0",
            "--stream-port",
            "0",
            "--subscriber-queue",
            "64",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    addresses = {}
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline and len(addresses) < 2:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            break
        # Both announce lines put the address in the final token.
        if line.startswith("repro-service (") and "listening on" in line:
            addresses["http"] = line.rsplit(" ", 1)[-1].strip()
        elif line.startswith("repro-stream ingest listening on"):
            addresses["ingest"] = line.rsplit(" ", 1)[-1].strip()
    if len(addresses) < 2:
        stderr = process.stderr.read()
        process.kill()
        raise AssertionError(
            f"server never announced both listeners; stderr:\n{stderr}"
        )

    def port(key):
        return int(addresses[key].rpartition(":")[2])

    return process, port("http"), port("ingest")


def _shutdown(process):
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=30)
    finally:
        if process.poll() is None:  # pragma: no cover - hung server
            process.kill()


def _collect_sessions(http_port, out, ends=2):
    """Subscribe and collect frames until `ends` sessions have ended."""
    sock, frames = subscribe("127.0.0.1", http_port, until_end=False)
    try:
        seen = 0
        for frame in frames:
            out.append(frame)
            if frame.get("type") == "end":
                seen += 1
                if seen >= ends:
                    return
    finally:
        sock.close()


@pytest.mark.slow
class TestStreamingAcceptance:
    def test_publish_fanout_eviction_and_digest(self):
        replayer = StreamReplayer(CORPUS)
        process, http_port, ingest_port = _spawn_server()
        try:
            # One deliberately slow consumer: tiny receive buffer and it
            # never reads a byte.
            slow_sock, _ = subscribe(
                "127.0.0.1", http_port, recv_buffer=4096
            )
            fast_frames = {"a": [], "b": []}
            consumers = [
                threading.Thread(
                    target=_collect_sessions, args=(http_port, out)
                )
                for out in fast_frames.values()
            ]
            for consumer in consumers:
                consumer.start()
            time.sleep(0.5)  # let all three subscriptions register

            publisher = StreamPublisher("127.0.0.1", ingest_port)

            # Session 1: flood.  Evicts the slow consumer; fast ones keep up.
            scenario = replayer.recorded.scenario
            flood = publisher.publish(
                scenario,
                ((p, []) for p in range(1, FLOOD_PERIODS + 1)),
                seed=1,
            )
            assert flood["periods"] == FLOOD_PERIODS
            assert flood["detections"] == []

            # Session 2: the golden recording, offline digest pinned —
            # the server rejects the stream unless its online detector
            # agrees bitwise.
            summary = publisher.publish_recorded(replayer.recorded)
            assert summary["event_digest"] == (
                replayer.manifest["event_digest"]
            )
            assert summary["periods"] == replayer.manifest["periods"]
            assert summary["total_reports"] == (
                replayer.manifest["total_reports"]
            )
            assert summary["detections"] == (
                replayer.manifest["detection_periods"]
            )

            for consumer in consumers:
                consumer.join(timeout=120)
                assert not consumer.is_alive(), "consumer never finished"

            # Both fast consumers saw identical, complete sequences:
            # (hello + events + end) for each of the two sessions.
            assert fast_frames["a"] == fast_frames["b"]
            expected = (FLOOD_PERIODS + 2) + (replayer.manifest["periods"] + 2)
            assert len(fast_frames["a"]) == expected

            # The second session's fanned-out events hash to the
            # recorder manifest's digest.
            session_id = replayer.manifest["session"]
            events = [
                DetectionEvent(**{k: f[k] for k in EVENT_FIELDS})
                for f in fast_frames["a"]
                if f.get("type") == "event" and f.get("session") == session_id
            ]
            assert event_digest(events) == replayer.manifest["event_digest"]

            # Exactly one eviction, mirrored through the metrics page.
            metrics = json.load(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{http_port}/metrics"
                )
            )
            stream = metrics["stream"]
            assert stream["counters"]["subscriber_evictions"] == 1
            assert stream["counters"]["sessions_completed"] == 2
            assert stream["counters"]["subscribers"] == 3
            # The evicted subscriber is detached immediately; the fast
            # consumers' own disconnects are only observed at the next
            # write, so at most the two of them may still be registered.
            assert stream["subscribers_active"] <= 2
            slow_sock.close()
        finally:
            returncode = _shutdown(process)
        assert returncode == 0
