"""Integration: false-alarm model vs simulation with injected false alarms."""

import pytest

from repro.core.false_alarms import window_false_alarm_probability
from repro.experiments.presets import small_scenario
from repro.simulation.runner import MonteCarloSimulator


class TestFalseAlarmModelVsSimulation:
    def test_noise_only_window_probability_matches_binomial(self):
        """Simulate a network with false alarms; since the target crosses
        it too, compare only the *false* report counts to the Binomial
        model."""
        import numpy as np

        scenario = small_scenario(num_sensors=40)
        pf = 0.002
        result = MonteCarloSimulator(
            scenario, trials=20_000, seed=3, false_alarm_prob=pf
        ).run()
        # False reports happen at non-covered or non-detected slots; the
        # covered fraction is tiny, so Binomial(N*M, pf) is the model.
        trials = scenario.num_sensors * scenario.window
        expected_mean = trials * pf
        assert result.false_report_counts.mean() == pytest.approx(
            expected_mean, rel=0.1
        )
        for k in (1, 2):
            simulated = float(np.mean(result.false_report_counts >= k))
            modelled = window_false_alarm_probability(
                scenario.num_sensors, scenario.window, pf, k
            )
            assert simulated == pytest.approx(modelled, abs=0.01), k

    def test_false_alarms_raise_detection_probability(self):
        """Section 2's remark: false alarms mixed with real detections only
        increase the measured detection probability."""
        scenario = small_scenario(num_sensors=40)
        clean = MonteCarloSimulator(scenario, trials=8000, seed=4).run()
        noisy = MonteCarloSimulator(
            scenario, trials=8000, seed=4, false_alarm_prob=0.005
        ).run()
        assert (
            noisy.detection_probability
            >= clean.detection_probability - 0.01
        )
