"""Integration: exact latency analysis vs the simulator's first crossings."""

import numpy as np
import pytest

from repro.core.latency import DetectionLatencyAnalysis
from repro.experiments.presets import onr_scenario
from repro.simulation.runner import MonteCarloSimulator


class TestLatencyAgreement:
    @pytest.fixture(scope="class")
    def pair(self):
        scenario = onr_scenario(num_sensors=240, speed=10.0)
        analysis = DetectionLatencyAnalysis(scenario)
        result = MonteCarloSimulator(scenario, trials=8000, seed=41).run()
        return analysis, result

    def test_cdf_pointwise_agreement(self, pair):
        analysis, result = pair
        analytical = analysis.detection_cdf()
        simulated = result.latency_cdf()
        np.testing.assert_allclose(analytical, simulated, atol=0.02)

    def test_mean_latency_agreement(self, pair):
        analysis, result = pair
        assert analysis.expected_latency() == pytest.approx(
            result.mean_latency(), abs=0.2
        )

    def test_quantiles_bracket_simulation(self, pair):
        analysis, result = pair
        simulated_cdf = result.latency_cdf()
        for quantile in (0.25, 0.5, 0.75, 0.9):
            p = analysis.latency_quantile(quantile)
            assert p is not None
            # The simulated CDF crosses the quantile within one period of
            # the analytical crossing point.
            assert simulated_cdf[min(p + 1, len(simulated_cdf) - 1)] >= quantile - 0.02
            if p >= 2:
                assert simulated_cdf[p - 2] <= quantile + 0.02

    def test_slow_target_has_longer_latency(self):
        fast = DetectionLatencyAnalysis(
            onr_scenario(num_sensors=240, speed=10.0)
        ).expected_latency()
        slow = DetectionLatencyAnalysis(
            onr_scenario(num_sensors=240, speed=4.0)
        ).expected_latency()
        assert slow > fast
