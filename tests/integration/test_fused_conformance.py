"""Fused Monte Carlo conformance: one pass vs the analytical grid.

The fused engine (:mod:`repro.simulation.fused`) answers an entire
``num_sensors x threshold`` grid from a single common-random-numbers
pass.  This suite holds that pass to the same statistical contract as
the per-point conformance corpus (``test_conformance.py``):

    at **every** grid point, the batched analytical ``P_M[X >= k]``
    must lie inside the Wilson 99% score interval of the fused
    10,000-trial estimate.

Common random numbers change the joint distribution across points (the
columns are correlated) but not any marginal — each column is a valid
10k-trial binomial sample at its ``N`` — so the per-point Wilson
interval check is exactly as valid here as it is for independent runs.
A fused-path regression (a wrong prefix index, a cumsum off by one, a
generator-order drift) shifts some column's marginal and fails its
point.

Cases reuse the corpus geometry where the M-S-approach is known
accurate; the ONR-scale axis is marked ``slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import BatchedMarkovSpatialAnalysis
from repro.simulation.fused import FusedMonteCarloEngine

from tests.integration.test_conformance import (
    BODY_TRUNCATION,
    SEED,
    TRIALS,
    wilson_interval,
)


def _check_grid(scenario, num_sensors, thresholds, body_truncation, substeps=1):
    """Assert the analytical grid sits inside Wilson 99% at every point."""
    fused = FusedMonteCarloEngine(
        scenario,
        num_sensors=num_sensors,
        thresholds=thresholds,
        trials=TRIALS,
        seed=SEED,
    ).run()
    detections = fused.detections_grid()
    analytical = BatchedMarkovSpatialAnalysis(
        scenario, body_truncation=body_truncation, substeps=substeps
    ).detection_probability_grid(
        num_sensors=num_sensors, thresholds=thresholds
    )
    failures = []
    for i, n in enumerate(num_sensors):
        for j, k in enumerate(thresholds):
            low, high = wilson_interval(int(detections[i, j]), TRIALS)
            if not low <= analytical[i, j] <= high:
                failures.append(
                    f"(N={n}, k={k}): analytical {analytical[i, j]:.4f} "
                    f"outside [{low:.4f}, {high:.4f}] "
                    f"(simulated {detections[i, j] / TRIALS:.4f})"
                )
    assert not failures, (
        f"{len(failures)} of {len(num_sensors) * len(thresholds)} fused "
        "grid points outside Wilson 99%:\n" + "\n".join(failures)
    )
    return fused, analytical


class TestFusedConformance:
    def test_small_axis_every_point_inside_wilson(self, small):
        _check_grid(
            small,
            num_sensors=[15, 25, 40, 60],
            thresholds=[1, 2, 3, 5],
            body_truncation=BODY_TRUNCATION,
        )

    @pytest.mark.slow
    def test_onr_axis_every_point_inside_wilson(self, onr):
        _check_grid(
            onr,
            num_sensors=[120, 180, 240],
            thresholds=[3, 5],
            body_truncation=BODY_TRUNCATION,
            substeps=2,
        )

    def test_fused_grid_monotone_like_analytical(self, small):
        fused, analytical = _check_grid(
            small,
            num_sensors=[20, 40],
            thresholds=[1, 3],
            body_truncation=BODY_TRUNCATION,
        )
        grid = fused.detection_probability_grid()
        # Both surfaces are exactly monotone (CRN on the fused side,
        # stochastic dominance on the analytical side).
        assert (np.diff(grid, axis=0) >= 0).all()
        assert (np.diff(grid, axis=1) <= 0).all()
        assert (np.diff(analytical, axis=0) >= 0).all()
        assert (np.diff(analytical, axis=1) <= 0).all()
