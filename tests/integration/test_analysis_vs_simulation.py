"""Integration: the paper's headline validation (Fig. 9), down-scaled.

Analysis and Monte Carlo simulation must agree within sampling error.  The
full 10,000-trial sweeps live in ``benchmarks/``; here we use enough trials
for tight-but-fast statistical checks.
"""

import pytest

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.experiments.presets import onr_scenario, small_scenario
from repro.simulation.runner import MonteCarloSimulator
from repro.simulation.targets import RandomWalkTarget

TRIALS = 4000


class TestFig9aAgreement:
    @pytest.mark.parametrize(
        "num_sensors,speed", [(60, 10.0), (240, 10.0), (120, 4.0)]
    )
    def test_analysis_inside_simulation_interval(self, num_sensors, speed):
        scenario = onr_scenario(num_sensors=num_sensors, speed=speed)
        analysed = MarkovSpatialAnalysis(scenario, 3).detection_probability()
        result = MonteCarloSimulator(scenario, trials=TRIALS, seed=99).run()
        low, high = result.confidence_interval(confidence=0.999)
        assert low <= analysed <= high, (
            f"analysis {analysed:.4f} outside sim CI [{low:.4f}, {high:.4f}]"
        )

    def test_detection_grows_with_node_count_in_simulation(self):
        values = []
        for num_sensors in (60, 150, 240):
            scenario = onr_scenario(num_sensors=num_sensors, speed=10.0)
            values.append(
                MonteCarloSimulator(scenario, trials=2000, seed=7)
                .run()
                .detection_probability
            )
        assert values == sorted(values)

    def test_faster_target_detected_more_often_in_simulation(self):
        # The paper's sparse-network observation, on the simulation side.
        slow = MonteCarloSimulator(
            onr_scenario(num_sensors=150, speed=4.0), trials=3000, seed=13
        ).run()
        fast = MonteCarloSimulator(
            onr_scenario(num_sensors=150, speed=10.0), trials=3000, seed=13
        ).run()
        assert fast.detection_probability > slow.detection_probability


class TestFig9bUnnormalised:
    def test_unnormalised_analysis_undershoots_simulation(self):
        scenario = onr_scenario(num_sensors=240, speed=10.0)
        raw = MarkovSpatialAnalysis(scenario, 3).detection_probability(
            normalize=False
        )
        result = MonteCarloSimulator(scenario, trials=TRIALS, seed=21).run()
        # Fig. 9(b): the error is visible (paper: above 4%; Eqs. 7/9/14
        # literal: ~2.4%) and one-sided.
        assert result.detection_probability - raw > 0.01


class TestFig9cRandomWalk:
    @pytest.mark.parametrize("num_sensors", [120, 240])
    def test_straight_line_analysis_close_to_random_walk_sim(self, num_sensors):
        scenario = onr_scenario(num_sensors=num_sensors, speed=10.0)
        analysed = MarkovSpatialAnalysis(scenario, 3).detection_probability()
        result = MonteCarloSimulator(
            scenario,
            trials=TRIALS,
            seed=31,
            target=RandomWalkTarget(scenario.target_speed),
        ).run()
        # Paper: maximum error 2.4%; leave headroom for sampling noise.
        assert analysed == pytest.approx(result.detection_probability, abs=0.04)


class TestExactOracleVsSimulation:
    def test_oracle_matches_torus_simulation_tightly(self, small):
        """The strongest end-to-end check: the exact oracle and the torus
        simulator share every assumption, so they must agree to sampling
        error on the full report-count tail, not only at one threshold."""
        exact = ExactSpatialAnalysis(small)
        result = MonteCarloSimulator(small, trials=20_000, seed=5).run()
        for threshold in (1, 2, 3, 5, 8):
            simulated = result.detection_probability_at(threshold=threshold)
            assert exact.detection_probability(threshold) == pytest.approx(
                simulated, abs=0.015
            ), f"threshold={threshold}"

    def test_mean_report_count_matches(self, small):
        exact = ExactSpatialAnalysis(small)
        result = MonteCarloSimulator(small, trials=20_000, seed=6).run()
        assert result.report_counts.mean() == pytest.approx(
            exact.expected_report_count(), rel=0.03
        )


class TestBoundaryModes:
    def test_clip_mode_detects_no_more_than_torus(self):
        """Losing coverage at the field edge can only hurt detection."""
        scenario = small_scenario(num_sensors=60)
        torus = MonteCarloSimulator(
            scenario, trials=8000, seed=17, boundary="torus"
        ).run()
        clip = MonteCarloSimulator(
            scenario, trials=8000, seed=17, boundary="clip"
        ).run()
        assert (
            clip.detection_probability
            <= torus.detection_probability + 0.02
        )

    def test_interior_mode_matches_torus_statistics(self):
        """A track kept fully inside the field sees the same uniform sensor
        density a torus provides (no coverage loss), so the two boundary
        modes agree statistically."""
        scenario = small_scenario(num_sensors=60)
        torus = MonteCarloSimulator(
            scenario, trials=8000, seed=23, boundary="torus"
        ).run()
        interior = MonteCarloSimulator(
            scenario, trials=8000, seed=23, boundary="interior"
        ).run()
        assert interior.detection_probability == pytest.approx(
            torus.detection_probability, abs=0.03
        )
