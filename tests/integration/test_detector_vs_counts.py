"""Integration: the online GroupDetector reproduces the simulator's rule.

The Monte Carlo runner counts reports with array arithmetic; a deployed
system would run :class:`GroupDetector` on streaming reports.  Feeding the
same detection events through both must give the same decision whenever the
window covers the whole episode (M simulation periods = detector window).
"""

import numpy as np
import pytest

from repro.detection.group import GroupDetector
from repro.detection.reports import DetectionReport
from repro.experiments.presets import small_scenario
from repro.geometry.shapes import Point
from repro.simulation.sensing import sample_detections, segment_coverage
from repro.simulation.targets import StraightLineTarget


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_stream_decision_equals_batch_count(seed):
    scenario = small_scenario()
    rng = np.random.default_rng(seed)
    batch = 64

    sensors = rng.uniform(
        (0.0, 0.0),
        (scenario.field.width, scenario.field.height),
        size=(batch, scenario.num_sensors, 2),
    )
    starts = rng.uniform(
        (0.0, 0.0), (scenario.field.width, scenario.field.height), size=(batch, 2)
    )
    waypoints = StraightLineTarget(scenario.target_speed).sample_waypoints(
        starts, scenario.window, scenario.sensing_period, rng
    )
    coverage = segment_coverage(sensors, waypoints, scenario.sensing_range)
    detected = sample_detections(coverage, scenario.detect_prob, rng)

    for b in range(batch):
        batch_decision = detected[b].sum() >= scenario.threshold
        detector = GroupDetector(
            window=scenario.window, threshold=scenario.threshold
        )
        stream_decision = False
        for period in range(1, scenario.window + 1):
            nodes = np.flatnonzero(detected[b, :, period - 1])
            reports = [
                DetectionReport(
                    int(node),
                    period,
                    Point(float(sensors[b, node, 0]), float(sensors[b, node, 1])),
                )
                for node in nodes
            ]
            stream_decision = detector.observe(period, reports) or stream_decision
        assert stream_decision == batch_decision


def test_track_filter_keeps_true_target_decisions(rng):
    """With the speed-gate enabled at the true target speed, genuine
    detections still fire (the filter never rejects a real track)."""
    scenario = small_scenario()
    sensors = rng.uniform(
        (0.0, 0.0),
        (scenario.field.width, scenario.field.height),
        size=(1, scenario.num_sensors, 2),
    )
    # A deterministic central track.
    start = np.array([[scenario.field.width * 0.2, scenario.field.height * 0.5]])
    waypoints = StraightLineTarget(
        scenario.target_speed, heading=0.0
    ).sample_waypoints(start, scenario.window, scenario.sensing_period, rng)
    coverage = segment_coverage(sensors, waypoints, scenario.sensing_range)
    detected = sample_detections(coverage, 1.0, rng)

    from repro.detection.track_filter import SpeedGateTrackFilter

    gate = SpeedGateTrackFilter(
        max_speed=scenario.target_speed,
        sensing_range=scenario.sensing_range,
        period_length=scenario.sensing_period,
    )
    plain = GroupDetector(scenario.window, scenario.threshold)
    filtered = GroupDetector(
        scenario.window, scenario.threshold, track_filter=gate
    )
    plain_fired = filtered_fired = False
    for period in range(1, scenario.window + 1):
        nodes = np.flatnonzero(detected[0, :, period - 1])
        reports = [
            DetectionReport(
                int(node),
                period,
                Point(float(sensors[0, node, 0]), float(sensors[0, node, 1])),
            )
            for node in nodes
        ]
        plain_fired = plain.observe(period, reports) or plain_fired
        filtered_fired = filtered.observe(period, reports) or filtered_fired
    assert filtered_fired == plain_fired
