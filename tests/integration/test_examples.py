"""Integration: every shipped example runs end-to-end.

Examples are the first thing users touch; these tests keep them from
rotting.  Each example is executed in a subprocess (its own interpreter,
like a user would) and checked for exit code 0 plus a keyword from its
expected output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: (script, keyword expected in stdout)
EXAMPLES = [
    ("quickstart.py", "M-S-approach detection probability"),
    ("parameter_study.py", "Sweep 4"),
    ("multi_target_demo.py", "track candidates"),
    ("latency_study.py", "mean latency"),
    ("undersea_surveillance.py", "Step 3"),
    ("border_monitoring.py", "track filter"),
    ("fleet_procurement.py", "Winner"),
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamplesRun:
    @pytest.mark.parametrize("name,keyword", EXAMPLES)
    def test_example_succeeds(self, name, keyword):
        result = run_example(name)
        assert result.returncode == 0, result.stderr[-2000:]
        assert keyword in result.stdout, result.stdout[-2000:]

    def test_every_example_file_is_covered(self):
        shipped = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        covered = {name for name, _ in EXAMPLES}
        assert shipped == covered, shipped ^ covered
