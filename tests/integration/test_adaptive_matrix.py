"""The oracle-equivalence tier: adaptive answers == dense answers.

For every pinned scenario (including a degraded-faults one) and every
evaluator backend — in-process, cached, and a 2-worker distributed
fleet — each adaptive query must return an answer **identical** to the
dense-grid scan's (argmin-identical integers, byte-identical canonical
frontier rows), while its ledger records strictly fewer oracle
evaluations than the dense scan charges; in aggregate the matrix must
stay at or below 25% of the dense evaluation count (the acceptance
ratio ``bench_regression.py`` also gates on the committed PERF-ADAPT
record).

Dense references are computed once per scenario on the in-process
engine: dense answers are evaluator-independent by the batch-invariance
and wire-exactness contracts, which is precisely what this tier pins.
"""

import json

import pytest

from repro.adaptive import (
    CachedEvaluator,
    InProcessEvaluator,
    adaptive_maximum_threshold,
    adaptive_minimum_sensors,
    adaptive_rule_frontier,
    dense_rule_frontier,
)
from repro.cache import clear_analysis_cache
from repro.core.design import maximum_threshold, minimum_sensors
from repro.core.scenario import Scenario
from repro.deployment.field import SensorField
from repro.distributed import FleetEvaluator
from repro.experiments.presets import small_scenario
from repro.faults import FaultModel, degraded_scenario

MIN_SENSORS_TARGET = 0.25
MIN_SENSORS_CEILING = 64
THRESHOLD_TARGET = 0.15
FRONTIER_TARGETS = (0.05, 0.15, 0.3)

#: Acceptance ratio: aggregate adaptive evaluations per backend must not
#: exceed this fraction of the aggregate dense evaluation count.
MAX_EVALUATION_RATIO = 0.25


def _tiny() -> Scenario:
    return Scenario(
        field=SensorField.square(4_000.0),
        num_sensors=12,
        sensing_range=100.0,
        target_speed=20.0,
        sensing_period=10.0,
        detect_prob=0.8,
        window=6,
        threshold=2,
    )


SCENARIOS = {
    "baseline": small_scenario,
    "tight-rule": lambda: small_scenario(threshold=2, window=10),
    "long-range": lambda: small_scenario(sensing_range=350.0),
    "fast-target": lambda: small_scenario(target_speed=15.0),
    "tiny": _tiny,
    "degraded": lambda: degraded_scenario(
        small_scenario(),
        FaultModel(stuck_silent_frac=0.2, dropout_rate=0.1),
    ),
}

BACKENDS = ("in-process", "cached", "distributed")


def make_evaluator(backend):
    if backend == "in-process":
        return InProcessEvaluator()
    if backend == "cached":
        return CachedEvaluator()
    return FleetEvaluator(workers=2, timeout=180)


#: Fleet rounds are whole sweeps: batch a few section points per round
#: so fleet spin-up is paid O(log_4) times instead of O(log_2).
ROUND_POINTS = {"in-process": 1, "cached": 1, "distributed": 3}


@pytest.fixture(scope="module")
def dense():
    """Dense answers and dense evaluation costs, once per scenario."""
    references = {}
    for name, factory in SCENARIOS.items():
        scenario = factory()
        ledger_min = InProcessEvaluator()
        answer_min = minimum_sensors(
            scenario,
            MIN_SENSORS_TARGET,
            max_sensors=MIN_SENSORS_CEILING,
            evaluator=ledger_min,
        )
        ledger_thr = InProcessEvaluator()
        answer_thr = maximum_threshold(
            scenario, THRESHOLD_TARGET, evaluator=ledger_thr
        )
        ledger_frontier = InProcessEvaluator()
        frontier = dense_rule_frontier(
            scenario, FRONTIER_TARGETS, evaluator=ledger_frontier
        )
        references[name] = {
            "scenario": scenario,
            "minimum_sensors": answer_min,
            "minimum_sensors_cost": ledger_min.ledger.evaluations,
            "maximum_threshold": answer_thr,
            "maximum_threshold_cost": ledger_thr.ledger.evaluations,
            "rule_frontier": frontier,
            "rule_frontier_cost": ledger_frontier.ledger.evaluations,
        }
    return references


@pytest.mark.parametrize("backend", BACKENDS)
def test_adaptive_matrix(dense, backend):
    clear_analysis_cache()
    round_points = ROUND_POINTS[backend]
    spent_total = 0
    dense_total = 0
    for name, reference in dense.items():
        scenario = reference["scenario"]
        label = f"{name}/{backend}"

        evaluator = make_evaluator(backend)
        answer = adaptive_minimum_sensors(
            scenario,
            MIN_SENSORS_TARGET,
            max_sensors=MIN_SENSORS_CEILING,
            evaluator=evaluator,
            round_points=round_points,
        )
        spent = evaluator.ledger.evaluations
        assert answer == reference["minimum_sensors"], label
        assert spent < reference["minimum_sensors_cost"], label
        assert evaluator.ledger.fallbacks == 0, label
        spent_total += spent
        dense_total += reference["minimum_sensors_cost"]

        evaluator = make_evaluator(backend)
        answer = adaptive_maximum_threshold(
            scenario,
            THRESHOLD_TARGET,
            evaluator=evaluator,
            round_points=round_points,
        )
        spent = evaluator.ledger.evaluations
        assert answer == reference["maximum_threshold"], label
        assert spent < reference["maximum_threshold_cost"], label
        spent_total += spent
        dense_total += reference["maximum_threshold_cost"]

        evaluator = make_evaluator(backend)
        rows = adaptive_rule_frontier(
            scenario,
            FRONTIER_TARGETS,
            evaluator=evaluator,
            round_points=round_points,
        )
        spent = evaluator.ledger.evaluations
        assert json.dumps(rows, sort_keys=True) == json.dumps(
            reference["rule_frontier"], sort_keys=True
        ), label
        assert spent < reference["rule_frontier_cost"], label
        spent_total += spent
        dense_total += reference["rule_frontier_cost"]

    assert spent_total <= MAX_EVALUATION_RATIO * dense_total, (
        f"{backend}: adaptive spent {spent_total} of {dense_total} dense "
        f"evaluations ({spent_total / dense_total:.1%}), above the "
        f"{MAX_EVALUATION_RATIO:.0%} acceptance ratio"
    )


def test_cached_backend_answers_second_pass_for_free(dense):
    # The cache axis of the matrix: a warmed cached evaluator answers the
    # whole query set again without a single new oracle evaluation.
    clear_analysis_cache()
    evaluator = CachedEvaluator()
    scenario = dense["baseline"]["scenario"]

    def run_all():
        return (
            adaptive_minimum_sensors(
                scenario,
                MIN_SENSORS_TARGET,
                max_sensors=MIN_SENSORS_CEILING,
                evaluator=evaluator,
            ),
            adaptive_maximum_threshold(
                scenario, THRESHOLD_TARGET, evaluator=evaluator
            ),
            adaptive_rule_frontier(
                scenario, FRONTIER_TARGETS, evaluator=evaluator
            ),
        )

    first = run_all()
    spent = evaluator.ledger.evaluations
    second = run_all()
    assert second == first
    assert evaluator.ledger.evaluations == spent
    assert evaluator.ledger.cache_hits >= spent
