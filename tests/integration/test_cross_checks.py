"""Cross-checks between independent computational paths.

Each test computes the same quantity two structurally different ways —
the strongest kind of regression test this library can have.
"""

import numpy as np
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.counting import counting_transition_matrix, merge_tail


class TestAbsorptionVsDirectEnumeration:
    def test_expected_first_passage_via_absorbing_chain(self):
        """For a homogeneous counting process, the absorbing-chain formula
        for E[steps to reach >= k] must match direct enumeration of the
        first-passage distribution."""
        pmf = np.array([0.55, 0.3, 0.15])  # reports per period
        threshold = 4
        # Chain over states 0..threshold with >= threshold merged/absorbing.
        matrix = counting_transition_matrix(pmf, threshold + 1, absorb_overflow=True)
        chain = MarkovChain(matrix)
        by_formula = chain.expected_steps_to_absorption(absorbing=[threshold])[0]

        # Direct: propagate the distribution, accumulate E[T] mass by mass.
        distribution = np.zeros(threshold + 1)
        distribution[0] = 1.0
        expectation = 0.0
        absorbed = 0.0
        for step in range(1, 10_000):
            distribution = distribution @ matrix
            newly = distribution[threshold] - absorbed
            expectation += step * newly
            absorbed = distribution[threshold]
            if 1.0 - absorbed < 1e-14:
                break
        assert by_formula == pytest.approx(expectation, rel=1e-9)

    def test_absorption_probability_matches_convolution_tail(self):
        """P[absorbed within M steps] == P[sum of M increments >= k]."""
        pmf = np.array([0.7, 0.2, 0.1])
        threshold, steps = 3, 6
        matrix = counting_transition_matrix(pmf, threshold + 1, absorb_overflow=True)
        start = np.zeros(threshold + 1)
        start[0] = 1.0
        via_chain = MarkovChain(matrix).run(start, steps)[threshold]

        total = np.array([1.0])
        for _ in range(steps):
            total = np.convolve(total, pmf)
        via_convolution = merge_tail(total, threshold)[threshold]
        assert via_chain == pytest.approx(via_convolution, abs=1e-12)


class TestPublicApiSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.core",
            "repro.geometry",
            "repro.deployment",
            "repro.markov",
            "repro.simulation",
            "repro.detection",
            "repro.tracking",
            "repro.network",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name) is not None, (module_name, name)

    def test_cli_plot_specs_reference_real_experiments(self):
        from repro.experiments.cli import _EXPERIMENTS, _PLOT_SPECS

        # Every plot spec belongs to an experiment the figures module
        # produces; check ids match the figure functions' record ids by
        # running the cheapest ones.
        from repro.experiments import figures

        produced = {
            "FIG8": figures.fig8_required_truncation(node_counts=(60,)),
            "EXT-EXACT": figures.truncation_ablation(truncations=(1,)),
        }
        for experiment_id, record in produced.items():
            x_column, y_columns, group_by = _PLOT_SPECS[experiment_id]
            assert x_column in record.columns
            for column in y_columns:
                assert column in record.columns, (experiment_id, column)
        assert len(_EXPERIMENTS) >= 20  # the CLI covers every experiment
