"""Statistical conformance suite: analytical engine vs Monte Carlo.

A pinned corpus of scenarios — spanning sensor counts, thresholds,
window lengths, speeds, detection probabilities, and one degraded
(faulted) configuration — each checked by the same statistical contract:

    the analytical ``P_M[X >= k]`` must lie inside the **Wilson 99%
    score interval** of a 10,000-trial seeded Monte Carlo estimate.

The Wilson interval half-width at 10k trials is roughly 1.3% at
``p = 0.5``, so the suite fails when the model's truncation bias (or a
kernel regression) drifts past sampling noise.  Every analytical value
is produced by the **batched** kernel
(:class:`repro.core.batched.BatchedMarkovSpatialAnalysis`), so this
suite also pins the new engine — not just the scalar reference it was
validated against — to ground truth.

Scenarios were chosen where the M-S-approach is known to be accurate
(V >= 10-style geometries; ``EXPERIMENTS.md`` records biases up to
0.033 at V = 4, which would not fit inside the interval).  Each case is
seeded, so reruns are deterministic; the ONR-scale case is marked
``slow``.

When the ``REPRO_CONFORMANCE_REPORT`` environment variable names a
path, the suite writes a JSON report of every checked case there
(pass or fail) — CI uploads it as an artifact when the job fails.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.core.batched import BatchedMarkovSpatialAnalysis
from repro.core.scenario import Scenario
from repro.experiments.presets import onr_scenario, small_scenario
from repro.faults import FaultModel, degraded_detection_probability, degraded_scenario
from repro.simulation.runner import MonteCarloSimulator

#: Two-sided 99% normal quantile for the Wilson score interval.
Z99 = 2.5758293035489004

TRIALS = 10_000
SEED = 20080617  # ICDCS 2008 opening day; any fixed seed would do.
BODY_TRUNCATION = 4


def wilson_interval(successes: int, trials: int, z: float = Z99):
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because it stays inside
    ``[0, 1]`` and keeps coverage at the extreme probabilities some
    corpus cases pin (e.g. the ONR point at ``p ~ 0.98``).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half_width = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return centre - half_width, centre + half_width


@dataclass(frozen=True)
class ConformanceCase:
    """One pinned scenario of the corpus."""

    name: str
    scenario: Scenario
    faults: Optional[FaultModel] = None


def _corpus():
    small = small_scenario()
    cases = [
        ConformanceCase("small-default", small),
        ConformanceCase("small-n25-k2", small.replace(num_sensors=25, threshold=2)),
        ConformanceCase("small-n60-k5", small.replace(num_sensors=60, threshold=5)),
        ConformanceCase("small-v15", small.replace(target_speed=15.0)),
        ConformanceCase("small-pd07", small.replace(detect_prob=0.7)),
        ConformanceCase("small-k1", small.replace(threshold=1)),
        ConformanceCase("small-m16-k6", small.replace(window=16, threshold=6)),
        ConformanceCase(
            "small-degraded-dropout20-silent10",
            small,
            faults=FaultModel(dropout_rate=0.2, stuck_silent_frac=0.1),
        ),
    ]
    params = [pytest.param(case, id=case.name) for case in cases]
    params.append(
        pytest.param(
            ConformanceCase(
                "onr-v10-n240-k5", onr_scenario(num_sensors=240, speed=10.0)
            ),
            id="onr-v10-n240-k5",
            marks=pytest.mark.slow,
        )
    )
    return params


def _analytical_probability(case: ConformanceCase) -> float:
    """The model's prediction for the case, via the batched kernel."""
    if case.faults is None:
        return BatchedMarkovSpatialAnalysis(
            case.scenario, body_truncation=BODY_TRUNCATION
        ).detection_probability()
    # Faulted: fold the fault model into an effective scenario and run
    # the same kernel on it (mirrors degraded_detection_probability).
    effective = degraded_scenario(case.scenario, case.faults)
    probability = BatchedMarkovSpatialAnalysis(
        effective, body_truncation=BODY_TRUNCATION
    ).detection_probability()
    # Cross-check against the scalar helper the fault experiments use.
    reference = degraded_detection_probability(
        case.scenario, case.faults, body_truncation=BODY_TRUNCATION
    )
    assert probability == pytest.approx(reference, abs=1e-12)
    return probability


@pytest.fixture(scope="module", autouse=True)
def conformance_report():
    """Collects per-case results; written as JSON after the module runs
    when ``REPRO_CONFORMANCE_REPORT`` names a destination path."""
    records = []
    yield records
    path = os.environ.get("REPRO_CONFORMANCE_REPORT")
    if not path:
        return
    report = {
        "suite": "analytical-vs-monte-carlo conformance",
        "trials": TRIALS,
        "seed": SEED,
        "confidence": "wilson 99%",
        "cases": records,
        "passed": all(record["passed"] for record in records),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


class TestConformance:
    @pytest.mark.parametrize("case", _corpus())
    def test_analytical_inside_wilson_interval(self, case, conformance_report):
        analytical = _analytical_probability(case)
        result = MonteCarloSimulator(
            case.scenario, trials=TRIALS, seed=SEED, faults=case.faults
        ).run()
        successes = int(
            (result.report_counts >= case.scenario.threshold).sum()
        )
        low, high = wilson_interval(successes, TRIALS)
        passed = low <= analytical <= high
        conformance_report.append(
            {
                "case": case.name,
                "num_sensors": case.scenario.num_sensors,
                "threshold": case.scenario.threshold,
                "window": case.scenario.window,
                "faulted": case.faults is not None,
                "analytical": analytical,
                "simulated": successes / TRIALS,
                "successes": successes,
                "wilson_low": low,
                "wilson_high": high,
                "passed": passed,
            }
        )
        assert passed, (
            f"{case.name}: analytical {analytical:.4f} outside the Wilson "
            f"99% interval [{low:.4f}, {high:.4f}] "
            f"(simulated {successes / TRIALS:.4f} over {TRIALS} trials)"
        )


class TestWilsonHelper:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(4_200, 10_000)
        assert low < 0.42 < high

    def test_narrower_with_more_trials(self):
        low_small, high_small = wilson_interval(42, 100)
        low_large, high_large = wilson_interval(4_200, 10_000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_stays_inside_unit_interval_at_extremes(self):
        low, high = wilson_interval(0, 10_000)
        assert 0.0 <= low <= high <= 1.0
        low, high = wilson_interval(10_000, 10_000)
        assert 0.0 <= low <= high <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestReportWriting:
    def test_report_written_when_env_set(self, tmp_path, monkeypatch):
        """The report machinery itself, exercised without a Monte Carlo
        run: a fresh collector seeded with one record must serialise on
        fixture teardown."""
        path = tmp_path / "conformance.json"
        monkeypatch.setenv("REPRO_CONFORMANCE_REPORT", str(path))
        generator = conformance_report.__wrapped__()
        records = next(generator)
        records.append(
            {
                "case": "synthetic",
                "analytical": 0.5,
                "simulated": 0.5,
                "passed": True,
            }
        )
        with pytest.raises(StopIteration):
            next(generator)
        report = json.loads(path.read_text())
        assert report["passed"] is True
        assert report["cases"][0]["case"] == "synthetic"
        assert report["trials"] == TRIALS
