"""Property-based tests for window regions, latency, and design tools."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import minimum_sensors
from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.latency import DetectionLatencyAnalysis
from repro.core.regions import s_approach_regions, window_regions
from repro.core.scenario import Scenario
from repro.deployment.field import SensorField


def scenario_strategy(max_window_extra=10):
    @st.composite
    def build(draw):
        sensing_range = draw(st.floats(50.0, 500.0))
        ratio = draw(st.floats(0.15, 1.5))
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        window = draw(st.integers(1, ms + max_window_extra))
        num_sensors = draw(st.integers(5, 60))
        aregion = 2 * window * sensing_range * step + math.pi * sensing_range**2
        side = math.sqrt(aregion) * draw(st.floats(4.0, 12.0))
        return Scenario(
            field=SensorField.square(side),
            num_sensors=num_sensors,
            sensing_range=sensing_range,
            target_speed=step,
            sensing_period=1.0,
            detect_prob=draw(st.floats(0.3, 1.0)),
            window=window,
            threshold=draw(st.integers(1, 5)),
        )

    return build()


class TestWindowRegionProperties:
    @given(scenario=scenario_strategy())
    @settings(max_examples=100, deadline=None)
    def test_coverage_weighted_total_is_period_times_dr(self, scenario):
        """sum_i i * Region_p(i) == p * dr_area: each period's DR is counted
        once per period of coverage."""
        for periods in range(1, scenario.window + 1):
            regions = window_regions(scenario, periods)
            weighted = float(np.arange(regions.size) @ regions)
            assert weighted == pytest.approx(
                periods * scenario.dr_area, rel=1e-9
            ), periods

    @given(scenario=scenario_strategy())
    @settings(max_examples=100, deadline=None)
    def test_totals_grow_by_nedr_per_period(self, scenario):
        totals = [
            window_regions(scenario, p).sum()
            for p in range(1, scenario.window + 1)
        ]
        assert totals[0] == pytest.approx(scenario.dr_area, rel=1e-9)
        for earlier, later in zip(totals, totals[1:]):
            assert later - earlier == pytest.approx(
                scenario.nedr_body_area, rel=1e-9
            )

    @given(scenario=scenario_strategy())
    @settings(max_examples=100, deadline=None)
    def test_full_window_matches_s_approach_when_applicable(self, scenario):
        if not scenario.has_body_stage:
            return
        np.testing.assert_allclose(
            window_regions(scenario, scenario.window),
            s_approach_regions(scenario),
            rtol=1e-9,
            atol=1e-6,
        )

    @given(scenario=scenario_strategy())
    @settings(max_examples=100, deadline=None)
    def test_non_negative(self, scenario):
        for periods in (1, scenario.window):
            assert (window_regions(scenario, periods) >= 0.0).all()


class TestLatencyProperties:
    @given(scenario=scenario_strategy())
    @settings(max_examples=40, deadline=None)
    def test_cdf_monotone_and_consistent_with_oracle(self, scenario):
        latency = DetectionLatencyAnalysis(scenario)
        cdf = latency.detection_cdf()
        assert cdf[0] == 0.0
        assert np.all(np.diff(cdf) >= -1e-12)
        exact = ExactSpatialAnalysis(scenario).detection_probability()
        assert cdf[-1] == pytest.approx(exact, abs=1e-9)

    @given(scenario=scenario_strategy())
    @settings(max_examples=40, deadline=None)
    def test_pmf_valid(self, scenario):
        pmf = DetectionLatencyAnalysis(scenario).latency_pmf()
        assert (pmf >= -1e-12).all()
        assert pmf.sum() <= 1.0 + 1e-9

    @given(scenario=scenario_strategy())
    @settings(max_examples=25, deadline=None)
    def test_expected_latency_bounded_by_quantiles(self, scenario):
        latency = DetectionLatencyAnalysis(scenario)
        cdf = latency.detection_cdf()
        if cdf[-1] < 0.1:
            return  # too rarely detected for meaningful statistics
        expected = latency.expected_latency()
        assert 1.0 <= expected <= scenario.window


class TestDesignProperties:
    @given(scenario=scenario_strategy(max_window_extra=8), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_minimum_sensors_is_minimal(self, scenario, data):
        if not scenario.has_body_stage:
            return
        requirement = data.draw(st.floats(0.2, 0.9))
        n = minimum_sensors(scenario, requirement, max_sensors=300)
        if n is None:
            return
        from repro.core.design import detection_probability

        assert detection_probability(scenario.replace(num_sensors=n)) >= requirement
        if n > 1:
            assert (
                detection_probability(scenario.replace(num_sensors=n - 1))
                < requirement
            )
