"""Property-based tests for the kernel backend seam.

Pins the two guarantees ``backend=`` callers rely on (see
``repro.core.kernels``):

* ``reference`` is **bitwise batch-invariant** — singleton rows equal
  grid rows byte for byte, on arbitrary stacks;
* ``auto`` (and the forced ``fft`` path) stay within 1e-12 of the
  reference on random pmf stacks, at the raw-kernel level and through a
  full :class:`~repro.core.batched.BatchedMarkovSpatialAnalysis` grid.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cache import clear_analysis_cache
from repro.core.batched import BatchedMarkovSpatialAnalysis
from repro.core.kernels import batch_convolve, batch_convolve_power

from tests.property.test_prop_batched import PARITY_ATOL, scenario_strategy


@st.composite
def pmf_stack_pair(draw, max_width=120):
    """Two aligned pmf stacks with independent random supports."""
    rows = draw(st.integers(1, 4))
    widths = draw(st.tuples(st.integers(1, max_width), st.integers(1, max_width)))
    stacks = []
    for width in widths:
        raw = draw(
            hnp.arrays(
                np.float64,
                (rows, width),
                elements=st.floats(0.0, 1.0, allow_nan=False),
            )
        )
        totals = raw.sum(axis=1, keepdims=True)
        # Normalise rows with mass; keep all-zero rows as-is (they are a
        # legal, adversarial input: zero mass must convolve to zero).
        np.divide(raw, totals, out=raw, where=totals > 0.0)
        stacks.append(raw)
    return tuple(stacks)


class TestKernelProperties:
    @given(pair=pmf_stack_pair())
    @settings(max_examples=60, deadline=None)
    def test_auto_within_1e12_of_reference(self, pair):
        a, b = pair
        ref = batch_convolve(a, b, backend="reference")
        auto = batch_convolve(a, b, backend="auto")
        fft = batch_convolve(a, b, backend="fft")
        assert np.abs(auto - ref).max(initial=0.0) <= PARITY_ATOL
        assert np.abs(fft - ref).max(initial=0.0) <= PARITY_ATOL

    @given(pair=pmf_stack_pair())
    @settings(max_examples=40, deadline=None)
    def test_reference_bitwise_batch_invariant(self, pair):
        a, b = pair
        full = batch_convolve(a, b, backend="reference")
        for row in range(a.shape[0]):
            single = batch_convolve(
                a[row : row + 1], b[row : row + 1], backend="reference"
            )
            assert (single[0] == full[row]).all()

    @given(pair=pmf_stack_pair(max_width=50), power=st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_power_auto_within_1e12(self, pair, power):
        base, _ = pair
        ref = batch_convolve_power(base, power, backend="reference")
        auto = batch_convolve_power(base, power, backend="auto")
        assert np.abs(auto - ref).max(initial=0.0) <= PARITY_ATOL


class TestEngineBackendProperties:
    @given(scenario=scenario_strategy())
    @settings(max_examples=15, deadline=None)
    def test_engine_auto_within_1e12_of_reference(self, scenario):
        clear_analysis_cache()
        axes = dict(
            num_sensors=[scenario.num_sensors, scenario.num_sensors * 2],
            thresholds=[scenario.threshold, scenario.threshold + 2],
        )
        ref = BatchedMarkovSpatialAnalysis(
            scenario, backend="reference"
        ).detection_probability_grid(**axes)
        auto = BatchedMarkovSpatialAnalysis(
            scenario, backend="auto"
        ).detection_probability_grid(**axes)
        assert np.abs(auto - ref).max() <= PARITY_ATOL
