"""Property-based tests for the extension analyses."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.false_alarms import (
    minimum_safe_threshold,
    window_false_alarm_probability,
)
from repro.core.heterogeneous import HeterogeneousExactAnalysis, SensorClass
from repro.core.multinode import MultiNodeAnalysis
from repro.core.scenario import Scenario
from repro.deployment.field import SensorField


def scenario_strategy():
    @st.composite
    def build(draw):
        sensing_range = draw(st.floats(50.0, 400.0))
        ratio = draw(st.floats(0.2, 1.2))
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        window = ms + draw(st.integers(1, 8))
        aregion = 2 * window * sensing_range * step + math.pi * sensing_range**2
        side = math.sqrt(aregion) * draw(st.floats(4.0, 10.0))
        return Scenario(
            field=SensorField.square(side),
            num_sensors=draw(st.integers(5, 40)),
            sensing_range=sensing_range,
            target_speed=step,
            sensing_period=1.0,
            detect_prob=draw(st.floats(0.4, 1.0)),
            window=window,
            threshold=draw(st.integers(1, 4)),
        )

    return build()


class TestMultiNodeProperties:
    @given(scenario=scenario_strategy(), h=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_joint_marginal_consistency(self, scenario, h):
        """Summing the node axis recovers the report-count distribution."""
        from repro.core.markov_spatial import MarkovSpatialAnalysis

        joint = MultiNodeAnalysis(
            scenario, min_nodes=h, body_truncation=2
        ).joint_distribution()
        marginal = joint.sum(axis=0)
        reference = MarkovSpatialAnalysis(
            scenario, body_truncation=2
        ).report_count_distribution()
        np.testing.assert_allclose(
            marginal[: reference.size], reference, atol=1e-9
        )

    @given(scenario=scenario_strategy())
    @settings(max_examples=25, deadline=None)
    def test_detection_monotone_in_h(self, scenario):
        values = [
            MultiNodeAnalysis(
                scenario, min_nodes=h, body_truncation=2
            ).detection_probability()
            for h in (1, 2, 3)
        ]
        assert values[0] >= values[1] - 1e-12 >= values[2] - 2e-12


class TestHeterogeneousProperties:
    @given(
        scenario=scenario_strategy(),
        split=st.floats(0.1, 0.9),
    )
    @settings(max_examples=30, deadline=None)
    def test_equal_range_split_matches_oracle(self, scenario, split):
        count_a = max(1, int(scenario.num_sensors * split))
        count_b = scenario.num_sensors - count_a
        classes = [SensorClass(count_a, scenario.sensing_range)]
        if count_b:
            classes.append(SensorClass(count_b, scenario.sensing_range))
        mixture = HeterogeneousExactAnalysis(scenario, classes)
        oracle = ExactSpatialAnalysis(scenario)
        assert mixture.detection_probability() == pytest.approx(
            oracle.detection_probability(), abs=1e-10
        )

    @given(scenario=scenario_strategy(), factor=st.floats(1.05, 1.8))
    @settings(max_examples=30, deadline=None)
    def test_upgrading_part_of_the_fleet_helps(self, scenario, factor):
        half = scenario.num_sensors // 2
        if half == 0:
            return
        base = HeterogeneousExactAnalysis(
            scenario, [SensorClass(scenario.num_sensors, scenario.sensing_range)]
        ).detection_probability()
        upgraded = HeterogeneousExactAnalysis(
            scenario,
            [
                SensorClass(half, scenario.sensing_range * factor),
                SensorClass(
                    scenario.num_sensors - half, scenario.sensing_range
                ),
            ],
        ).detection_probability()
        assert upgraded >= base - 1e-12


class TestFalseAlarmProperties:
    @given(
        n=st.integers(1, 500),
        m=st.integers(1, 40),
        pf=st.floats(1e-6, 0.05),
        budget=st.floats(1e-9, 0.1),
    )
    @settings(max_examples=150)
    def test_minimum_threshold_is_minimal_and_safe(self, n, m, pf, budget):
        k = minimum_safe_threshold(n, m, pf, budget)
        assert window_false_alarm_probability(n, m, pf, k) <= budget
        if k > 1:
            assert window_false_alarm_probability(n, m, pf, k - 1) > budget

    @given(
        n=st.integers(1, 500),
        m=st.integers(1, 40),
        pf=st.floats(0.0, 0.5),
        k=st.integers(1, 20),
    )
    @settings(max_examples=150)
    def test_window_probability_is_probability(self, n, m, pf, k):
        p = window_false_alarm_probability(n, m, pf, k)
        assert 0.0 <= p <= 1.0


class TestScenarioSerializationProperties:
    @given(scenario=scenario_strategy())
    @settings(max_examples=100)
    def test_round_trip_identity(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario
