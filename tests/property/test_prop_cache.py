"""Property-based tests for the bounded LRU+TTL analysis cache.

The counter contract under ANY operation sequence:

* ``lookups == hits + misses`` — every lookup is counted exactly once;
* counters are monotone non-decreasing (until ``clear()``);
* ``len(cache) <= max_entries`` at all times;
* a hit returns the stored value, a miss returns the sentinel tuple.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AnalysisCache


def operations():
    """A random sequence of cache operations over a small key space."""
    key = st.integers(0, 7)
    return st.lists(
        st.one_of(
            st.tuples(st.just("lookup"), key),
            st.tuples(st.just("store"), key),
            st.tuples(st.just("get_or_compute"), key),
            st.tuples(st.just("advance"), st.floats(0.0, 3.0)),
        ),
        max_size=60,
    )


@given(
    ops=operations(),
    max_entries=st.one_of(st.none(), st.integers(1, 6)),
    ttl=st.one_of(st.none(), st.floats(0.5, 5.0)),
)
@settings(max_examples=200)
def test_counters_stay_self_consistent(ops, max_entries, ttl):
    clock = [0.0]
    cache = AnalysisCache(max_entries=max_entries, ttl=ttl, clock=lambda: clock[0])
    model = {}  # key -> value we last stored (ignoring TTL/eviction)
    previous = (0, 0, 0, 0, 0)

    for op, arg in ops:
        if op == "advance":
            clock[0] += arg
            continue
        if op == "lookup":
            found, value = cache.lookup(arg)
            if found:
                assert value == model[arg]
        elif op == "store":
            model[arg] = ("value", arg, cache.lookups)
            cache.store(arg, model[arg])
            if arg in cache:  # store may race-lose only across threads
                found, value = cache.lookup(arg)
                if found:
                    model[arg] = value
        else:
            value = cache.get_or_compute(arg, lambda a=arg: ("computed", a))
            model[arg] = value

        # The invariants hold after every single operation.
        assert cache.lookups == cache.hits + cache.misses
        current = (
            cache.lookups,
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.expirations,
        )
        assert all(now >= before for now, before in zip(current, previous))
        previous = current
        if max_entries is not None:
            assert len(cache) <= max_entries

    stats = cache.stats()
    assert stats["lookups"] == stats["hits"] + stats["misses"]
    assert stats["hit_rate"] == pytest.approx(
        stats["hits"] / stats["lookups"] if stats["lookups"] else 0.0
    )


@given(
    keys=st.lists(st.integers(0, 20), min_size=1, max_size=40),
    max_entries=st.integers(1, 5),
)
@settings(max_examples=100)
def test_eviction_count_matches_insertions_minus_occupancy(keys, max_entries):
    cache = AnalysisCache(max_entries=max_entries)
    inserted = 0
    for key in keys:
        if key not in cache:
            inserted += 1
        cache.store(key, key)
        assert len(cache) <= max_entries
    # Without a TTL, every insertion either occupies a slot or evicted one.
    assert cache.evictions == inserted - len(cache)
    assert cache.expirations == 0


@given(ttl=st.floats(0.1, 10.0), gap=st.floats(0.0, 20.0))
@settings(max_examples=100)
def test_ttl_boundary_is_exact(ttl, gap):
    clock = [0.0]
    cache = AnalysisCache(ttl=ttl, clock=lambda: clock[0])
    cache.store("k", "v")
    clock[0] += gap
    found, _ = cache.lookup("k")
    assert found == (gap < ttl)
    assert cache.lookups == cache.hits + cache.misses == 1
    assert cache.expirations == (0 if found else 1)
