"""Property-based tests for the Markov substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.chain import MarkovChain
from repro.markov.counting import (
    counting_transition_matrix,
    merge_tail,
    propagate_counts,
)


def pmf_strategy(max_size=6, substochastic=False):
    @st.composite
    def build(draw):
        raw = draw(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=max_size))
        total = sum(raw)
        if total < 1e-6:
            return np.array([1.0] + [0.0] * (len(raw) - 1))
        scale = draw(st.floats(0.2, 1.0)) if substochastic else 1.0
        return np.array(raw) * (scale / total)

    return build()


def stochastic_matrix_strategy(max_states=5):
    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_states))
        rows = [
            draw(
                st.lists(st.floats(0.001, 1.0), min_size=n, max_size=n)
            )
            for _ in range(n)
        ]
        matrix = np.array(rows)
        return matrix / matrix.sum(axis=1, keepdims=True)

    return build()


class TestMarkovChainProperties:
    @given(matrix=stochastic_matrix_strategy(), steps=st.integers(0, 8))
    @settings(max_examples=100)
    def test_propagation_preserves_mass(self, matrix, steps):
        chain = MarkovChain(matrix)
        start = np.zeros(chain.num_states)
        start[0] = 1.0
        out = chain.run(start, steps)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert (out >= -1e-12).all()

    @given(matrix=stochastic_matrix_strategy(), steps=st.integers(0, 6))
    @settings(max_examples=60)
    def test_run_equals_power(self, matrix, steps):
        chain = MarkovChain(matrix)
        start = np.zeros(chain.num_states)
        start[-1] = 1.0
        np.testing.assert_allclose(
            chain.run(start, steps), start @ chain.power(steps), atol=1e-9
        )


class TestCountingChainProperties:
    @given(pmf=pmf_strategy(), steps=st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_matrix_equals_convolution(self, pmf, steps):
        """The central M-S identity: shift-matrix products == convolutions."""
        support = (pmf.size - 1) * steps + 1
        matrix = counting_transition_matrix(pmf, support, absorb_overflow=False)
        by_matrix = np.zeros(support)
        by_matrix[0] = 1.0
        by_convolution = np.array([1.0])
        for _ in range(steps):
            by_matrix = by_matrix @ matrix
            by_convolution = propagate_counts(by_convolution, pmf)
        np.testing.assert_allclose(by_matrix, by_convolution, atol=1e-10)

    @given(pmf=pmf_strategy(substochastic=True), states=st.integers(1, 12))
    @settings(max_examples=100)
    def test_absorbing_matrix_preserves_pmf_mass(self, pmf, states):
        matrix = counting_transition_matrix(pmf, states, absorb_overflow=True)
        assert (matrix.sum(axis=1) <= pmf.sum() + 1e-9).all()
        np.testing.assert_allclose(matrix.sum(axis=1), pmf.sum(), atol=1e-9)

    @given(pmf=pmf_strategy(), threshold=st.integers(0, 10))
    @settings(max_examples=100)
    def test_merge_tail_preserves_mass_and_head(self, pmf, threshold):
        merged = merge_tail(pmf, threshold)
        assert merged.sum() == pytest.approx(pmf.sum(), abs=1e-12)
        head = min(threshold, pmf.size)
        np.testing.assert_allclose(merged[:head], pmf[:head])
