"""Property-based tests for the online sliding-window detector.

The headline property: on any stream, the online
:class:`SlidingWindowDetector` and the offline
:class:`GroupDetector` make bitwise-identical decisions — same fired
flags, same detection periods — and the decision is invariant to how
the reports were chunked into :meth:`ingest` calls.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.group import GroupDetector
from repro.detection.reports import DetectionReport
from repro.geometry.shapes import Point
from repro.streaming.detector import SlidingWindowDetector, event_digest


@st.composite
def stream_strategy(draw):
    """An arbitrary report stream: gappy periods, repeated nodes."""
    num_periods = draw(st.integers(1, 20))
    gaps = draw(
        st.lists(
            st.integers(1, 3), min_size=num_periods, max_size=num_periods
        )
    )
    periods = []
    period = 0
    for gap in gaps:
        period += gap
        count = draw(st.integers(0, 6))
        reports = [
            DetectionReport(
                draw(st.integers(0, 7)),
                period,
                Point(
                    draw(st.floats(-100, 100, allow_nan=False)),
                    draw(st.floats(-100, 100, allow_nan=False)),
                ),
            )
            for _ in range(count)
        ]
        periods.append((period, reports))
    return periods


@st.composite
def rule_strategy(draw):
    return {
        "window": draw(st.integers(1, 8)),
        "threshold": draw(st.integers(1, 6)),
        "min_nodes": draw(st.integers(1, 3)),
    }


class TestOnlineOfflineEquivalence:
    @given(stream=stream_strategy(), rule=rule_strategy())
    @settings(max_examples=120, deadline=None)
    def test_decisions_bitwise_identical(self, stream, rule):
        online = SlidingWindowDetector(**rule)
        offline = GroupDetector(**rule)
        for period, reports in stream:
            event = online.observe(period, reports)
            fired = offline.observe(period, reports)
            assert event.fired == fired
            windowed = offline.windowed_reports()
            assert event.windowed_reports == len(windowed)
            assert event.distinct_nodes == len(
                {report.node_id for report in windowed}
            )
        assert online.detection_periods == offline.detection_periods

    @given(stream=stream_strategy(), rule=rule_strategy())
    @settings(max_examples=60, deadline=None)
    def test_digest_is_replay_stable(self, stream, rule):
        first = SlidingWindowDetector(**rule)
        second = SlidingWindowDetector(**rule)
        first.process_stream(stream)
        second.process_stream(stream)
        assert first.digest() == second.digest()
        assert event_digest(first.events) == event_digest(second.events)


class TestInterleavingInvariance:
    @given(
        stream=stream_strategy(),
        rule=rule_strategy(),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_chunked_ingest_equals_one_shot_observe(self, stream, rule, data):
        """Splitting a period's reports into arbitrary ingest chunks
        (as the transport might deliver them) never changes the event."""
        one_shot = SlidingWindowDetector(**rule)
        chunked = SlidingWindowDetector(**rule)
        for period, reports in stream:
            expected = one_shot.observe(period, reports)
            remaining = list(reports)
            while remaining:
                size = data.draw(
                    st.integers(1, len(remaining)), label="chunk"
                )
                for report in remaining[:size]:
                    chunked.ingest(report)
                remaining = remaining[size:]
            actual = chunked.close_period(period)
            assert actual == expected
        assert chunked.detection_periods == one_shot.detection_periods
        assert chunked.digest() == one_shot.digest()


class TestWindowInvariants:
    @given(stream=stream_strategy(), rule=rule_strategy())
    @settings(max_examples=80, deadline=None)
    def test_event_and_window_state_invariants(self, stream, rule):
        detector = SlidingWindowDetector(**rule)
        previous_fired = False
        last_period = 0
        for period, reports in stream:
            event = detector.observe(period, reports)
            # Event times are strictly monotone, one event per close.
            assert event.period == period > last_period
            last_period = period
            # The incremental counters always agree with the window
            # recomputed from scratch.
            windowed = detector.windowed_reports()
            assert detector.windowed_count == len(windowed) == (
                event.windowed_reports
            )
            assert detector.distinct_node_count == len(
                {report.node_id for report in windowed}
            )
            assert all(
                period - rule["window"] < r.period <= period
                for r in windowed
            )
            assert event.new_reports == len(reports)
            # fired is exactly the k-of-M (h-node) predicate ...
            assert event.fired == (
                event.windowed_reports >= rule["threshold"]
                and event.distinct_nodes >= rule["min_nodes"]
            )
            # ... and new_detection marks exactly the rising edges.
            assert event.new_detection == (event.fired and not previous_fired)
            previous_fired = event.fired
        assert [e.period for e in detector.events] == [p for p, _ in stream]
        assert detector.detection_periods == [
            e.period for e in detector.events if e.fired
        ]
