"""Property-based tests for the work-stealing lease book.

A randomised virtual cluster drives :class:`repro.distributed.LeaseBook`
through arbitrary interleavings of grants, steals, revoke acks, worker
crashes, and late joins — the exact schedules the socket layer produces
nondeterministically, here made reproducible by hypothesis.

The invariants are the distributed tier's whole contract:

* **exactly-once** — no index is ever computed twice;
* **partition** — completed + leased + pool covers the sweep with no
  overlap at every step;
* **liveness** — whenever work is outstanding and a live worker is
  parked, some enabled action exists (no deadlock);
* **merge == serial** — the completed set at the end is exactly
  ``range(total)``, so merging rows by index reproduces the serial
  sweep.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import LeaseBook


class VirtualCluster:
    """Mirror of the worker-side protocol state, driven by directives.

    Replicates exactly what ``run_worker`` tracks: the owned range, the
    one-outstanding-``request`` flag, and the pending revoke — so any
    schedule hypothesis finds here is a schedule the socket layer could
    produce.
    """

    def __init__(self, book, names):
        self.book = book
        self.owned = {}
        self.requested = {}
        self.pending_revoke = {}
        self.alive = []
        self.computed = []
        self.done = set()
        for name in names:
            self.join(name)

    def join(self, name):
        self.book.register(name)
        self.owned[name] = []
        self.requested[name] = True
        self.pending_revoke.pop(name, None)
        self.alive.append(name)
        self.apply(self.book.request(name))

    def apply(self, directives):
        for directive in directives:
            kind, worker = directive[0], directive[1]
            if kind == "grant":
                _, _, start, stop = directive
                assert worker in self.alive, "grant to a dead worker"
                assert not self.owned[worker], "grant while still owning"
                self.owned[worker] = list(range(start, stop))
                self.requested[worker] = False
            elif kind == "revoke":
                assert worker in self.alive, "revoke to a dead worker"
                self.pending_revoke[worker] = directive[2]
            elif kind == "done":
                self.done.add(worker)
            else:  # pragma: no cover - unknown directive kind
                raise AssertionError(f"unknown directive {directive!r}")

    # -- enabled actions ----------------------------------------------

    def can_compute(self):
        return [w for w in self.alive if self.owned[w]]

    def can_ack(self):
        return [w for w in self.alive if w in self.pending_revoke]

    def can_crash(self):
        return [w for w in self.alive] if len(self.alive) > 1 else []

    def compute(self, worker):
        index = self.owned[worker].pop(0)
        self.computed.append(index)
        directives = self.book.result(worker, index)
        if (
            not self.owned[worker]
            and worker not in self.pending_revoke
            and not self.requested[worker]
        ):
            self.requested[worker] = True
            directives = directives + self.book.request(worker)
        self.apply(directives)

    def ack(self, worker):
        at = self.pending_revoke.pop(worker)
        owned = self.owned[worker]
        stopped_at = max(at, owned[0]) if owned else at
        self.owned[worker] = [i for i in owned if i < stopped_at]
        directives = self.book.ack_revoke(worker, stopped_at)
        if not self.owned[worker] and not self.requested[worker]:
            self.requested[worker] = True
            directives = directives + self.book.request(worker)
        self.apply(directives)

    def crash(self, worker):
        self.alive.remove(worker)
        self.owned[worker] = []
        self.pending_revoke.pop(worker, None)
        self.apply(self.book.crash(worker))

    # -- invariants ----------------------------------------------------

    def check_partition(self):
        completed = self.book.completed
        leased = []
        for worker in self.alive:
            leased.extend(self.book.pending(worker))
        assert len(leased) == len(set(leased)), "overlapping leases"
        assert not completed.intersection(leased), "completed point leased"
        pool = set(self.book._pool)
        assert not pool.intersection(leased), "pooled point leased"
        assert not pool.intersection(completed), "pooled point completed"
        universe = completed | set(leased) | pool
        assert universe == set(range(self.book.total)), "points lost"

    def check_exactly_once(self):
        assert len(self.computed) == len(set(self.computed)), (
            "a point was computed twice"
        )


@settings(max_examples=60, deadline=None)
@given(
    total=st.integers(0, 40),
    workers=st.integers(1, 5),
    crash_budget=st.integers(0, 2),
    data=st.data(),
)
def test_random_schedules_complete_exactly_once(
    total, workers, crash_budget, data
):
    book = LeaseBook(total)
    cluster = VirtualCluster(book, [f"w{i}" for i in range(workers)])
    joins = 0
    steps = 0
    while not book.done:
        steps += 1
        assert steps <= 20 * total + 50, "scheduler livelock"
        actions = []
        if cluster.can_compute():
            actions.append("compute")
        if cluster.can_ack():
            actions.append("ack")
        if crash_budget > 0 and cluster.can_crash():
            actions.append("crash")
        if joins < 2 and crash_budget == 0:
            actions.append("join")
        assert "compute" in actions or "ack" in actions or actions, (
            "deadlock: work outstanding but no enabled action"
        )
        action = data.draw(st.sampled_from(actions), label="action")
        if action == "compute":
            worker = data.draw(
                st.sampled_from(cluster.can_compute()), label="computer"
            )
            cluster.compute(worker)
        elif action == "ack":
            worker = data.draw(
                st.sampled_from(cluster.can_ack()), label="acker"
            )
            cluster.ack(worker)
        elif action == "crash":
            worker = data.draw(
                st.sampled_from(cluster.can_crash()), label="victim"
            )
            cluster.crash(worker)
            crash_budget -= 1
        else:
            joins += 1
            cluster.join(f"late{joins}")
        cluster.check_partition()
        cluster.check_exactly_once()
    # Merge == serial: every index completed, none duplicated.
    assert sorted(cluster.computed) == list(range(total))
    assert book.completed == set(range(total))


@settings(max_examples=40, deadline=None)
@given(
    total=st.integers(1, 30),
    workers=st.integers(1, 4),
    completed_mask=st.lists(st.booleans(), min_size=30, max_size=30),
    data=st.data(),
)
def test_checkpoint_resume_never_recomputes(
    total, workers, completed_mask, data
):
    """Points already in the checkpoint are never leased again."""
    already = [i for i in range(total) if completed_mask[i]]
    book = LeaseBook(total, completed=already)
    cluster = VirtualCluster(book, [f"w{i}" for i in range(workers)])
    steps = 0
    while not book.done:
        steps += 1
        assert steps <= 20 * total + 50, "scheduler livelock"
        actions = []
        if cluster.can_compute():
            actions.append("compute")
        if cluster.can_ack():
            actions.append("ack")
        action = data.draw(st.sampled_from(actions), label="action")
        worker = data.draw(
            st.sampled_from(
                cluster.can_compute()
                if action == "compute"
                else cluster.can_ack()
            ),
            label="worker",
        )
        (cluster.compute if action == "compute" else cluster.ack)(worker)
        cluster.check_partition()
    assert sorted(cluster.computed) == [
        i for i in range(total) if i not in set(already)
    ]


def test_victim_crash_after_thief_reserved_from_pool():
    """Victim crash must not re-park a thief already re-served a lease.

    The schedule: the pool drains, a thief parks and a revoke goes out
    against the slowest victim; a *different* worker crashes, refilling
    the pool, and ``_serve_parked`` grants the still-parked thief a
    fresh lease while the revocation is still pending.  Then the victim
    crashes.  The buggy crash path re-parked the thief unconditionally,
    and the trailing ``_serve_parked`` granted it a second lease over
    the live one — those indexes left the completed/leased/pool
    partition for good and the sweep deadlocked.
    """
    book = LeaseBook(12)
    for name in ("w0", "w1", "thief"):
        book.register(name)
    assert book.request("w0") == [("grant", "w0", 0, 4)]
    assert book.request("w1") == [("grant", "w1", 4, 7)]
    assert book.request("thief") == [("grant", "thief", 7, 9)]
    # The thief races through its grants until the pool is dry.
    for index in (7, 8):
        book.result("thief", index)
    for index in (9, 10, 11):
        assert book.request("thief") == [
            ("grant", "thief", index, index + 1)
        ]
        book.result("thief", index)
    # Pool empty: the thief parks and a revoke targets the slowest peer.
    assert book.request("thief") == [("revoke", "w0", 2)]
    # The non-victim crashes; its lease refills the pool and the parked
    # thief is re-served from it while w0's revocation is still pending.
    assert book.crash("w1") == [("grant", "thief", 4, 6)]
    assert book.pending("thief") == [4, 5]
    # Now the victim crashes.  The thief owns a live lease, so it must
    # NOT be re-parked (and must not receive an overlapping grant).
    directives = book.crash("w0")
    assert all(d[1] != "thief" for d in directives)
    assert book.pending("thief") == [4, 5]
    # Partition invariant: nothing lost, nothing doubled.
    leased = book.pending("thief")
    pool = set(book._pool)
    assert not book.completed & set(leased)
    assert not pool & set(leased) and not pool & book.completed
    assert book.completed | set(leased) | pool == set(range(12))
    # The lone survivor can finish the sweep.
    steps = 0
    while not book.done:
        steps += 1
        assert steps <= 50, "sweep deadlocked after victim crash"
        pending = book.pending("thief")
        if pending:
            book.result("thief", pending[0])
        else:
            assert any(
                d[0] in ("grant", "done") for d in book.request("thief")
            )
    assert book.completed == set(range(12))


def test_victim_crash_after_thief_reserved_via_cluster():
    """The same schedule through the worker-protocol mirror.

    ``VirtualCluster.apply`` asserts "grant while still owning" — the
    exact frame the real worker rejects with "lease pushed while one is
    still owned" — so this fails loudly if the crash path ever hands a
    re-served thief a second lease.
    """
    book = LeaseBook(12)
    cluster = VirtualCluster(book, ["w0"])  # w0 is granted all 12
    cluster.join("w1")  # parks, revokes w0's tail
    cluster.ack("w0")
    cluster.join("thief")  # parks, revokes the new slowest peer
    victim = next(iter(cluster.pending_revoke))
    other = next(
        w for w in cluster.alive if w not in (victim, "thief")
    )
    cluster.crash(other)  # pool refills; thief may be re-served
    cluster.check_partition()
    cluster.crash(victim)  # must not double-grant the thief
    cluster.check_partition()
    steps = 0
    while not book.done:
        steps += 1
        assert steps <= 100, "scheduler livelock"
        if cluster.can_ack():
            cluster.ack(cluster.can_ack()[0])
        else:
            cluster.compute(cluster.can_compute()[0])
        cluster.check_partition()
        cluster.check_exactly_once()
    assert book.completed == set(range(12))


@settings(max_examples=30, deadline=None)
@given(
    total=st.integers(2, 30),
    kill_after=st.integers(0, 29),
    data=st.data(),
)
def test_no_shard_leaks_after_crash(total, kill_after, data):
    """A worker killed at an arbitrary point leaks nothing.

    One worker computes ``kill_after`` points of its lease and dies;
    a survivor (joining before or after the crash, drawn) must still be
    able to finish the sweep exactly-once.
    """
    book = LeaseBook(total)
    cluster = VirtualCluster(book, ["doomed"])
    for _ in range(min(kill_after, total - 1)):
        if not cluster.owned["doomed"]:
            break
        cluster.compute("doomed")
        if book.done:
            return
    survivor_first = data.draw(st.booleans(), label="survivor_first")
    if survivor_first:
        cluster.join("survivor")
    cluster.crash("doomed")
    if not survivor_first:
        cluster.join("survivor")
    cluster.check_partition()
    steps = 0
    while not book.done:
        steps += 1
        assert steps <= 20 * total + 50, "scheduler livelock"
        if cluster.can_ack():
            cluster.ack("survivor")
        elif cluster.can_compute():
            cluster.compute("survivor")
        else:
            raise AssertionError("survivor starved: shard leaked")
        cluster.check_partition()
        cluster.check_exactly_once()
    assert book.completed == set(range(total))
