"""Property-based tests for the simulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deployment.field import SensorField
from repro.simulation.sensing import segment_coverage
from repro.simulation.targets import RandomWalkTarget, StraightLineTarget


class TestCoverageProperties:
    @given(
        seed=st.integers(0, 2**31),
        sensing_range=st.floats(1.0, 50.0),
        num_periods=st.integers(1, 15),
    )
    @settings(max_examples=100, deadline=None)
    def test_straight_line_coverage_is_contiguous(
        self, seed, sensing_range, num_periods
    ):
        """A sensor covers a straight-moving target in consecutive periods."""
        rng = np.random.default_rng(seed)
        sensors = rng.uniform(0, 500, size=(1, 30, 2))
        starts = rng.uniform(0, 500, size=(1, 2))
        waypoints = StraightLineTarget(10.0).sample_waypoints(
            starts, num_periods, 2.0, rng
        )
        coverage = segment_coverage(sensors, waypoints, sensing_range)[0]
        for row in coverage:
            hits = np.flatnonzero(row)
            if hits.size > 1:
                assert np.all(np.diff(hits) == 1)

    @given(
        seed=st.integers(0, 2**31),
        sensing_range=st.floats(1.0, 40.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_coverage_monotone_in_range(self, seed, sensing_range):
        rng = np.random.default_rng(seed)
        sensors = rng.uniform(0, 300, size=(1, 20, 2))
        starts = rng.uniform(0, 300, size=(1, 2))
        waypoints = RandomWalkTarget(8.0).sample_waypoints(starts, 6, 2.0, rng)
        small = segment_coverage(sensors, waypoints, sensing_range)
        large = segment_coverage(sensors, waypoints, sensing_range * 1.5)
        assert not np.any(small & ~large)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_torus_coverage_superset_of_plain_for_interior_tracks(self, seed):
        """For tracks far from the boundary, wrapping changes nothing; in
        general wrapping can only reveal sensors near the opposite edge."""
        rng = np.random.default_rng(seed)
        field = SensorField(1000.0, 1000.0)
        sensors = rng.uniform(0, 1000, size=(1, 40, 2))
        # Track confined to the middle of the field.
        starts = rng.uniform(400, 600, size=(1, 2))
        waypoints = StraightLineTarget(5.0).sample_waypoints(starts, 8, 2.0, rng)
        plain = segment_coverage(sensors, waypoints, 30.0)
        wrapped = segment_coverage(sensors, waypoints, 30.0, field=field, wrap=True)
        np.testing.assert_array_equal(plain, wrapped)

    @given(
        seed=st.integers(0, 2**31),
        ms_coverage_bound=st.just(None),
    )
    @settings(max_examples=50, deadline=None)
    def test_coverage_periods_bounded_by_chord(self, seed, ms_coverage_bound):
        """A sensor cannot cover the target for more than ms + 1 periods."""
        import math

        rng = np.random.default_rng(seed)
        sensing_range = 25.0
        speed, period = 10.0, 2.0
        step = speed * period
        ms = math.ceil(2 * sensing_range / step)
        sensors = rng.uniform(0, 400, size=(1, 50, 2))
        starts = rng.uniform(0, 400, size=(1, 2))
        waypoints = StraightLineTarget(speed).sample_waypoints(starts, 30, period, rng)
        coverage = segment_coverage(sensors, waypoints, sensing_range)[0]
        assert coverage.sum(axis=1).max() <= ms + 1


class TestTargetProperties:
    @given(
        seed=st.integers(0, 2**31),
        speed=st.floats(0.5, 50.0),
        period=st.floats(0.5, 20.0),
        num_periods=st.integers(1, 20),
    )
    @settings(max_examples=100)
    def test_straight_line_step_lengths(self, seed, speed, period, num_periods):
        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 100, size=(4, 2))
        waypoints = StraightLineTarget(speed).sample_waypoints(
            starts, num_periods, period, rng
        )
        steps = np.linalg.norm(np.diff(waypoints, axis=1), axis=2)
        np.testing.assert_allclose(steps, speed * period, rtol=1e-9)

    @given(
        seed=st.integers(0, 2**31),
        max_turn=st.floats(0.0, np.pi / 2),
    )
    @settings(max_examples=100)
    def test_random_walk_turn_bound(self, seed, max_turn):
        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 100, size=(2, 2))
        waypoints = RandomWalkTarget(5.0, max_turn=max_turn).sample_waypoints(
            starts, 15, 2.0, rng
        )
        deltas = np.diff(waypoints, axis=1)
        headings = np.arctan2(deltas[..., 1], deltas[..., 0])
        turns = np.diff(headings, axis=1)
        turns = (turns + np.pi) % (2 * np.pi) - np.pi
        assert np.abs(turns).max() <= max_turn + 1e-9
