"""Property-based tests for the consistent-hash request router.

Two guarantees the fleet leans on:

* **Balance** — with enough virtual nodes, keys spread across replicas
  close to uniformly (no replica silently absorbs the whole workload).
* **Minimal remapping** — removing one replica moves only the keys it
  owned (~1/N of the space); every other key keeps its owner, so
  coalescing and cache affinity survive an eviction.  Re-adding the
  member restores the original assignment exactly.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ConsistentHashRouter


def _router(members):
    router = ConsistentHashRouter()
    for member in members:
        router.add(member)
    return router


member_counts = st.integers(2, 8)
keys_strategy = st.lists(
    st.text(min_size=1, max_size=16), min_size=50, max_size=200, unique=True
)


@given(n=member_counts, keys=keys_strategy)
@settings(max_examples=30, deadline=None)
def test_every_key_routes_to_a_member(n, keys):
    members = [f"r{i}" for i in range(n)]
    router = _router(members)
    for key in keys:
        assert router.route(key) in members


@given(n=member_counts)
@settings(max_examples=20, deadline=None)
def test_balance_within_tolerance(n):
    """Shares stay near 1/N for a dense synthetic keyset.

    With 128 vnodes per member the standard deviation of the share is
    roughly ``1/(N * sqrt(vnodes))``; a 3x-of-mean band is loose enough
    to never flake yet tight enough to catch a degenerate ring (e.g. a
    member with no vnodes, which would show a share of 0).
    """
    members = [f"r{i}" for i in range(n)]
    router = _router(members)
    keys = [f"scenario-{i}" for i in range(4000)]
    shares = Counter(router.route(key) for key in keys)
    expected = len(keys) / n
    for member in members:
        assert shares[member] > 0, f"{member} owns no keys at all"
        assert 0.25 * expected <= shares[member] <= 3.0 * expected


@given(n=st.integers(3, 8), keys=keys_strategy)
@settings(max_examples=30, deadline=None)
def test_removing_one_member_remaps_only_its_keys(n, keys):
    members = [f"r{i}" for i in range(n)]
    router = _router(members)
    before = {key: router.route(key) for key in keys}
    victim = members[n // 2]
    router.remove(victim)
    after = {key: router.route(key) for key in keys}
    for key in keys:
        if before[key] != victim:
            assert after[key] == before[key], (
                "a key not owned by the removed member changed owner"
            )
        else:
            assert after[key] != victim
    # The moved fraction is the victim's share: ~1/N of the keys, with
    # generous slack for small random keysets.
    moved = sum(1 for key in keys if after[key] != before[key])
    assert moved <= max(10, 3.0 * len(keys) / n)


@given(n=st.integers(2, 8), keys=keys_strategy)
@settings(max_examples=30, deadline=None)
def test_remove_then_add_restores_assignment(n, keys):
    """Eviction + restart of the same member is a routing no-op."""
    members = [f"r{i}" for i in range(n)]
    router = _router(members)
    before = {key: router.route(key) for key in keys}
    victim = members[0]
    router.remove(victim)
    router.add(victim)
    after = {key: router.route(key) for key in keys}
    assert after == before


@given(n=member_counts, key=st.text(min_size=1, max_size=16))
@settings(max_examples=50, deadline=None)
def test_preference_walk_covers_the_fleet_once(n, key):
    """The failover order lists every member exactly once, owner first."""
    members = [f"r{i}" for i in range(n)]
    router = _router(members)
    order = list(router.preference(key))
    assert order[0] == router.route(key)
    assert sorted(order) == sorted(members)
