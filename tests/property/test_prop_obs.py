"""Property-based tests for repro.obs invariants.

Three families:

* structural span invariants under arbitrary nesting programs (child
  intervals lie inside their parent, depths match the nesting, manifest
  stage totals equal the sum of top-level span walls);
* counter monotonicity under arbitrary increment sequences;
* the zero-interference law: running the simulator under live
  instrumentation yields the same :class:`SimulationResult` fingerprint
  as running it disabled, for any (trials, seed, batch_size).
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.experiments.presets import small_scenario
from repro.obs import Instrumentation
from repro.simulation.runner import MonteCarloSimulator


def fingerprint(result) -> str:
    digest = hashlib.sha256()
    for array in (
        result.report_counts,
        result.node_counts,
        result.false_report_counts,
        result.detection_periods,
    ):
        if array is not None:
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


#: A nesting "program": each element opens a span with that many children.
nesting_programs = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=4),
    max_leaves=20,
)


def _run_program(ob: Instrumentation, program, depth: int = 0) -> None:
    for index, children in enumerate(program):
        with ob.span(f"d{depth}.s{index}"):
            _run_program(ob, children, depth + 1)


class TestSpanInvariants:
    @given(program=nesting_programs)
    @settings(max_examples=50, deadline=None)
    def test_children_nest_inside_parents(self, program):
        ob = Instrumentation()
        _run_program(ob, program)
        spans = ob.spans
        # Reconstruct each span's enclosing interval via its recorded
        # parent name: every child's [start, start+wall] must lie inside
        # some same-named parent interval, and its depth must be the
        # parent's depth + 1.
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        for span in spans:
            if span["parent"] is None:
                assert span["depth"] == 0
                continue
            parents = by_name[span["parent"]]
            assert any(
                parent["depth"] == span["depth"] - 1
                and parent["start"] - 1e-9 <= span["start"]
                and span["start"] + span["wall"]
                <= parent["start"] + parent["wall"] + 1e-9
                for parent in parents
            ), (span, parents)

    @given(program=nesting_programs)
    @settings(max_examples=50, deadline=None)
    def test_manifest_stage_totals_equal_top_level_span_sum(self, program):
        ob = Instrumentation()
        _run_program(ob, program)
        manifest = ob.manifest()
        top_level_wall = sum(s["wall"] for s in ob.spans if s["depth"] == 0)
        stage_wall = sum(s["wall"] for s in manifest["stages"].values())
        assert stage_wall == pytest.approx(top_level_wall, abs=1e-12)
        assert stage_wall <= manifest["wall_time"] + 1e-9
        assert sum(s["count"] for s in manifest["stages"].values()) == sum(
            1 for s in ob.spans if s["depth"] == 0
        )


class TestCounterMonotonicity:
    @given(
        increments=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_counters_never_decrease(self, increments):
        ob = Instrumentation()
        seen = {}
        for name, amount in increments:
            value = ob.incr(name, amount)
            assert value >= seen.get(name, 0)
            seen[name] = value
        assert ob.counters == {k: v for k, v in seen.items()}

    @given(amount=st.integers(min_value=-1000, max_value=-1))
    @settings(max_examples=20, deadline=None)
    def test_negative_increments_rejected(self, amount):
        ob = Instrumentation()
        with pytest.raises(ValueError):
            ob.incr("c", amount)
        assert ob.counters.get("c", 0) == 0


class TestZeroInterference:
    @given(
        trials=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        batch_size=st.sampled_from([7, 32, 512]),
    )
    @settings(max_examples=15, deadline=None)
    def test_instrumentation_never_changes_simulation_fingerprints(
        self, trials, seed, batch_size
    ):
        scenario = small_scenario()
        disabled = MonteCarloSimulator(
            scenario, trials=trials, seed=seed, batch_size=batch_size
        ).run()
        with obs.instrument() as ob:
            enabled = MonteCarloSimulator(
                scenario, trials=trials, seed=seed, batch_size=batch_size
            ).run()
        assert fingerprint(enabled) == fingerprint(disabled)
        assert ob.counters["sim.trials"] == trials
