"""Property-based tests for the tracking subsystem."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.reports import DetectionReport
from repro.detection.track_filter import SpeedGateTrackFilter
from repro.geometry.shapes import Point
from repro.tracking import cluster_reports, cross_track_rmse, estimate_track


def track_reports_strategy():
    """Reports sampled near a random straight constant-speed track."""

    @st.composite
    def build(draw):
        heading = draw(st.floats(0.0, 2.0 * math.pi))
        speed = draw(st.floats(1.0, 30.0))
        period_length = draw(st.floats(10.0, 120.0))
        origin = np.array(
            [draw(st.floats(-1e4, 1e4)), draw(st.floats(-1e4, 1e4))]
        )
        direction = np.array([math.cos(heading), math.sin(heading)])
        noise = draw(st.floats(0.0, 50.0))
        seed = draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        num_periods = draw(st.integers(3, 15))
        reports = []
        for p in range(1, num_periods + 1):
            count = draw(st.integers(1, 3))
            midpoint = origin + direction * speed * period_length * (p - 0.5)
            for c in range(count):
                offset = rng.normal(0.0, max(noise, 1e-9), size=2)
                position = midpoint + offset
                reports.append(
                    DetectionReport(
                        p * 10 + c, p, Point(float(position[0]), float(position[1]))
                    )
                )
        waypoints = np.array(
            [origin + direction * speed * period_length * p for p in range(num_periods + 1)]
        )
        return reports, waypoints, speed, period_length, noise

    return build()


class TestEstimateTrackProperties:
    @given(data=track_reports_strategy())
    @settings(max_examples=100, deadline=None)
    def test_errors_scale_with_noise(self, data):
        reports, waypoints, speed, period_length, noise = data
        try:
            estimate = estimate_track(reports, period_length)
        except Exception:
            return  # degenerate geometry sampled; fine
        # Cross-track error bounded by a few noise standard deviations.
        assert cross_track_rmse(estimate, waypoints) <= 6.0 * noise + 1.0

    @given(data=track_reports_strategy())
    @settings(max_examples=100, deadline=None)
    def test_speed_estimate_reasonable(self, data):
        reports, waypoints, speed, period_length, noise = data
        try:
            estimate = estimate_track(reports, period_length)
        except Exception:
            return
        # Noise of sigma meters over steps of speed*period meters bounds
        # the speed error; generous constant for small samples.
        step = speed * period_length
        assert abs(estimate.speed - speed) <= speed * (8.0 * noise / step + 0.05) + 0.1

    @given(
        data=track_reports_strategy(),
        dx=st.floats(-1e5, 1e5),
        dy=st.floats(-1e5, 1e5),
    )
    @settings(max_examples=60, deadline=None)
    def test_translation_equivariance(self, data, dx, dy):
        reports, _, _, period_length, _ = data
        try:
            base = estimate_track(reports, period_length)
        except Exception:
            return
        shifted = [
            DetectionReport(
                r.node_id, r.period, Point(r.position.x + dx, r.position.y + dy)
            )
            for r in reports
        ]
        moved = estimate_track(shifted, period_length)
        for p in (1.0, 3.0):
            np.testing.assert_allclose(
                moved.position_at(p),
                base.position_at(p) + np.array([dx, dy]),
                rtol=1e-6,
                atol=1e-3,
            )

    @given(data=track_reports_strategy())
    @settings(max_examples=60, deadline=None)
    def test_speed_always_non_negative(self, data):
        reports, _, _, period_length, _ = data
        try:
            estimate = estimate_track(reports, period_length)
        except Exception:
            return
        assert estimate.rate >= 0.0
        assert np.linalg.norm(estimate.direction) == pytest.approx(1.0)


class TestClusterProperties:
    @given(data=track_reports_strategy())
    @settings(max_examples=60, deadline=None)
    def test_clusters_are_disjoint_subsets(self, data):
        reports, _, speed, period_length, _ = data
        gate = SpeedGateTrackFilter(
            max_speed=2 * speed,
            sensing_range=100.0,
            period_length=period_length,
        )
        clusters = cluster_reports(reports, gate)
        seen = set()
        for cluster in clusters:
            for report in cluster:
                assert id(report) not in seen
                seen.add(id(report))
        all_ids = {id(r) for r in reports}
        assert seen <= all_ids

    @given(data=track_reports_strategy())
    @settings(max_examples=60, deadline=None)
    def test_every_cluster_is_gate_feasible(self, data):
        reports, _, speed, period_length, _ = data
        gate = SpeedGateTrackFilter(
            max_speed=2 * speed,
            sensing_range=100.0,
            period_length=period_length,
        )
        for cluster in cluster_reports(reports, gate):
            assert gate.feasible(cluster)

    @given(data=track_reports_strategy())
    @settings(max_examples=40, deadline=None)
    def test_single_track_with_generous_gate_is_one_cluster(self, data):
        reports, _, speed, period_length, noise = data
        gate = SpeedGateTrackFilter(
            max_speed=2 * speed,
            sensing_range=200.0 + 6 * noise,
            period_length=period_length,
        )
        clusters = cluster_reports(reports, gate)
        assert len(clusters) == 1
        assert len(clusters[0]) == len(reports)
