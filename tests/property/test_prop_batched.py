"""Property-based tests pinning the batched engine to the scalar one.

The contracts the sweep/design/service layers rely on:

* **1e-12 parity** — every entry of a batched ``(N, k)`` grid matches the
  scalar :class:`~repro.core.markov_spatial.MarkovSpatialAnalysis`
  evaluated at that point (the kernels associate their convolutions
  differently, so the agreement is to rounding, not bitwise);
* **batch invariance** — a singleton evaluation is *bitwise* equal to
  the corresponding grid row (this is what makes the sweep layer's
  batched and per-point dispatch paths byte-identical);
* **survival monotonicity** — ``P_M[X >= k]`` is non-increasing in ``k``;
* **convolution-vs-matrix parity**, lifted from the single fixture
  assert in ``tests/unit/test_markov_spatial.py`` into a sampled
  property, and extended to the batched distribution stack.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import BatchedMarkovSpatialAnalysis
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.core.scenario import Scenario
from repro.deployment.field import SensorField

PARITY_ATOL = 1e-12


def scenario_strategy():
    """Random sparse scenarios with M > ms, kept small enough that a
    property example costs a few milliseconds (ms <= 4, window <= ms + 5)."""

    @st.composite
    def build(draw):
        sensing_range = draw(st.floats(50.0, 300.0))
        ratio = draw(st.floats(0.3, 1.5))  # step / sensing diameter
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        window = ms + draw(st.integers(1, 5))
        num_sensors = draw(st.integers(5, 60))
        detect_prob = draw(st.floats(0.3, 1.0))
        aregion = 2 * window * sensing_range * step + math.pi * sensing_range**2
        side = math.sqrt(aregion) * draw(st.floats(4.0, 10.0))
        return Scenario(
            field=SensorField.square(side),
            num_sensors=num_sensors,
            sensing_range=sensing_range,
            target_speed=step,
            sensing_period=1.0,
            detect_prob=detect_prob,
            window=window,
            threshold=draw(st.integers(1, 4)),
        )

    return build()


def axes_strategy():
    """Small (N-axis, k-axis) grids; the k axis may run past the support."""
    return st.tuples(
        st.lists(st.integers(1, 80), min_size=1, max_size=3),
        st.lists(st.integers(0, 40), min_size=1, max_size=3),
    )


class TestBatchedScalarParity:
    @given(
        scenario=scenario_strategy(),
        axes=axes_strategy(),
        body_truncation=st.integers(1, 4),
        head_truncation=st.one_of(st.none(), st.integers(1, 4)),
        substeps=st.integers(1, 2),
        normalize=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_grid_matches_scalar_pointwise(
        self, scenario, axes, body_truncation, head_truncation, substeps, normalize
    ):
        num_sensors, thresholds = axes
        grid = BatchedMarkovSpatialAnalysis(
            scenario,
            body_truncation=body_truncation,
            head_truncation=head_truncation,
            substeps=substeps,
        ).detection_probability_grid(
            num_sensors=num_sensors, thresholds=thresholds, normalize=normalize
        )
        for i, count in enumerate(num_sensors):
            scalar = MarkovSpatialAnalysis(
                scenario.replace(num_sensors=count),
                body_truncation=body_truncation,
                head_truncation=head_truncation,
                substeps=substeps,
            )
            for j, threshold in enumerate(thresholds):
                reference = scalar.detection_probability(
                    threshold=threshold, normalize=normalize
                )
                assert abs(grid[i, j] - reference) <= PARITY_ATOL

    @given(scenario=scenario_strategy(), axes=axes_strategy())
    @settings(max_examples=25, deadline=None)
    def test_singleton_rows_bitwise_equal_grid_rows(self, scenario, axes):
        """Batch invariance: the sweep layer's byte-identity contract."""
        num_sensors, thresholds = axes
        grid = BatchedMarkovSpatialAnalysis(
            scenario
        ).detection_probability_grid(
            num_sensors=num_sensors, thresholds=thresholds
        )
        for i, count in enumerate(num_sensors):
            singleton = BatchedMarkovSpatialAnalysis(
                scenario.replace(num_sensors=count)
            ).detection_probability_grid(thresholds=thresholds)
            assert (singleton[0] == grid[i]).all()


class TestSurvivalMonotonicity:
    @given(
        scenario=scenario_strategy(),
        counts=st.lists(st.integers(1, 80), min_size=1, max_size=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_survival_non_increasing_in_k(self, scenario, counts):
        engine = BatchedMarkovSpatialAnalysis(scenario)
        survival = engine.survival_grid(num_sensors=counts)
        assert (np.diff(survival, axis=1) <= 1e-15).all()
        # And through the normalised grid over an explicit ascending k axis.
        thresholds = list(range(0, survival.shape[1] + 2))
        grid = engine.detection_probability_grid(
            num_sensors=counts, thresholds=thresholds
        )
        assert (np.diff(grid, axis=1) <= 1e-15).all()
        assert (grid >= 0.0).all() and (grid <= 1.0 + 1e-12).all()


class TestMethodParity:
    @given(scenario=scenario_strategy(), body_truncation=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_convolution_matches_matrix(self, scenario, body_truncation):
        """The unit suite's single fixture assert, sampled over scenarios."""
        analysis = MarkovSpatialAnalysis(
            scenario, body_truncation=body_truncation
        )
        convolution = analysis.report_count_distribution("convolution")
        matrix = analysis.report_count_distribution("matrix")
        np.testing.assert_allclose(
            convolution, matrix[: convolution.size], atol=1e-12
        )
        assert abs(matrix[convolution.size :].sum()) <= 1e-15

    @given(scenario=scenario_strategy(), body_truncation=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_batched_distribution_matches_matrix(
        self, scenario, body_truncation
    ):
        """Eq. 12 parity extended to the batched stack: each row of
        ``report_count_distributions`` is the matrix-engine result."""
        row = BatchedMarkovSpatialAnalysis(
            scenario, body_truncation=body_truncation
        ).report_count_distributions()[0]
        matrix = MarkovSpatialAnalysis(
            scenario, body_truncation=body_truncation
        ).report_count_distribution("matrix")
        np.testing.assert_allclose(row, matrix[: row.size], atol=1e-12)
