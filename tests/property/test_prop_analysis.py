"""Property-based tests for the analytical models (scenario-level invariants)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_spatial import ExactSpatialAnalysis
from repro.core.markov_spatial import MarkovSpatialAnalysis
from repro.core.scenario import Scenario
from repro.deployment.field import SensorField


def scenario_strategy():
    """Random sparse scenarios with M > ms (the analysed regime)."""

    @st.composite
    def build(draw):
        sensing_range = draw(st.floats(50.0, 500.0))
        ratio = draw(st.floats(0.15, 1.5))  # step / sensing diameter
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        window = ms + draw(st.integers(1, 12))
        num_sensors = draw(st.integers(5, 80))
        detect_prob = draw(st.floats(0.3, 1.0))
        threshold = draw(st.integers(1, 6))
        # Field large enough to keep the scenario sparse.
        aregion = 2 * window * sensing_range * step + math.pi * sensing_range**2
        side = math.sqrt(aregion) * draw(st.floats(4.0, 12.0))
        return Scenario(
            field=SensorField.square(side),
            num_sensors=num_sensors,
            sensing_range=sensing_range,
            target_speed=step,
            sensing_period=1.0,
            detect_prob=detect_prob,
            window=window,
            threshold=threshold,
        )

    return build()


class TestAnalysisInvariants:
    @given(scenario=scenario_strategy())
    @settings(max_examples=40, deadline=None)
    def test_ms_engines_agree(self, scenario):
        analysis = MarkovSpatialAnalysis(scenario, body_truncation=2)
        conv = analysis.report_count_distribution("convolution")
        import numpy as np

        matrix = analysis.report_count_distribution("matrix")
        np.testing.assert_allclose(conv, matrix[: conv.size], atol=1e-10)

    @given(scenario=scenario_strategy())
    @settings(max_examples=40, deadline=None)
    def test_detection_probability_valid_and_bounded_by_normalised(self, scenario):
        analysis = MarkovSpatialAnalysis(scenario, body_truncation=2)
        raw = analysis.detection_probability(normalize=False)
        normalised = analysis.detection_probability(normalize=True)
        assert 0.0 <= raw <= normalised <= 1.0

    @given(scenario=scenario_strategy())
    @settings(max_examples=30, deadline=None)
    def test_ms_converges_to_exact_oracle(self, scenario):
        """With truncations at N, the M-S result matches the exact oracle up
        to the NEDR-independence approximation, which vanishes in the sparse
        limit — allow a small absolute tolerance."""
        exact = ExactSpatialAnalysis(scenario).detection_probability()
        full = MarkovSpatialAnalysis(
            scenario,
            body_truncation=min(scenario.num_sensors, 25),
        ).detection_probability()
        assert full == pytest.approx(exact, abs=0.02)

    @given(scenario=scenario_strategy())
    @settings(max_examples=30, deadline=None)
    def test_accuracy_increases_with_truncation(self, scenario):
        etas = [
            MarkovSpatialAnalysis(scenario, g).analysis_accuracy()
            for g in (1, 2, 4)
        ]
        assert etas == sorted(etas)
        assert 0.0 < etas[-1] <= 1.0 + 1e-9

    @given(scenario=scenario_strategy())
    @settings(max_examples=30, deadline=None)
    def test_exact_tail_monotone_in_threshold(self, scenario):
        exact = ExactSpatialAnalysis(scenario)
        values = [exact.detection_probability(k) for k in range(0, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestSensitivityProperties:
    @given(scenario=scenario_strategy())
    @settings(max_examples=10, deadline=None)
    def test_elasticity_report_well_formed(self, scenario):
        """Elasticities exist and the report is internally consistent for
        random analysable scenarios."""
        from repro.core.sensitivity import parameter_elasticities
        from repro.errors import AnalysisError

        # Guard: perturbing M needs headroom over ms, and the detection
        # probability must be non-zero.
        if scenario.window <= scenario.ms + 1:
            return
        try:
            report = parameter_elasticities(scenario, truncation=2)
        except AnalysisError:
            return  # zero detection probability at this operating point
        assert report.detection_probability > 0.0
        assert set(report.ranked_parameters()) == set(report.elasticities)
        # Raising k never helps; extending M never hurts.
        assert report.threshold_step_effect <= 1e-9
        assert report.window_step_effect >= -1e-9
