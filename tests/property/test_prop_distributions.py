"""Property-based tests for report-count distribution machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.report_dist import (
    binomial_pmf,
    conditional_report_pmf,
    convolution_power,
    exact_report_pmf,
    occupancy_pmf,
    per_sensor_field_pmf,
    stage_report_pmf,
    stage_report_pmf_naive,
)


def subareas_strategy(max_coverage=6):
    """Non-degenerate subarea arrays with zero padding at index 0."""
    return st.lists(
        st.floats(0.0, 100.0), min_size=1, max_size=max_coverage
    ).map(lambda weights: np.array([0.0] + [w + 1e-6 for w in weights]))


class TestBinomialProperties:
    @given(n=st.integers(0, 60), p=st.floats(0.0, 1.0))
    def test_normalised_and_non_negative(self, n, p):
        pmf = binomial_pmf(n, p)
        assert (pmf >= 0.0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    @given(n=st.integers(1, 40), p=st.floats(0.0, 1.0))
    def test_mean(self, n, p):
        pmf = binomial_pmf(n, p)
        assert float(np.arange(n + 1) @ pmf) == pytest.approx(n * p, abs=1e-8)


class TestConditionalPmfProperties:
    @given(subareas=subareas_strategy(), pd=st.floats(0.01, 1.0))
    @settings(max_examples=200)
    def test_is_distribution(self, subareas, pd):
        pmf = conditional_report_pmf(subareas, pd)
        assert (pmf >= 0.0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    @given(subareas=subareas_strategy(), pd=st.floats(0.01, 1.0))
    @settings(max_examples=200)
    def test_mean_is_area_weighted_coverage(self, subareas, pd):
        pmf = conditional_report_pmf(subareas, pd)
        mean = float(np.arange(pmf.size) @ pmf)
        coverages = np.arange(subareas.size)
        expected = pd * float(coverages @ subareas) / subareas.sum()
        assert mean == pytest.approx(expected, rel=1e-9)


class TestStagePmfProperties:
    @given(
        subareas=subareas_strategy(max_coverage=4),
        pd=st.floats(0.1, 1.0),
        n=st.integers(1, 25),
        g=st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_naive_equals_fast(self, subareas, pd, n, g):
        field_area = subareas.sum() * 50.0
        fast = stage_report_pmf(subareas, field_area, n, pd, g)
        naive = stage_report_pmf_naive(subareas, field_area, n, pd, g)
        np.testing.assert_allclose(fast, naive, atol=1e-12)

    @given(
        subareas=subareas_strategy(),
        pd=st.floats(0.1, 1.0),
        n=st.integers(1, 30),
        g=st.integers(0, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_mass_equals_occupancy_cdf(self, subareas, pd, n, g):
        field_area = subareas.sum() * 20.0
        pmf = stage_report_pmf(subareas, field_area, n, pd, g)
        occupancy = occupancy_pmf(float(subareas.sum()), field_area, n, g)
        assert pmf.sum() == pytest.approx(float(occupancy.sum()), rel=1e-9)


class TestExactPmfProperties:
    @given(
        subareas=subareas_strategy(),
        pd=st.floats(0.1, 1.0),
        n=st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_exact_pmf_is_distribution(self, subareas, pd, n):
        field_area = subareas.sum() * 10.0
        pmf = exact_report_pmf(subareas, field_area, n, pd)
        assert (pmf >= -1e-12).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-8)

    @given(
        subareas=subareas_strategy(max_coverage=4),
        pd=st.floats(0.1, 1.0),
        n=st.integers(1, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_is_limit_of_truncated(self, subareas, pd, n):
        """stage_report_pmf with g = N equals the exact N-fold convolution
        restricted to the region... they must agree because occupancy is no
        longer truncated."""
        field_area = subareas.sum() * 10.0
        truncated = stage_report_pmf(subareas, field_area, n, pd, max_sensors=n)
        exact = exact_report_pmf(subareas, field_area, n, pd)
        size = min(truncated.size, exact.size)
        np.testing.assert_allclose(truncated[:size], exact[:size], atol=1e-9)
        assert abs(truncated[size:]).sum() == pytest.approx(0.0, abs=1e-12)
        assert abs(exact[size:]).sum() == pytest.approx(0.0, abs=1e-12)


class TestConvolutionPowerProperties:
    @given(
        pmf=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=5),
        a=st.integers(0, 6),
        b=st.integers(0, 6),
    )
    @settings(max_examples=100)
    def test_power_additivity(self, pmf, a, b):
        base = np.array(pmf) / sum(pmf)
        combined = convolution_power(base, a + b)
        split = np.convolve(convolution_power(base, a), convolution_power(base, b))
        np.testing.assert_allclose(combined, split, atol=1e-10)


class TestPerSensorFieldPmfProperties:
    @given(subareas=subareas_strategy(), pd=st.floats(0.1, 1.0))
    @settings(max_examples=100)
    def test_is_distribution(self, subareas, pd):
        pmf = per_sensor_field_pmf(subareas, subareas.sum() * 3.0, pd)
        assert (pmf >= 0.0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)
