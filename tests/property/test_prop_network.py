"""Property-based tests for the network substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.network.graph import BASE_STATION, build_connectivity_graph
from repro.network.latency import delivery_report, hop_counts
from repro.network.routing import bfs_path, greedy_geographic_path


def deployment_strategy():
    @st.composite
    def build(draw):
        seed = draw(st.integers(0, 2**31))
        count = draw(st.integers(2, 50))
        side = draw(st.floats(50.0, 500.0))
        comm_range = draw(st.floats(10.0, 300.0))
        rng = np.random.default_rng(seed)
        return rng.uniform(0, side, size=(count, 2)), comm_range, side

    return build()


class TestGraphProperties:
    @given(data=deployment_strategy())
    @settings(max_examples=100, deadline=None)
    def test_edges_iff_within_range(self, data):
        positions, comm_range, _ = data
        graph = build_connectivity_graph(positions, comm_range)
        for a, b in graph.edges:
            assert np.hypot(*(positions[a] - positions[b])) <= comm_range + 1e-9
        # Spot-check some non-edges.
        nodes = list(graph.nodes)
        rng = np.random.default_rng(1)
        for _ in range(20):
            a, b = rng.choice(nodes, 2, replace=False)
            distance = np.hypot(*(positions[a] - positions[b]))
            assert graph.has_edge(int(a), int(b)) == (distance <= comm_range)

    @given(data=deployment_strategy())
    @settings(max_examples=60, deadline=None)
    def test_greedy_route_valid_whenever_connected(self, data):
        positions, comm_range, _ = data
        graph = build_connectivity_graph(positions, comm_range)
        component = max(nx.connected_components(graph), key=len)
        nodes = sorted(component)
        if len(nodes) < 2:
            return
        src, dst = nodes[0], nodes[-1]
        path = greedy_geographic_path(graph, src, dst)
        assert path[0] == src and path[-1] == dst
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    @given(data=deployment_strategy())
    @settings(max_examples=60, deadline=None)
    def test_bfs_is_lower_bound_on_greedy(self, data):
        positions, comm_range, _ = data
        graph = build_connectivity_graph(positions, comm_range)
        component = sorted(max(nx.connected_components(graph), key=len))
        if len(component) < 2:
            return
        src, dst = component[0], component[-1]
        assert len(bfs_path(graph, src, dst)) <= len(
            greedy_geographic_path(graph, src, dst)
        )


class TestDeliveryProperties:
    @given(data=deployment_strategy(), latency=st.floats(0.5, 30.0))
    @settings(max_examples=60, deadline=None)
    def test_report_internally_consistent(self, data, latency):
        positions, comm_range, side = data
        graph = build_connectivity_graph(
            positions, comm_range, base_station=(side / 2, side / 2)
        )
        report = delivery_report(graph, period_length=60.0, per_hop_latency=latency)
        assert 0 <= report.deliverable_nodes <= report.connected_nodes
        assert report.connected_nodes <= report.total_nodes
        assert 0.0 <= report.deliverable_fraction <= report.connected_fraction <= 1.0
        hops = hop_counts(graph)
        assert report.connected_nodes == len(hops)
        if hops:
            assert report.max_hops == max(hops.values())

    @given(data=deployment_strategy())
    @settings(max_examples=40, deadline=None)
    def test_generous_budget_delivers_all_connected(self, data):
        positions, comm_range, side = data
        graph = build_connectivity_graph(
            positions, comm_range, base_station=(side / 2, side / 2)
        )
        report = delivery_report(graph, period_length=1e9, per_hop_latency=1.0)
        assert report.deliverable_nodes == report.connected_nodes
