"""Property-based tests for the serving layer's coalescing guarantees.

The headline contract, for any burst size: N concurrent identical
requests perform **exactly one** underlying computation, and every
client receives **byte-identical** payloads.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    AnalysisService,
    Endpoint,
    ServiceConfig,
    request_fingerprint,
)


class _GatedCompute:
    """A picklable-shaped stub the test releases explicitly."""

    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()
        self.release = threading.Event()

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        if not self.release.wait(timeout=10):
            raise RuntimeError("gate never released")
        return {"request": request, "calls": self.calls}


def _service(gate) -> AnalysisService:
    endpoint = Endpoint(
        "/stub",
        "stub",
        canonicalize=lambda payload: dict(payload),
        compute=gate,
    )
    return AnalysisService(
        ServiceConfig(port=0, queue_limit=256),
        endpoints={"/stub": endpoint},
        executor_factory=lambda: ThreadPoolExecutor(max_workers=1),
    )


json_scalars = st.one_of(
    st.integers(-1000, 1000),
    st.floats(-100.0, 100.0, allow_nan=False),
    st.text(max_size=8),
    st.booleans(),
)


@given(
    burst=st.integers(2, 32),
    payload=st.dictionaries(st.text(min_size=1, max_size=6), json_scalars, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_concurrent_identical_requests_compute_once(burst, payload):
    async def main():
        gate = _GatedCompute()
        service = _service(gate)
        body = json.dumps(payload).encode()
        tasks = [
            asyncio.ensure_future(service.dispatch("POST", "/stub", body))
            for _ in range(burst)
        ]
        # Every dispatch reaches the coalescer in one scheduling pass
        # (no awaits precede it), so after the tasks have run once they
        # are all parked on the shared flight.
        while service.metrics.counter("requests.stub") < burst:
            await asyncio.sleep(0.001)
        gate.release.set()
        results = await asyncio.gather(*tasks)
        await service.stop()
        return gate, service, results

    gate, service, results = asyncio.run(main())
    statuses = {status for status, _, _ in results}
    bodies = {body for _, _, body in results}
    assert statuses == {200}
    assert len(bodies) == 1, "all clients must see byte-identical payloads"
    assert gate.calls == 1, "exactly one underlying computation"
    assert service.metrics.counter("computations") == 1
    # Conservation: leader + followers + cache hits + degraded servings
    # account for the burst (degraded is 0 here; the term documents the
    # full invariant the fleet preserves under faults).
    assert (
        service.metrics.counter("computations")
        + service.metrics.counter("coalesced")
        + service.metrics.counter("cache_served")
        + service.metrics.counter("degraded")
        == burst
    )


@given(
    burst=st.integers(2, 16),
    repeats=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None)
def test_repeated_bursts_hit_the_cache_after_the_first(burst, repeats):
    async def main():
        gate = _GatedCompute()
        gate.release.set()
        service = _service(gate)
        body = json.dumps({"v": 1}).encode()
        seen = set()
        for _ in range(repeats):
            results = await asyncio.gather(
                *[service.dispatch("POST", "/stub", body) for _ in range(burst)]
            )
            seen.update(payload for _, _, payload in results)
        await service.stop()
        return gate, service, seen

    gate, service, seen = asyncio.run(main())
    assert len(seen) == 1
    assert gate.calls == 1, "later bursts are served from cache"
    total = burst * repeats
    assert (
        service.metrics.counter("computations")
        + service.metrics.counter("coalesced")
        + service.metrics.counter("cache_served")
        + service.metrics.counter("degraded")
        == total
    )
    cache = service.response_cache
    assert cache.lookups == cache.hits + cache.misses


@given(
    payload=st.dictionaries(st.text(min_size=1, max_size=6), json_scalars, max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_fingerprint_is_invariant_to_key_order(payload):
    shuffled = dict(reversed(list(payload.items())))
    assert request_fingerprint("/stub", payload) == request_fingerprint(
        "/stub", shuffled
    )


@given(
    left=st.dictionaries(st.text(min_size=1, max_size=6), json_scalars, max_size=4),
    right=st.dictionaries(st.text(min_size=1, max_size=6), json_scalars, max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_distinct_canonical_requests_get_distinct_fingerprints(left, right):
    same = request_fingerprint("/stub", left) == request_fingerprint("/stub", right)
    assert same == (
        json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)
    )
