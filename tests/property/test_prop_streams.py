"""Property-based tests for report-stream episodes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scenario import Scenario
from repro.deployment.field import SensorField
from repro.simulation.streams import (
    simulate_multi_target_stream,
    simulate_report_stream,
)


def scenario_strategy():
    @st.composite
    def build(draw):
        sensing_range = draw(st.floats(50.0, 300.0))
        ratio = draw(st.floats(0.2, 1.2))
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        window = ms + draw(st.integers(1, 8))
        aregion = 2 * window * sensing_range * step + math.pi * sensing_range**2
        side = math.sqrt(aregion) * draw(st.floats(4.0, 9.0))
        return Scenario(
            field=SensorField.square(side),
            num_sensors=draw(st.integers(3, 30)),
            sensing_range=sensing_range,
            target_speed=step,
            sensing_period=1.0,
            detect_prob=draw(st.floats(0.3, 1.0)),
            window=window,
            threshold=1,
        )

    return build()


class TestSingleTargetStreamProperties:
    @given(scenario=scenario_strategy(), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_episode_invariants(self, scenario, seed):
        episode = simulate_report_stream(scenario, rng=seed, false_alarm_prob=0.01)
        assert len(episode.periods) == scenario.window
        total = 0
        node_period_pairs = set()
        for period, reports in episode.stream():
            for report in reports:
                assert report.period == period
                assert 0 <= report.node_id < scenario.num_sensors
                # A sensor reports at most once per period.
                assert (report.node_id, period) not in node_period_pairs
                node_period_pairs.add((report.node_id, period))
                total += 1
        assert total == episode.total_report_count
        assert (
            episode.total_report_count
            == episode.true_report_count + episode.false_report_count
        )

    @given(scenario=scenario_strategy(), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_true_reporters_within_range_of_track(self, scenario, seed):
        """Without false alarms, every reporter must be within Rs of the
        period's path segment."""
        episode = simulate_report_stream(scenario, rng=seed)
        for period, reports in episode.stream():
            start = episode.waypoints[period - 1]
            end = episode.waypoints[period]
            seg = end - start
            seg_len_sq = float(seg @ seg)
            for report in reports:
                point = np.array([report.position.x, report.position.y])
                rel = point - start
                t = 0.0 if seg_len_sq == 0 else np.clip(rel @ seg / seg_len_sq, 0, 1)
                distance = np.linalg.norm(rel - t * seg)
                assert distance <= scenario.sensing_range + 1e-6


class TestMultiTargetStreamProperties:
    @given(
        scenario=scenario_strategy(),
        seed=st.integers(0, 2**31),
        num_targets=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_episode_invariants(self, scenario, seed, num_targets):
        rng = np.random.default_rng(seed)
        starts = rng.uniform(
            0, scenario.field.width, size=(num_targets, 2)
        )
        episode = simulate_multi_target_stream(scenario, starts, rng=rng)
        assert episode.num_targets == num_targets
        assert episode.per_target_report_counts.sum() + 0 == sum(
            1 for _, reports in episode.stream() for _ in reports
        )
        for reports, sources in zip(episode.periods, episode.report_sources):
            assert len(reports) == len(sources)
            for source in sources:
                assert -1 <= source < num_targets

    @given(scenario=scenario_strategy(), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_attributed_reports_within_range_of_their_target(self, scenario, seed):
        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, scenario.field.width, size=(2, 2))
        episode = simulate_multi_target_stream(scenario, starts, rng=rng)
        for period_index, (reports, sources) in enumerate(
            zip(episode.periods, episode.report_sources)
        ):
            for report, source in zip(reports, sources):
                if source < 0:
                    continue
                start = episode.waypoints[source, period_index]
                end = episode.waypoints[source, period_index + 1]
                seg = end - start
                seg_len_sq = float(seg @ seg)
                point = np.array([report.position.x, report.position.y])
                rel = point - start
                t = 0.0 if seg_len_sq == 0 else np.clip(rel @ seg / seg_len_sq, 0, 1)
                distance = np.linalg.norm(rel - t * seg)
                assert distance <= scenario.sensing_range + 1e-6
