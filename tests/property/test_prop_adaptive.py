"""Property tests for the adaptive bisection cores.

Synthetic oracles (plain float arrays, no scenarios) so hypothesis can
search hard: on monotone oracles the bisections must return the
exhaustive scan's answer within the logarithmic evaluation bound, and on
oracles with *sampled* monotonicity violations the fallback must still
return the exact dense answer while counting ``adaptive.fallbacks``.

The violation families are built to be detectable by construction: the
bisections always evaluate both endpoints first and the midpoint next,
so corrupting exactly those points guarantees the consistency check
sees the violation (an arbitrary interior corruption may simply never be
sampled — that is the documented contract, not a bug).  The
late-violation families go one step further: the corruption is only
sampled on the *second* round, after the bracket has already narrowed,
pinning that the fallback scans the original search range rather than
the shrunken bracket.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    EvaluationLedger,
    MonotoneOracle,
    bisect_first_meeting,
    bisect_last_meeting,
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def counting_oracle(values, direction, counter):
    def batch(indexes):
        counter[0] += len(indexes)
        return [values[i] for i in indexes]

    return MonotoneOracle(batch, direction)


def log_bound(span):
    return (0 if span <= 1 else int(math.ceil(math.log2(span)))) + 2


def dense_first_meeting(values, target):
    return next((i for i, v in enumerate(values) if v >= target), None)


def dense_last_meeting(values, target):
    failing = next((i for i, v in enumerate(values) if v < target), None)
    if failing is None:
        return len(values) - 1
    if failing == 0:
        return None
    return failing - 1


@given(
    values=st.lists(probabilities, min_size=2, max_size=300).map(sorted),
    target=probabilities,
)
@settings(max_examples=200)
def test_first_meeting_is_exhaustive_scan_within_log_evals(values, target):
    counter = [0]
    ledger = EvaluationLedger()
    got = bisect_first_meeting(
        counting_oracle(values, +1, counter),
        0,
        len(values) - 1,
        target,
        ledger,
    )
    assert got == dense_first_meeting(values, target)
    assert counter[0] <= log_bound(len(values) - 1)
    assert ledger.fallbacks == 0
    assert ledger.bisections == 1


@given(
    values=st.lists(probabilities, min_size=2, max_size=300).map(
        lambda vs: sorted(vs, reverse=True)
    ),
    target=probabilities,
)
@settings(max_examples=200)
def test_last_meeting_is_exhaustive_scan_within_log_evals(values, target):
    counter = [0]
    ledger = EvaluationLedger()
    got = bisect_last_meeting(
        counting_oracle(values, -1, counter),
        0,
        len(values) - 1,
        target,
        ledger,
    )
    assert got == dense_last_meeting(values, target)
    assert counter[0] <= log_bound(len(values) - 1)
    assert ledger.fallbacks == 0


@given(
    values=st.lists(probabilities, min_size=2, max_size=100).map(sorted),
    target=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=150)
def test_endpoint_violation_falls_back_to_exact_dense_answer(values, target):
    # Swap-the-endpoints family: v[lo] > v[hi] under a "non-decreasing"
    # claim.  Both endpoints are always the first points evaluated, so
    # the violation is sampled by construction.
    corrupted = list(values)
    corrupted[0], corrupted[-1] = 1.0, 0.0
    assume(corrupted[0] > corrupted[-1])
    ledger = EvaluationLedger()
    got = bisect_first_meeting(
        counting_oracle(corrupted, +1, [0]),
        0,
        len(corrupted) - 1,
        target,
        ledger,
    )
    assert ledger.fallbacks == 1
    assert got == dense_first_meeting(corrupted, target)


@given(
    values=st.lists(probabilities, min_size=8, max_size=100).map(sorted),
    target=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=150)
def test_midpoint_spike_falls_back_to_exact_dense_answer(values, target):
    # Spike-the-first-midpoint family: after the endpoint round the
    # bisection deterministically evaluates (lo + hi) // 2, so a spike
    # above v[hi] there is guaranteed to be sampled — and it genuinely
    # changes the dense answer for targets between v[mid] and the spike.
    lo, hi = 0, len(values) - 1
    assume(values[lo] < target <= values[hi])  # no early return
    corrupted = list(values)
    mid = (lo + hi) // 2
    corrupted[mid] = 2.0  # above any probability: a certain violation
    assume(mid not in (lo, hi))
    ledger = EvaluationLedger()
    got = bisect_first_meeting(
        counting_oracle(corrupted, +1, [0]), lo, hi, target, ledger
    )
    assert ledger.fallbacks == 1
    assert got == dense_first_meeting(corrupted, target)


@given(
    values=st.lists(probabilities, min_size=8, max_size=100).map(
        lambda vs: sorted(vs, reverse=True)
    ),
    target=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=150)
def test_last_meeting_spike_falls_back_to_dense_rule(values, target):
    lo, hi = 0, len(values) - 1
    assume(values[lo] >= target > values[hi])
    corrupted = list(values)
    mid = (lo + hi) // 2
    corrupted[mid] = -1.0  # below any probability: a certain violation
    assume(mid not in (lo, hi))
    ledger = EvaluationLedger()
    got = bisect_last_meeting(
        counting_oracle(corrupted, -1, [0]), lo, hi, target, ledger
    )
    assert ledger.fallbacks == 1
    assert got == dense_last_meeting(corrupted, target)


@given(
    values=st.lists(probabilities, min_size=8, max_size=100).map(sorted),
    fraction=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=150)
def test_late_violation_fallback_scans_original_range(values, fraction):
    # Late-violation family: the violation is only sampled on round 2,
    # after `lo` has already advanced past the dense answer.  Round 1
    # sees {lo, hi, mid1}, all uncorrupted and consistent, and advances
    # lo to mid1 (v[mid1] < target by construction); round 2 samples
    # mid2 = -1.0, a certain violation.  The dense answer is index 1
    # (spiked above any target, never sampled by bisection), which lies
    # *outside* the narrowed bracket [mid1, hi] — so this fails against
    # a fallback that scans the shrunken bracket instead of the
    # original range.
    lo, hi = 0, len(values) - 1
    mid1 = (lo + hi) // 2
    target = values[mid1] + fraction * (values[hi] - values[mid1])
    assume(values[mid1] < target <= values[hi])
    corrupted = list(values)
    corrupted[1] = 2.0
    mid2 = mid1 + (hi - mid1) // 2
    corrupted[mid2] = -1.0
    ledger = EvaluationLedger()
    got = bisect_first_meeting(
        counting_oracle(corrupted, +1, [0]), lo, hi, target, ledger
    )
    assert ledger.fallbacks == 1
    assert got == dense_first_meeting(corrupted, target) == 1


@given(
    values=st.lists(probabilities, min_size=8, max_size=100).map(
        lambda vs: sorted(vs, reverse=True)
    ),
    fraction=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=150)
def test_late_violation_last_meeting_scans_original_range(values, fraction):
    # Mirror family for the non-increasing search: round 1 advances lo
    # to mid1 (v[mid1] >= target), round 2 samples the 2.0 spike at
    # mid2 — only then is the violation visible.  The dense rule's
    # first-failing index is 1 (dropped below any target, never sampled
    # by bisection), so the dense answer is 0, outside [mid1, hi].
    lo, hi = 0, len(values) - 1
    mid1 = (lo + hi) // 2
    target = values[hi] + fraction * (values[mid1] - values[hi])
    assume(values[hi] < target <= values[mid1])
    corrupted = list(values)
    corrupted[1] = -1.0
    mid2 = mid1 + (hi - mid1) // 2
    corrupted[mid2] = 2.0
    ledger = EvaluationLedger()
    got = bisect_last_meeting(
        counting_oracle(corrupted, -1, [0]), lo, hi, target, ledger
    )
    assert ledger.fallbacks == 1
    assert got == dense_last_meeting(corrupted, target) == 0


@given(
    values=st.lists(probabilities, min_size=2, max_size=200).map(sorted),
    target=probabilities,
)
@settings(max_examples=100)
def test_fallback_never_repays_for_memoised_points(values, target):
    # Even when it falls back, the search never evaluates an index twice:
    # total evaluations are bounded by the range size.
    corrupted = list(values)
    corrupted[0], corrupted[-1] = 1.0, 0.0
    assume(corrupted[0] > corrupted[-1])
    counter = [0]
    bisect_first_meeting(
        counting_oracle(corrupted, +1, counter),
        0,
        len(corrupted) - 1,
        target,
        EvaluationLedger(),
    )
    assert counter[0] <= len(corrupted)
