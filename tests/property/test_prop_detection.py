"""Property-based tests for the online detectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.group import GroupDetector
from repro.detection.reports import DetectionReport
from repro.geometry.shapes import Point


def report_stream_strategy(max_periods=25, max_nodes=8):
    """A list of per-period report counts, realised as DetectionReports."""

    @st.composite
    def build(draw):
        num_periods = draw(st.integers(1, max_periods))
        stream = []
        for period in range(1, num_periods + 1):
            node_ids = draw(
                st.lists(
                    st.integers(0, max_nodes - 1),
                    max_size=4,
                )
            )
            reports = [
                DetectionReport(node, period, Point(float(node), 0.0))
                for node in node_ids
            ]
            stream.append((period, reports))
        return stream

    return build()


class TestGroupDetectorProperties:
    @given(
        stream=report_stream_strategy(),
        window=st.integers(1, 10),
        threshold=st.integers(1, 8),
    )
    @settings(max_examples=200)
    def test_matches_batch_sliding_window_count(self, stream, window, threshold):
        """The online detector fires exactly when the windowed count does."""
        detector = GroupDetector(window=window, threshold=threshold)
        counts = {period: len(reports) for period, reports in stream}
        for period, reports in stream:
            fired = detector.observe(period, reports)
            windowed = sum(
                counts.get(p, 0) for p in range(period - window + 1, period + 1)
            )
            assert fired == (windowed >= threshold), (period, windowed)

    @given(
        stream=report_stream_strategy(),
        window=st.integers(1, 10),
        threshold=st.integers(1, 8),
        min_nodes=st.integers(1, 4),
    )
    @settings(max_examples=200)
    def test_min_nodes_matches_batch_count(self, stream, window, threshold, min_nodes):
        detector = GroupDetector(window, threshold, min_nodes=min_nodes)
        for period, reports in stream:
            fired = detector.observe(period, reports)
            window_lo = period - window + 1
            windowed = [
                r
                for p, rs in stream
                if window_lo <= p <= period
                for r in rs
            ]
            expected = (
                len(windowed) >= threshold
                and len({r.node_id for r in windowed}) >= min_nodes
            )
            assert fired == expected

    @given(stream=report_stream_strategy(), window=st.integers(1, 10))
    @settings(max_examples=100)
    def test_threshold_monotonicity(self, stream, window):
        """A stricter threshold can only fire on a subset of periods."""
        loose = GroupDetector(window, threshold=2)
        strict = GroupDetector(window, threshold=4)
        for period, reports in stream:
            loose.observe(period, reports)
            strict.observe(period, reports)
        assert set(strict.detection_periods) <= set(loose.detection_periods)

    @given(stream=report_stream_strategy())
    @settings(max_examples=100)
    def test_window_one_equals_instantaneous(self, stream):
        from repro.detection.instantaneous import InstantaneousDetector

        group = GroupDetector(window=1, threshold=2)
        instant = InstantaneousDetector(threshold=2)
        for period, reports in stream:
            assert group.observe(period, reports) == instant.observe(
                period, reports
            )
