"""Property-based tests for the geometry substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle_math import (
    chord_half_length,
    circle_lens_area,
    circular_segment_area,
)
from repro.geometry.shapes import Circle, Point, Segment
from repro.geometry.stadium import Stadium

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestLensAreaProperties:
    @given(distance=st.floats(0, 2e6), radius=positive)
    def test_bounded_by_disc(self, distance, radius):
        area = circle_lens_area(distance, radius)
        disc = math.pi * radius * radius
        assert 0.0 <= area <= disc * (1.0 + 1e-12) + 1e-9

    @given(radius=positive, fraction=st.floats(0.0, 1.0))
    def test_monotone_in_distance(self, radius, fraction):
        d1 = fraction * 2 * radius
        d2 = min(2 * radius, d1 + 0.1 * radius)
        assert circle_lens_area(d1, radius) >= circle_lens_area(d2, radius) - 1e-9

    @given(radius=positive, fraction=st.floats(0.0, 0.999))
    def test_segment_decomposition(self, radius, fraction):
        # Lens(d) == 2 * segment(d / 2) for overlapping circles.
        d = fraction * 2 * radius
        lens = circle_lens_area(d, radius)
        segment = circular_segment_area(radius, d / 2.0)
        assert lens == __import__("pytest").approx(2 * segment, rel=1e-9, abs=1e-12)

    @given(radius=positive, fraction=st.floats(0.0, 1.0))
    def test_chord_pythagoras(self, radius, fraction):
        y = fraction * radius
        half = chord_half_length(radius, y)
        assert half * half + y * y == __import__("pytest").approx(
            radius * radius, rel=1e-9
        )


class TestSegmentDistanceProperties:
    @given(ax=finite, ay=finite, bx=finite, by=finite, px=finite, py=finite)
    @settings(max_examples=200)
    def test_distance_bounds(self, ax, ay, bx, by, px, py):
        seg = Segment(Point(ax, ay), Point(bx, by))
        point = Point(px, py)
        distance = seg.distance_to_point(point)
        to_start = point.distance_to(seg.start)
        to_end = point.distance_to(seg.end)
        assert distance <= min(to_start, to_end) + 1e-6
        assert distance >= 0.0

    @given(ax=finite, ay=finite, bx=finite, by=finite, t=st.floats(0.0, 1.0))
    @settings(max_examples=200)
    def test_points_on_segment_have_zero_distance(self, ax, ay, bx, by, t):
        seg = Segment(Point(ax, ay), Point(bx, by))
        on_segment = seg.point_at(t)
        assert seg.distance_to_point(on_segment) <= 1e-6 * max(
            1.0, seg.length
        )


class TestStadiumProperties:
    @given(
        length=st.floats(0.0, 1e4),
        radius=st.floats(0.1, 1e3),
        t=st.floats(-0.2, 1.2),
        offset=st.floats(-2.0, 2.0),
    )
    @settings(max_examples=200)
    def test_contains_consistent_with_distance(self, length, radius, t, offset):
        stadium = Stadium(Segment(Point(0, 0), Point(length, 0)), radius)
        probe = Point(t * max(length, 1.0), offset * radius)
        inside = stadium.contains(probe)
        assert inside == (stadium.distance_to(probe) == 0.0)

    @given(length=st.floats(0.0, 1e4), radius=st.floats(0.1, 1e3))
    def test_area_at_least_disc(self, length, radius):
        stadium = Stadium(Segment(Point(0, 0), Point(length, 0)), radius)
        assert stadium.area >= math.pi * radius * radius - 1e-9


class TestCircleIntersectionProperties:
    @given(
        d=st.floats(0.0, 100.0),
        r1=st.floats(0.1, 50.0),
        r2=st.floats(0.1, 50.0),
    )
    @settings(max_examples=200)
    def test_intersection_bounded_by_smaller_disc(self, d, r1, r2):
        a = Circle(Point(0, 0), r1)
        b = Circle(Point(d, 0), r2)
        area = a.intersection_area(b)
        assert -1e-9 <= area <= min(a.area, b.area) + 1e-6
