"""Property-based tests for the region decomposition (Eqs. 6, 8, 10)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import (
    area_b,
    area_h_closed_form,
    area_h_literal,
    area_t,
    s_approach_regions,
)
from repro.core.scenario import Scenario
from repro.deployment.field import SensorField


def geometry_strategy():
    """(sensing_range, step_length, ms) triples with consistent ms."""

    @st.composite
    def build(draw):
        sensing_range = draw(st.floats(10.0, 5_000.0))
        # Step between 5% and 300% of the sensing diameter.
        ratio = draw(st.floats(0.05, 3.0))
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        return sensing_range, step, ms

    return build()


class TestAreaHProperties:
    @given(geometry=geometry_strategy())
    @settings(max_examples=200)
    def test_literal_equals_closed_form(self, geometry):
        # The two formulations accumulate floating-point cancellation
        # differently when a circle pair approaches tangency
        # ((i-1)*step -> 2*Rs), where both involve differences of nearly
        # equal lens terms; agreement to 6 significant digits is the
        # strongest claim that survives hypothesis's adversarial geometry.
        rs, step, ms = geometry
        np.testing.assert_allclose(
            area_h_literal(rs, step, ms),
            area_h_closed_form(rs, step, ms),
            rtol=1e-6,
            atol=1e-4,
        )

    @given(geometry=geometry_strategy())
    @settings(max_examples=200)
    def test_non_negative_and_sums_to_dr(self, geometry):
        rs, step, ms = geometry
        areas = area_h_closed_form(rs, step, ms)
        assert (areas >= -1e-6).all()
        assert areas.sum() == pytest.approx(
            2.0 * rs * step + math.pi * rs * rs, rel=1e-9
        )


class TestAreaBTProperties:
    @given(geometry=geometry_strategy())
    @settings(max_examples=200)
    def test_body_non_negative_sums_to_nedr(self, geometry):
        rs, step, ms = geometry
        body = area_b(area_h_closed_form(rs, step, ms))
        assert (body >= -1e-6).all()
        assert body.sum() == pytest.approx(2.0 * rs * step, rel=1e-9)

    @given(geometry=geometry_strategy(), data=st.data())
    @settings(max_examples=200)
    def test_tail_preserves_mass_and_truncates(self, geometry, data):
        rs, step, ms = geometry
        body = area_b(area_h_closed_form(rs, step, ms))
        j = data.draw(st.integers(1, ms))
        tail = area_t(body, j)
        assert tail.sum() == pytest.approx(body.sum(), rel=1e-9)
        assert (tail[ms + 2 - j :] == 0.0).all()


class TestRegionMonteCarloAgreement:
    @given(
        ratio=st.floats(0.15, 1.5),
        window_extra=st.integers(1, 10),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_regions_match_sampled_coverage(self, ratio, window_extra, seed):
        """Closed-form Region(i) areas match direct geometric sampling."""
        from repro.geometry.coverage import estimate_coverage_count_areas

        sensing_range = 100.0
        step = ratio * 2.0 * sensing_range
        ms = math.ceil(2.0 * sensing_range / step)
        window = ms + window_extra
        scenario = Scenario(
            field=SensorField.square(1e5),
            num_sensors=10,
            sensing_range=sensing_range,
            target_speed=step,
            sensing_period=1.0,
            detect_prob=0.9,
            window=window,
            threshold=1,
        )
        regions = s_approach_regions(scenario)
        sampled = estimate_coverage_count_areas(
            sensing_range,
            step,
            window,
            samples=150_000,
            rng=np.random.default_rng(seed),
        )
        total = regions.sum()
        for coverage, area in sampled.items():
            # Compare as fractions of the ARegion with additive tolerance:
            # tiny slivers have large relative MC noise.
            assert regions[coverage] / total == pytest.approx(
                area / total, abs=0.02
            ), f"coverage={coverage}"
